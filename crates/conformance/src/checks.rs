//! The differential checks: each one runs a generated scenario through a
//! pair of implementation paths that must agree.
//!
//! Check functions are pure with respect to their inputs — the same
//! [`ProcScenario`] always produces the same verdict — which is what lets
//! the fuzz loop shrink a failing spec by re-running the check on
//! candidate simplifications.

use icoil_co::{solve_mpc, CoConfig, SolveRecord, MPC_QP_MAX_ITERS, MPC_REPLAN_VIOLATION};
use icoil_core::{run_scenarios_with, EvalConfig, ICoilConfig, ICoilPolicy, PureCoPolicy};
use icoil_hsa::{
    instant_complexity, instant_uncertainty, ComplexityParams, Hsa, HsaConfig, Mode,
};
use icoil_il::IlModel;
use icoil_nn::Tensor;
use icoil_perception::Perception;
use icoil_solver::{
    solve_qp, solve_qp_batch, solve_qp_warm, Backend, Mat, QpBatchJob, QpProblem, QpSettings,
    QpStatus, QpWarmStart, QpWorkspace,
};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, Observation, Policy};
use icoil_world::{gear_reversals, ProcScenario, Scenario, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Identifies one differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CheckKind {
    /// Warm-started MPC vs a cold solve on identical per-frame inputs.
    WarmColdMpc,
    /// Warm-started ADMM vs a cold solve on random strictly convex QPs.
    QpWarmCold,
    /// `parallelism = 1` vs `parallelism = N` batch evaluation.
    Parallelism,
    /// `InferBuffers` inference vs the reference `forward()` pass.
    Inference,
    /// HSA eq. 7/8 window arithmetic vs a naive reference window.
    HsaWindow,
    /// Guard-time invariant: ≥ `guard_time` frames between mode flips.
    HsaGuard,
    /// The same episode run twice must be bit-identical.
    Determinism,
    /// Dense vs sparse KKT backend on identical recorded MPC inputs.
    DenseSparseQp,
    /// Micro-batched IL inference vs per-sample inference, bitwise.
    BatchedSingleIl,
    /// SIMD kernel dispatch vs the scalar reference on recorded solver
    /// inputs (bitwise) and real IL frames (within tolerance).
    SimdScalarKernels,
    /// Block-diagonal batched QP solves vs sequential solves, bitwise.
    BatchedSingleQp,
    /// Serving checkpoint/restore: a session evicted mid-episode and
    /// restored — in-process and into fresh engines at different shard
    /// counts — must replay the remaining trajectory bitwise.
    CheckpointRestoreReplay,
    /// Int8-quantized IL inference vs the f32 lane: every held-out logit
    /// within the calibrated error bound, argmax flips only at genuine
    /// near-ties, and a served int8 episode reaching the same outcome as
    /// its f32 twin.
    QuantizedIl,
    /// Per-family episode determinism: the full iCOIL stack run twice on
    /// the generated scenario (the fuzz loop pins every map family in
    /// turn) must be bit-identical — episode, trace, telemetry counters —
    /// and the trace-derived gear-reversal count must agree with the
    /// policy's live `gear_reversals` counter.
    FamilyDeterminism,
    /// Versioned-weight serving: a session created before a mid-episode
    /// hot-swap keeps its pinned generation and replays bitwise against
    /// a fixed-version reference; sessions created after the publish
    /// ride the new generation; a snapshot carrying a generation the
    /// target server never published is refused with a typed error; and
    /// the IL safety projection is idempotent — already-feasible actions
    /// pass through bitwise unchanged.
    WeightVersionPinning,
    /// A deliberately-failing canary used to exercise shrinking.
    InjectedCanary,
}

impl CheckKind {
    /// Every real check (the canary is opt-in via `--inject`).
    pub const ALL: [CheckKind; 15] = [
        CheckKind::WarmColdMpc,
        CheckKind::QpWarmCold,
        CheckKind::Parallelism,
        CheckKind::Inference,
        CheckKind::HsaWindow,
        CheckKind::HsaGuard,
        CheckKind::Determinism,
        CheckKind::DenseSparseQp,
        CheckKind::BatchedSingleIl,
        CheckKind::SimdScalarKernels,
        CheckKind::BatchedSingleQp,
        CheckKind::CheckpointRestoreReplay,
        CheckKind::QuantizedIl,
        CheckKind::FamilyDeterminism,
        CheckKind::WeightVersionPinning,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CheckKind::WarmColdMpc => "warm_cold_mpc",
            CheckKind::QpWarmCold => "qp_warm_cold",
            CheckKind::Parallelism => "parallelism",
            CheckKind::Inference => "inference",
            CheckKind::HsaWindow => "hsa_window",
            CheckKind::HsaGuard => "hsa_guard",
            CheckKind::Determinism => "determinism",
            CheckKind::DenseSparseQp => "dense_sparse_qp",
            CheckKind::BatchedSingleIl => "batched_single_il",
            CheckKind::SimdScalarKernels => "simd_scalar_kernels",
            CheckKind::BatchedSingleQp => "batched_single_qp",
            CheckKind::CheckpointRestoreReplay => "checkpoint_restore_replay",
            CheckKind::QuantizedIl => "quantized_il",
            CheckKind::FamilyDeterminism => "family_determinism",
            CheckKind::WeightVersionPinning => "weight_version_pinning",
            CheckKind::InjectedCanary => "injected_canary",
        }
    }
}

/// Tunables shared by all checks.
#[derive(Debug, Clone, Copy)]
pub struct CheckSettings {
    /// Simulated seconds driven per episode-based check.
    pub episode_time: f64,
    /// Cold re-solve stride in the warm/cold MPC check (every `k`-th
    /// logged solve is re-run cold).
    pub cold_stride: usize,
    /// Per-component tolerance on the first MPC control between the
    /// warm-chained and cold solutions of identical inputs.
    pub mpc_tolerance: f64,
    /// Relative tracking-cost *excess* of the warm solution over the
    /// cold one tolerated from a warm solve that never converged (every
    /// SCP pass hit its ADMM budget). Converged worse-cost solutions are
    /// SCP multi-modality and accepted at any gap as long as they are
    /// not less safe — see `check_warm_cold_mpc`.
    pub mpc_cost_slack: f64,
    /// Accepted *excess* of warm predicted constraint violation over
    /// cold. Defaults to [`MPC_REPLAN_VIOLATION`] so the contract stays
    /// aligned with the MPC's own fallback trigger: a warm plan
    /// predicting more violation than this re-solves cold in-product,
    /// so a larger gap surviving to the check is a fallback regression.
    pub mpc_violation_slack: f64,
    /// Tolerance on QP primal iterates between warm and cold solves.
    pub qp_tolerance: f64,
    /// Batch width of the parallelism check.
    pub batch: usize,
    /// Relative tracking-cost gap tolerated between the dense and sparse
    /// KKT backends solving identical recorded MPC inputs. The backends
    /// run the same ADMM loop and differ only in factorization rounding,
    /// but the SCP re-linearizes around the pass-1 solution, so tiny
    /// factorization differences are amplified once before comparison.
    pub backend_cost_tol: f64,
}

impl Default for CheckSettings {
    fn default() -> Self {
        CheckSettings {
            episode_time: 12.0,
            cold_stride: 4,
            mpc_tolerance: 0.05,
            mpc_cost_slack: 0.25,
            mpc_violation_slack: MPC_REPLAN_VIOLATION,
            qp_tolerance: 1e-4,
            batch: 3,
            backend_cost_tol: 0.05,
        }
    }
}

impl CheckSettings {
    /// Reduced-cost settings for CI smoke runs.
    pub fn smoke() -> Self {
        CheckSettings {
            episode_time: 6.0,
            cold_stride: 8,
            batch: 2,
            ..CheckSettings::default()
        }
    }
}

/// Runs one check on one scenario spec.
///
/// Returns `Err(detail)` on divergence; the detail string is what lands
/// in the triage report. A panic anywhere under the check (the fuzzer's
/// whole point is reaching states no test reached before — the solver
/// panicking on a generated scenario *is* a finding) is caught and
/// reported as a divergence too, so one crash cannot kill a campaign
/// and the shrinker can minimize crashing scenarios like any other.
///
/// # Errors
///
/// An `Err` is a genuine conformance divergence, not an I/O-style error.
pub fn run_check(
    kind: CheckKind,
    spec: &ProcScenario,
    settings: &CheckSettings,
) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match kind {
        CheckKind::WarmColdMpc => check_warm_cold_mpc(spec, settings),
        CheckKind::QpWarmCold => check_qp_warm_cold(spec, settings),
        CheckKind::Parallelism => check_parallelism(spec, settings),
        CheckKind::Inference => check_inference(spec),
        CheckKind::HsaWindow => check_hsa_window(spec),
        CheckKind::HsaGuard => check_hsa_guard(spec),
        CheckKind::Determinism => check_determinism(spec, settings),
        CheckKind::DenseSparseQp => check_dense_sparse_qp(spec, settings),
        CheckKind::BatchedSingleIl => check_batched_single_il(spec),
        CheckKind::SimdScalarKernels => check_simd_scalar_kernels(spec, settings),
        CheckKind::BatchedSingleQp => check_batched_single_qp(spec),
        CheckKind::CheckpointRestoreReplay => check_checkpoint_restore_replay(spec, settings),
        CheckKind::QuantizedIl => check_quantized_il(spec, settings),
        CheckKind::FamilyDeterminism => check_family_determinism(spec, settings),
        CheckKind::WeightVersionPinning => check_weight_version_pinning(spec, settings),
        CheckKind::InjectedCanary => check_injected_canary(spec),
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

fn episode_config(settings: &CheckSettings) -> EpisodeConfig {
    EpisodeConfig {
        max_time: settings.episode_time,
        record_trace: false,
    }
}

/// Replays a (typically minimized) scenario with an instrumented CO
/// policy and returns the nonzero telemetry counters — the solver
/// behavior context (ADMM iterations, regularization bumps, cold
/// restarts, numerical errors, …) that the triage report attaches to
/// each divergence.
///
/// Deterministic for a fixed spec and settings (only counters are taken,
/// never timing histograms). A panic during the replay yields an empty
/// snapshot rather than killing the campaign.
pub fn telemetry_snapshot(spec: &ProcScenario, settings: &CheckSettings) -> Vec<(String, u64)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let scenario = spec.build();
        let config = ICoilConfig::default();
        let mut policy = PureCoPolicy::new(&config, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(&mut world, &mut policy, &episode_config(settings));
        icoil_core::eval::drain_episode_metrics(&mut policy, &result).counter_snapshot()
    }))
    .unwrap_or_default()
}

/// Drives one CO episode with the solve log enabled, then re-solves a
/// stride of the recorded per-frame inputs cold (fresh memory, no warm
/// start) and compares each cold first control against the warm-started
/// solution the episode actually used.
///
/// Re-solving *identical inputs* is the point: comparing whole warm vs
/// cold episodes would feed tiny numeric differences back through the
/// plant dynamics and compound them chaotically, making any tolerance
/// either vacuous or flaky. Here divergence means the warm start itself
/// changed the answer.
fn check_warm_cold_mpc(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let scenario = spec.build();
    let config = ICoilConfig::default();
    let params = scenario.vehicle_params;
    let co_config: CoConfig = config.co;
    let mut policy = PureCoPolicy::new(&config, &scenario);
    policy.co_mut().enable_solve_log();
    let mut world = World::new(scenario);
    let _ = run_episode(&mut world, &mut policy, &episode_config(settings));
    let log = policy.co_mut().take_solve_log();

    for (i, record) in log.iter().enumerate() {
        if i % settings.cold_stride != 0 {
            continue;
        }
        let SolveRecord {
            state,
            reference,
            tracked,
            warm,
        } = record;
        let cold = solve_mpc(state, reference, tracked, &params, &co_config);
        let da = (warm.controls[0][0] - cold.controls[0][0]).abs();
        let ds = (warm.controls[0][1] - cold.controls[0][1]).abs();
        if da > settings.mpc_tolerance || ds > settings.mpc_tolerance {
            // The SCP linearizes around a nominal seeded from the warm
            // solution, so warm and cold runs may settle in different
            // local solutions — routinely with the warm one *better*
            // (that is the point of warm-starting), and sometimes in a
            // *worse-cost* basin. A converged worse-cost solution with
            // equal-or-better predicted safety is inherent SCP
            // multi-modality, not a defect: neither basin is "the"
            // answer, and the closed loop re-plans next frame. What the
            // contract does forbid:
            //  * the warm solution being meaningfully *less safe* than
            //    the cold reference, regardless of cost;
            //  * a worse-cost, not-safer solution produced by a solve
            //    that never converged (every SCP pass burned its full
            //    ADMM budget) — the MPC's own best-of-warm-and-cold
            //    fallback must have caught that, so seeing one here is
            //    a real regression in the fallback.
            let cost_gap =
                (warm.tracking_cost - cold.tracking_cost) / cold.tracking_cost.abs().max(1e-9);
            let viol_gap = warm.predicted_violation - cold.predicted_violation;
            let capped = warm.qp_iterations >= co_config.scp_iterations * MPC_QP_MAX_ITERS;
            let pathological_cost =
                capped && cost_gap > settings.mpc_cost_slack && viol_gap > -1e-9;
            if pathological_cost || viol_gap > settings.mpc_violation_slack {
                return Err(format!(
                    "solve {i}: warm {:?} vs cold {:?} (|da|={da:.2e}, |ds|={ds:.2e}, \
                     cost {:.4} vs {:.4} (gap {cost_gap:.2e}), violation gap {viol_gap:.2e}, \
                     warm iters {}, cold iters {})",
                    warm.controls[0],
                    cold.controls[0],
                    warm.tracking_cost,
                    cold.tracking_cost,
                    warm.qp_iterations,
                    cold.qp_iterations
                ));
            }
        }
    }
    Ok(())
}

/// Solves seeded random strictly convex QPs cold, then warm-started from
/// their own solutions: the warm solve must land on the same optimum.
fn check_qp_warm_cold(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x9e3779b97f4a7c15));
    for trial in 0..4 {
        let n = 4 + (trial % 3) * 2;
        let m = n + 4;
        // P = MᵀM + 0.1 I is symmetric positive definite
        let mut mdata = vec![0.0; n * n];
        for v in mdata.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mmat = Mat::from_vec(n, n, mdata);
        let mut p = mmat.gram();
        for i in 0..n {
            *p.at_mut(i, i) += 0.1;
        }
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut adata = vec![0.0; m * n];
        for v in adata.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let a = Mat::from_vec(m, n, adata);
        let l: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..0.0)).collect();
        let u: Vec<f64> = l.iter().map(|lo| lo + rng.gen_range(0.5..3.0)).collect();
        let problem = QpProblem::new(p, q, a, l, u).expect("consistent random QP");
        // generous budget: the warm-start contract needs a *converged*
        // cold optimum to anchor to
        let qp_settings = QpSettings {
            max_iters: 20_000,
            ..QpSettings::default()
        };

        let cold = solve_qp(&problem, &qp_settings);
        if cold.status != QpStatus::Solved {
            // no optimum to compare against — ADMM on a random
            // ill-conditioned QP can legitimately outlast any fixed
            // budget, and warm-starting from a non-optimum then running
            // further proves nothing either way
            continue;
        }
        let warm_start = QpWarmStart::from_solution(&cold);
        let mut workspace = QpWorkspace::new();
        let warm = solve_qp_warm(&problem, &qp_settings, Some(&warm_start), &mut workspace);
        let worst = cold
            .x
            .iter()
            .zip(&warm.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        if worst > settings.qp_tolerance {
            return Err(format!(
                "trial {trial}: warm-started primal drifted {worst:.2e} from the cold optimum \
                 (n={n}, m={m}, cold iters {}, warm iters {})",
                cold.iterations, warm.iterations
            ));
        }
        if warm.iterations > cold.iterations {
            return Err(format!(
                "trial {trial}: warm start made ADMM slower ({} > {} iterations)",
                warm.iterations, cold.iterations
            ));
        }
    }
    Ok(())
}

/// Runs a small batch of generated scenarios at `parallelism = 1` and
/// `parallelism = batch` and demands bit-identical result vectors.
fn check_parallelism(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let gen = icoil_world::ProcGen::default();
    let mut scenarios: Vec<Scenario> = vec![spec.build()];
    for i in 1..settings.batch as u64 {
        scenarios.push(gen.generate(spec.seed.wrapping_add(i * 7919)).build());
    }
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        // parallel workers only pay off over full episodes; keep these short
        max_time: (settings.episode_time * 0.5).max(3.0),
        record_trace: false,
    };
    let factory = |s: &Scenario| -> Box<dyn Policy> { Box::new(PureCoPolicy::new(&config, s)) };
    let serial = run_scenarios_with(&scenarios, factory, &episode, &EvalConfig::with_parallelism(1));
    let parallel = run_scenarios_with(
        &scenarios,
        factory,
        &episode,
        &EvalConfig::with_parallelism(settings.batch.max(2)),
    );
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        if s != p {
            return Err(format!(
                "episode {i}: serial {:?}/{} frames vs parallel {:?}/{} frames",
                s.outcome, s.frames, p.outcome, p.frames
            ));
        }
    }
    Ok(())
}

/// Feeds real sensing frames from the scenario through both inference
/// paths ([`IlModel::infer`] with `InferBuffers` vs
/// [`IlModel::infer_reference`] through the allocating `forward()`),
/// plus one random-tensor probe at the network level — all bit-exact.
fn check_inference(spec: &ProcScenario) -> Result<(), String> {
    let scenario = spec.build();
    let config = ICoilConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0xA5A5);
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = World::new(scenario);
    for frame in 0..3 {
        let sensing = perception.observe(&Observation::new(&world));
        let fast = model.infer(&sensing.bev);
        let reference = model.infer_reference(&sensing.bev);
        if fast != reference {
            return Err(format!(
                "frame {frame}: buffered class {} probs[0..3] {:?} vs reference class {} \
                 probs[0..3] {:?}",
                fast.class,
                &fast.probs[..3.min(fast.probs.len())],
                reference.class,
                &reference.probs[..3.min(reference.probs.len())]
            ));
        }
        for _ in 0..10 {
            world.step(&icoil_vehicle::Action::forward(0.3, 0.05));
        }
    }
    // network-level probe on a random tensor, away from BEV statistics
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5A5A);
    let size = config.bev.size;
    let mut x = Tensor::zeros(vec![1, icoil_perception::BevImage::CHANNELS, size, size]);
    for v in x.data_mut() {
        *v = rng.gen_range(-1.0_f64..1.0) as f32;
    }
    let mut buffers = icoil_nn::InferBuffers::new();
    let network = model.network_mut();
    let buffered = network.infer_logits(&x, &mut buffers).data().to_vec();
    let forward = network.forward(&x, false);
    if buffered.as_slice() != forward.data() {
        return Err("network-level infer_logits differs from forward()".to_string());
    }
    Ok(())
}

/// Replays a seeded synthetic stream of softmax distributions and
/// obstacle sets through [`Hsa`] and through a naive reference
/// implementation of eqs. 7–8 (explicit window vectors, no running
/// sums), comparing every decision's uncertainty/complexity values.
fn check_hsa_window(spec: &ProcScenario) -> Result<(), String> {
    let scenario = spec.build();
    let hsa_config = HsaConfig::default();
    let mut hsa = Hsa::new(hsa_config);
    let cx = ComplexityParams::default();
    let mut u_window: Vec<f64> = Vec::new();
    let mut c_window: Vec<f64> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xC0FFEE);
    let ego = scenario.start_state.pose.position();
    for frame in 0..120 {
        // random but normalized probability vector
        let mut probs: Vec<f64> = (0..21).map(|_| rng.gen_range(0.01..1.0)).collect();
        let sum: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= sum;
        }
        // obstacle boxes from the scenario at a crawling timestamp
        let boxes = scenario.obstacle_footprints(frame as f64 * 0.05);

        hsa.set_ego_position(ego);
        let decision = hsa.update(&probs, &boxes);

        u_window.push(instant_uncertainty(&probs));
        c_window.push(instant_complexity(ego, &boxes, &cx));
        if u_window.len() > hsa_config.window {
            u_window.remove(0);
            c_window.remove(0);
        }
        let u_ref = u_window.iter().sum::<f64>() / u_window.len() as f64;
        let c_ref = c_window.iter().sum::<f64>() / c_window.len() as f64;
        let u_err = (decision.uncertainty - u_ref).abs() / u_ref.abs().max(1e-12);
        let c_err = (decision.complexity - c_ref).abs() / c_ref.abs().max(1e-12);
        if u_err > 1e-9 || c_err > 1e-9 {
            return Err(format!(
                "frame {frame}: window means drifted from the naive reference \
                 (U {:.12e} vs {u_ref:.12e}, C {:.12e} vs {c_ref:.12e})",
                decision.uncertainty, decision.complexity
            ));
        }
    }
    Ok(())
}

/// Drives [`Hsa`] with an adversarial alternating stream engineered to
/// request a flip every frame, and checks that committed mode changes
/// stay at least `guard_time` frames apart.
fn check_hsa_guard(spec: &ProcScenario) -> Result<(), String> {
    let scenario = spec.build();
    let hsa_config = HsaConfig::default();
    let mut hsa = Hsa::new(hsa_config);
    let ego = scenario.start_state.pose.position();
    let boxes = scenario.obstacle_footprints(0.0);
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xBADCAFE);
    // near-one-hot distribution → tiny entropy → IL requested;
    // uniform → large entropy → CO requested
    let confident: Vec<f64> = {
        let mut p = vec![1e-12; 21];
        p[3] = 1.0 - 20e-12;
        p
    };
    let uniform: Vec<f64> = vec![1.0 / 21.0; 21];

    let mut last_mode: Option<Mode> = None;
    let mut last_flip: Option<usize> = None;
    for frame in 0..600 {
        // random phase lengths keep the stream from syncing to the guard
        let probs = if rng.gen_range(0.0..1.0) < 0.5 {
            &confident
        } else {
            &uniform
        };
        hsa.set_ego_position(ego);
        let decision = hsa.update(probs, &boxes);
        if let Some(prev) = last_mode {
            if decision.mode != prev {
                if let Some(prev_flip) = last_flip {
                    let gap = frame - prev_flip;
                    if gap < hsa_config.guard_time {
                        return Err(format!(
                            "mode flipped after {gap} frames at frame {frame} \
                             (guard_time = {})",
                            hsa_config.guard_time
                        ));
                    }
                }
                last_flip = Some(frame);
            }
        }
        last_mode = Some(decision.mode);
    }
    Ok(())
}

/// Runs the same scenario twice through fresh policies; the results must
/// be bit-identical (no hidden global state, no address-dependent math).
fn check_determinism(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: (settings.episode_time * 0.5).max(3.0),
        record_trace: true,
    };
    let run = || {
        let scenario = spec.build();
        let mut policy = PureCoPolicy::new(&config, &scenario);
        let mut world = World::new(scenario);
        run_episode(&mut world, &mut policy, &episode)
    };
    let first = run();
    let second = run();
    if first != second {
        return Err(format!(
            "re-running the episode diverged: {:?}/{} frames vs {:?}/{} frames",
            first.outcome, first.frames, second.outcome, second.frames
        ));
    }
    Ok(())
}

/// Drives one CO episode with the solve log enabled, then re-solves a
/// stride of the recorded per-frame inputs cold twice — once with the
/// dense KKT backend forced, once with the sparse one — and demands
/// agreement: tracking costs within tolerance, the same convergence
/// status, and the MPC's cold-restart fallback triggering identically.
///
/// Like the warm/cold check, re-solving *identical recorded inputs* is
/// what makes a tolerance meaningful: whole-episode comparison would
/// compound rounding through the plant dynamics. The backends share one
/// ADMM loop and one Ruiz equilibration; only the KKT factorization
/// differs, so any divergence beyond factorization rounding (amplified
/// once by the SCP re-linearization) is a backend bug.
fn check_dense_sparse_qp(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let scenario = spec.build();
    let config = ICoilConfig::default();
    let params = scenario.vehicle_params;
    let mut dense_config: CoConfig = config.co;
    dense_config.qp_backend = Backend::Dense;
    let mut sparse_config = dense_config;
    sparse_config.qp_backend = Backend::Sparse;
    let budget = dense_config.scp_iterations * MPC_QP_MAX_ITERS;

    let mut policy = PureCoPolicy::new(&config, &scenario);
    policy.co_mut().enable_solve_log();
    let mut world = World::new(scenario);
    let _ = run_episode(&mut world, &mut policy, &episode_config(settings));
    let log = policy.co_mut().take_solve_log();

    for (i, record) in log.iter().enumerate() {
        if i % settings.cold_stride != 0 {
            continue;
        }
        let SolveRecord {
            state,
            reference,
            tracked,
            ..
        } = record;
        let dense = solve_mpc(state, reference, tracked, &params, &dense_config);
        let sparse = solve_mpc(state, reference, tracked, &params, &sparse_config);

        let cost_gap = (dense.tracking_cost - sparse.tracking_cost).abs()
            / dense.tracking_cost.abs().max(1e-9);
        // Convergence status must match — except when both land within
        // rounding of the iteration budget, where "capped" is decided by
        // which side of the every-10-iterations residual check each
        // backend's last ulps fall on.
        let dense_capped = dense.qp_iterations >= budget;
        let sparse_capped = sparse.qp_iterations >= budget;
        let near_budget = dense.qp_iterations.min(sparse.qp_iterations) * 10 >= budget * 8;
        let status_diverged = dense_capped != sparse_capped && !near_budget;
        // The MPC's cold-restart fallback keys on predicted violation
        // crossing MPC_REPLAN_VIOLATION: the trigger must fire for both
        // backends or neither, unless the violations straddle the
        // threshold by less than the control tolerance.
        let dense_trigger = dense.predicted_violation > MPC_REPLAN_VIOLATION;
        let sparse_trigger = sparse.predicted_violation > MPC_REPLAN_VIOLATION;
        let viol_gap = (dense.predicted_violation - sparse.predicted_violation).abs();
        let trigger_diverged =
            dense_trigger != sparse_trigger && viol_gap > settings.mpc_tolerance;
        if cost_gap > settings.backend_cost_tol || status_diverged || trigger_diverged {
            return Err(format!(
                "solve {i}: dense cost {:.4} ({} iters, violation {:.4}) vs sparse cost {:.4} \
                 ({} iters, violation {:.4}): cost gap {cost_gap:.2e}, \
                 capped {dense_capped}/{sparse_capped}, trigger {dense_trigger}/{sparse_trigger}",
                dense.tracking_cost,
                dense.qp_iterations,
                dense.predicted_violation,
                sparse.tracking_cost,
                sparse.qp_iterations,
                sparse.predicted_violation,
            ));
        }
    }
    Ok(())
}

/// Captures a stream of real BEV frames from the scenario, then runs
/// them through [`IlModel::infer_batch`] at several batch widths and
/// demands every row be *bitwise* equal to the single-sample
/// [`IlModel::infer`] of the same frame — the property the serving
/// engine's determinism contract rests on: batch composition must never
/// leak into any co-batched session's trajectory.
fn check_batched_single_il(spec: &ProcScenario) -> Result<(), String> {
    let scenario = spec.build();
    let config = ICoilConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0x17E5);
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = World::new(scenario);
    let images: Vec<_> = (0..16)
        .map(|_| {
            let bev = perception.observe(&Observation::new(&world)).bev;
            for _ in 0..3 {
                world.step(&icoil_vehicle::Action::forward(0.3, 0.05));
            }
            bev
        })
        .collect();
    let singles: Vec<_> = images.iter().map(|img| model.infer(img)).collect();
    for width in [1usize, 2, 7, 16] {
        let refs: Vec<_> = images[..width].iter().collect();
        let batched = model.infer_batch(&refs);
        for (row, (b, s)) in batched.iter().zip(&singles[..width]).enumerate() {
            if b != s {
                return Err(format!(
                    "batch width {width}, row {row}: batched class {} probs[0..3] {:?} vs \
                     single class {} probs[0..3] {:?}",
                    b.class,
                    &b.probs[..3.min(b.probs.len())],
                    s.class,
                    &s.probs[..3.min(s.probs.len())]
                ));
            }
        }
    }
    Ok(())
}

/// Replays recorded MPC inputs and real BEV frames through the kernel
/// layer twice — once with the scalar reference forced, once with the
/// detected SIMD backend — and holds each side to its declared
/// conformance mode: the solver's `f64` kernels are contracted *bitwise*
/// (no FMA, scalar-order reductions), so whole recorded solves must be
/// bit-identical; the IL `f32` kernels are contracted to ULP-level
/// agreement (FMA tolerated), so inference probabilities are compared
/// within a small tolerance instead. On machines without AVX2 both runs
/// dispatch to scalar and the check passes trivially.
fn check_simd_scalar_kernels(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    use icoil_solver::simd::KernelBackend;

    // --- solver leg: recorded MPC solves, bitwise ---
    let scenario = spec.build();
    let config = ICoilConfig::default();
    let params = scenario.vehicle_params;
    let co_config: CoConfig = config.co;
    let mut policy = PureCoPolicy::new(&config, &scenario);
    policy.co_mut().enable_solve_log();
    let mut world = World::new(scenario);
    let _ = run_episode(&mut world, &mut policy, &episode_config(settings));
    let log = policy.co_mut().take_solve_log();

    for (i, record) in log.iter().enumerate() {
        if i % settings.cold_stride != 0 {
            continue;
        }
        let SolveRecord {
            state,
            reference,
            tracked,
            ..
        } = record;
        let scalar = icoil_solver::simd::with_backend(KernelBackend::Scalar, || {
            solve_mpc(state, reference, tracked, &params, &co_config)
        });
        let simd = icoil_solver::simd::with_backend(icoil_solver::simd::detected(), || {
            solve_mpc(state, reference, tracked, &params, &co_config)
        });
        if scalar != simd {
            return Err(format!(
                "solve {i}: scalar and SIMD kernel paths diverged on a bitwise-contracted \
                 solve (scalar cost {:.17e}, {} iters vs simd cost {:.17e}, {} iters)",
                scalar.tracking_cost, scalar.qp_iterations, simd.tracking_cost, simd.qp_iterations
            ));
        }
    }

    // --- IL leg: real BEV frames, ULP-tolerance ---
    let scenario = spec.build();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0x51D0);
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = World::new(scenario);
    for frame in 0..4 {
        let sensing = perception.observe(&Observation::new(&world));
        let scalar = icoil_nn::simd::with_backend(icoil_nn::KernelBackend::Scalar, || {
            model.infer(&sensing.bev)
        });
        let simd = icoil_nn::simd::with_backend(icoil_nn::simd::detected(), || {
            model.infer(&sensing.bev)
        });
        let worst = scalar
            .probs
            .iter()
            .zip(&simd.probs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        // f32 forward pass, FMA tolerated: softmax outputs may differ in
        // the last few ulps but nowhere near decision-relevant scale
        if worst > 1e-4 {
            return Err(format!(
                "frame {frame}: IL probabilities drifted {worst:.2e} between scalar and \
                 SIMD kernels (tolerance 1e-4)"
            ));
        }
        // a class flip is only legitimate at an exact near-tie
        if scalar.class != simd.class {
            let gap = (scalar.probs[scalar.class] - scalar.probs[simd.class]).abs();
            if gap > 1e-6 {
                return Err(format!(
                    "frame {frame}: argmax flipped ({} vs {}) with a non-tied gap {gap:.2e}",
                    scalar.class, simd.class
                ));
            }
        }
        for _ in 0..8 {
            world.step(&icoil_vehicle::Action::forward(0.3, 0.05));
        }
    }
    Ok(())
}

/// Generates families of same-pattern strictly convex QPs (shared `P`
/// and `A`, per-member `q` perturbation and an equal shift of `l`/`u`)
/// and solves each family both as one block-diagonal batch
/// ([`solve_qp_batch`]) and as sequential [`solve_qp_warm`] calls — at
/// widths 1, 2, 7 and 16, cold and then warm-started from the cold
/// optima — demanding bitwise agreement on every solution field. This is
/// the CO-lane twin of [`check_batched_single_il`]: the serving engine's
/// determinism contract needs batch composition to never leak into any
/// session's solve.
fn check_batched_single_qp(spec: &ProcScenario) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_mul(0xD1B54A32D192ED03));
    let n = 8;
    let m = n + 4;
    let qp_settings = QpSettings::default();
    for &width in &[1usize, 2, 7, 16] {
        // one shared structure per family: P = MᵀM + 0.1 I, dense A
        let mut mdata = vec![0.0; n * n];
        for v in mdata.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut p = Mat::from_vec(n, n, mdata).gram();
        for i in 0..n {
            *p.at_mut(i, i) += 0.1;
        }
        let mut adata = vec![0.0; m * n];
        for v in adata.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let a = Mat::from_vec(m, n, adata);
        let base_l: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..0.0)).collect();
        let base_u: Vec<f64> = base_l.iter().map(|lo| lo + rng.gen_range(0.5..3.0)).collect();

        let problems: Vec<QpProblem> = (0..width)
            .map(|_| {
                let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                // shifting l and u by the same offset keeps the interval
                // width (and the pattern) while moving the active set
                let shift = rng.gen_range(-0.5..0.5);
                let l: Vec<f64> = base_l.iter().map(|v| v + shift).collect();
                let u: Vec<f64> = base_u.iter().map(|v| v + shift).collect();
                QpProblem::new(p.clone(), q, a.clone(), l, u).expect("consistent random QP")
            })
            .collect();

        let mut seq_ws: Vec<QpWorkspace> = (0..width).map(|_| QpWorkspace::new()).collect();
        let mut bat_ws: Vec<QpWorkspace> = (0..width).map(|_| QpWorkspace::new()).collect();
        let mut warm: Vec<Option<QpWarmStart>> = vec![None; width];
        for round in 0..2 {
            let sequential: Vec<_> = problems
                .iter()
                .zip(seq_ws.iter_mut())
                .zip(&warm)
                .map(|((prob, ws), w)| solve_qp_warm(prob, &qp_settings, w.as_ref(), ws))
                .collect();
            let jobs: Vec<QpBatchJob<'_>> = problems
                .iter()
                .zip(bat_ws.iter_mut())
                .zip(&warm)
                .map(|((prob, ws), w)| QpBatchJob {
                    problem: prob,
                    warm: w.as_ref(),
                    workspace: ws,
                })
                .collect();
            let batched = solve_qp_batch(jobs, &qp_settings)
                .map_err(|e| format!("width {width} round {round}: batch rejected: {e}"))?;
            for (block, (s, b)) in sequential.iter().zip(&batched).enumerate() {
                if s.x != b.x
                    || s.y != b.y
                    || s.status != b.status
                    || s.iterations != b.iterations
                    || s.primal_residual != b.primal_residual
                    || s.dual_residual != b.dual_residual
                {
                    return Err(format!(
                        "width {width} round {round} block {block}: batched solve diverged \
                         from sequential (status {:?}/{:?}, iters {}/{}, primal \
                         {:.17e}/{:.17e}, dual {:.17e}/{:.17e})",
                        s.status,
                        b.status,
                        s.iterations,
                        b.iterations,
                        s.primal_residual,
                        b.primal_residual,
                        s.dual_residual,
                        b.dual_residual
                    ));
                }
            }
            // round 2 exercises the warm path and the cached factors
            warm = sequential
                .iter()
                .map(|s| Some(QpWarmStart::from_solution(s)))
                .collect();
        }
    }
    Ok(())
}

/// Frame-by-frame bitwise comparison of two served response streams,
/// ignoring only the session id field (a restored-into-a-fresh-engine
/// twin legitimately reuses the original id, but a from-scratch twin
/// gets a new one).
fn same_stream(
    reference: &[icoil_serve::StepResponse],
    got: &[icoil_serve::StepResponse],
    what: &str,
) -> Result<(), String> {
    if reference.len() != got.len() {
        return Err(format!(
            "{what}: stream lengths differ ({} vs {})",
            reference.len(),
            got.len()
        ));
    }
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        let mut b = b.clone();
        b.session = a.session;
        if *a != b {
            return Err(format!(
                "{what}: frame {i} diverged (reference frame {} t {:.6} x {:.17e} \
                 mode {} vs frame {} t {:.6} x {:.17e} mode {})",
                a.frame, a.time, a.x, a.mode, b.frame, b.time, b.x, b.mode
            ));
        }
    }
    Ok(())
}

/// Runs the generated scenario through the serving engine, evicts the
/// session at a seed-fuzzed frame, and restores the snapshot three ways
/// — back into the same engine, and into two fresh engines at shard
/// counts 1 and 3 — demanding the remaining trajectory be bitwise
/// identical to an uninterrupted reference run in every case, and that
/// the two fresh engines end with identical telemetry counters. This is
/// the end-to-end form of the serve crate's checkpoint contract: a
/// snapshot carries *every* bit of episode state the next frame reads
/// (warm-start memory, HSA windows, adapted solver scaling included),
/// on any shard layout, in any process.
fn check_checkpoint_restore_replay(
    spec: &ProcScenario,
    settings: &CheckSettings,
) -> Result<(), String> {
    use icoil_serve::{Serve, ServeConfig, SessionSpec};
    use std::time::Duration;

    // ~2 s of simulated driving (1.2 s under smoke settings): enough
    // frames for warm starts, HSA windows and mode flips to accumulate
    // state that a lossy snapshot would betray
    let total: usize = if settings.episode_time >= 12.0 { 40 } else { 24 };
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xC0DE_5EED);
    let cut = rng.gen_range(1..total);

    // a generous deadline and deep queue make sheds impossible, so the
    // trajectory is the pure function of the scenario the contract needs
    let config = |shards: usize| ServeConfig {
        shards,
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let model = || {
        IlModel::untrained(
            ActionCodec::default(),
            ICoilConfig::default().bev,
            spec.seed ^ 0x1C01,
        )
    };
    let session_spec = || SessionSpec::Scenario(Box::new(spec.build()));

    // reference: one uninterrupted session
    let reference = {
        let server = Serve::start(config(1), model());
        let handle = server.handle();
        let id = handle
            .create(session_spec())
            .map_err(|e| format!("create reference: {e}"))?;
        let stream: Result<Vec<_>, _> = (0..total).map(|_| handle.step(id)).collect();
        server.shutdown();
        stream.map_err(|e| format!("step reference: {e}"))?
    };
    if reference.iter().any(|r| r.shed) {
        return Err("reference run shed under a 30 s deadline".to_string());
    }

    // interrupted twin: evict at the fuzzed cut, restore in-process
    let bytes = {
        let server = Serve::start(config(2), model());
        let handle = server.handle();
        let id = handle
            .create(session_spec())
            .map_err(|e| format!("create twin: {e}"))?;
        let mut twin = Vec::with_capacity(total);
        for frame in 0..cut {
            twin.push(
                handle
                    .step(id)
                    .map_err(|e| format!("twin frame {frame}: {e}"))?,
            );
        }
        let bytes = handle
            .evict(id)
            .map_err(|e| format!("evict at frame {cut}: {e}"))?;
        let back = handle
            .restore(&bytes)
            .map_err(|e| format!("in-process restore: {e}"))?;
        if back != id {
            return Err(format!("in-process restore renamed session {id} to {back}"));
        }
        for frame in cut..total {
            twin.push(
                handle
                    .step(id)
                    .map_err(|e| format!("restored twin frame {frame}: {e}"))?,
            );
        }
        server.shutdown();
        same_stream(&reference, &twin, "in-process evict+restore")?;

        // the same bytes restore into fresh engines below
        bytes
    };

    // fresh engines at two shard counts resume the same snapshot
    let mut tails = Vec::new();
    let mut counters = Vec::new();
    for shards in [1usize, 3] {
        let server = Serve::start(config(shards), model());
        let handle = server.handle();
        let id = handle
            .restore(&bytes)
            .map_err(|e| format!("fresh restore at {shards} shard(s): {e}"))?;
        let tail: Result<Vec<_>, _> = (cut..total).map(|_| handle.step(id)).collect();
        let tail = tail.map_err(|e| format!("fresh tail at {shards} shard(s): {e}"))?;
        let metrics = handle
            .metrics()
            .map_err(|e| format!("metrics at {shards} shard(s): {e}"))?;
        counters.push(metrics.counter_snapshot());
        server.shutdown();
        same_stream(
            &reference[cut..],
            &tail,
            &format!("fresh restore at {shards} shard(s)"),
        )?;
        tails.push(tail);
    }
    if tails[0] != tails[1] {
        return Err("fresh restores at shard counts 1 and 3 diverged from each other".to_string());
    }
    if counters[0] != counters[1] {
        return Err(format!(
            "telemetry counters differ across shard counts after identical restored \
             replays: {:?} vs {:?}",
            counters[0], counters[1]
        ));
    }
    Ok(())
}

/// Calibrates the int8 IL lane on the first BEV frames of the generated
/// scenario and holds it to its own contract on the held-out rest:
///
/// * every quantized logit within the *calibrated* absolute-error bound
///   of the f32 logit of the same frame (the bound the quantizer itself
///   published, not an arbitrary tolerance);
/// * the decoded argmax flipping only at a genuine near-tie — a flip
///   across an f32 logit gap wider than twice the bound cannot be
///   rounding and is reported as a divergence;
/// * end to end, a served episode pinned to the int8 lane reaching the
///   same outcome (success / collision / timeout / still running) as its
///   f32 twin on the same scenario.
fn check_quantized_il(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    use icoil_il::IlPrecision;
    use icoil_nn::{InferBuffers, QuantScratch, QuantizedNetwork};
    use icoil_perception::BevImage;
    use icoil_serve::{Serve, ServeConfig, SessionSpec};
    use std::time::Duration;

    let scenario = spec.build();
    let config = ICoilConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0x2178);
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = World::new(scenario);
    let frames: Vec<BevImage> = (0..24)
        .map(|_| {
            let bev = perception.observe(&Observation::new(&world)).bev;
            for _ in 0..3 {
                world.step(&icoil_vehicle::Action::forward(0.3, 0.05));
            }
            bev
        })
        .collect();
    // even frames calibrate, odd frames are held out: the calibrated
    // bound is a promise about the calibration *distribution*, so the
    // held-out set must sample the same trajectory, not its far tail
    let calib: Vec<&BevImage> = frames.iter().step_by(2).collect();
    let held_out: Vec<&BevImage> = frames.iter().skip(1).step_by(2).collect();

    // --- logit leg, at the network level: the exact calibrated bound ---
    let size = config.bev.size;
    let network = model.network_mut().clone();
    let tensors: Vec<Tensor> = calib
        .iter()
        .map(|&img| {
            Tensor::from_vec(vec![BevImage::CHANNELS, size, size], img.data.clone())
                .expect("BEV frame reshapes")
        })
        .collect();
    let qnet = QuantizedNetwork::calibrate(&network, &tensors);
    let bound = qnet.logit_error_bound();
    let mut buffers = InferBuffers::new();
    let mut scratch = QuantScratch::new();
    let mut qout = Tensor::default();
    let mut x = Tensor::zeros(vec![1, BevImage::CHANNELS, size, size]);
    // last-maximal index, the decode rule shared by every inference path
    let argmax = |row: &[f32]| {
        let mut c = 0;
        for (j, &v) in row.iter().enumerate() {
            if v >= row[c] {
                c = j;
            }
        }
        c
    };
    for (i, img) in held_out.iter().enumerate() {
        x.data_mut().copy_from_slice(&img.data);
        let f_logits = network.infer_logits(&x, &mut buffers).data().to_vec();
        qnet.forward_batch_into(
            &[img.data.as_slice()],
            &[BevImage::CHANNELS, size, size],
            &mut buffers,
            &mut scratch,
            &mut qout,
        );
        let q_logits = qout.data();
        let worst = f_logits
            .iter()
            .zip(q_logits)
            .map(|(f, q)| (f - q).abs())
            .fold(0.0_f32, f32::max);
        if worst > bound {
            return Err(format!(
                "held-out frame {i}: quantized logit error {worst:.6} exceeds the \
                 calibrated bound {bound:.6}"
            ));
        }
        let fc = argmax(&f_logits);
        let qc = argmax(q_logits);
        if fc != qc {
            let gap = (f_logits[fc] - f_logits[qc]).abs();
            if gap > 2.0 * bound {
                return Err(format!(
                    "held-out frame {i}: argmax flipped {fc} -> {qc} across a non-tied \
                     f32 logit gap {gap:.6} (bound {bound:.6})"
                ));
            }
        }
    }

    // --- outcome-parity leg: one served episode per precision ---
    let total: usize = if settings.episode_time >= 12.0 { 40 } else { 24 };
    let run_served = |precision: IlPrecision| -> Result<(usize, Option<String>), String> {
        let serve_config = ServeConfig {
            il_precision: precision,
            co_deadline: Duration::from_secs(30),
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0x2178);
        let server = Serve::start(serve_config, model);
        let handle = server.handle();
        let id = handle
            .create(SessionSpec::Scenario(Box::new(spec.build())))
            .map_err(|e| format!("create {} session: {e}", precision.label()))?;
        let mut outcome = None;
        let mut served = 0usize;
        for frame in 0..total {
            let resp = handle
                .step(id)
                .map_err(|e| format!("{} frame {frame}: {e}", precision.label()))?;
            served = frame + 1;
            outcome = resp.outcome;
            if outcome.is_some() {
                break;
            }
        }
        server.shutdown();
        Ok((served, outcome))
    };
    let (frames_f32, outcome_f32) = run_served(IlPrecision::F32)?;
    let (frames_int8, outcome_int8) = run_served(IlPrecision::Int8)?;
    if outcome_f32 != outcome_int8 {
        return Err(format!(
            "episode outcome parity broken: f32 ended {outcome_f32:?} after {frames_f32} \
             frame(s), int8 ended {outcome_int8:?} after {frames_int8} frame(s)"
        ));
    }
    Ok(())
}

/// Runs the full iCOIL stack (IL + HSA + CO) twice on the generated
/// scenario — whichever map family it belongs to — and demands
/// bit-identical episodes and telemetry counters, plus agreement between
/// the post-hoc trace-derived gear-reversal count and the policy's live
/// `gear_reversals` counter. The fuzz loop pins every family in turn, so
/// structural obstacles (framing cars, pillar grids, dead-end walls) and
/// scripted crowds all pass through this sweep.
fn check_family_determinism(spec: &ProcScenario, settings: &CheckSettings) -> Result<(), String> {
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: (settings.episode_time * 0.5).max(3.0),
        record_trace: true,
    };
    let family = spec.family.kind().name();
    let run = || {
        let scenario = spec.build();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, spec.seed ^ 0xFA31);
        let mut policy = ICoilPolicy::new(&config, model, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(&mut world, &mut policy, &episode);
        let counters =
            icoil_core::eval::drain_episode_metrics(&mut policy, &result).counter_snapshot();
        (result, counters)
    };
    let (first, first_counters) = run();
    let (second, second_counters) = run();
    if first != second {
        return Err(format!(
            "family {family}: re-running the full-stack episode diverged: \
             {:?}/{} frames vs {:?}/{} frames",
            first.outcome, first.frames, second.outcome, second.frames
        ));
    }
    if first_counters != second_counters {
        return Err(format!(
            "family {family}: telemetry counters diverged across identical replays: \
             {first_counters:?} vs {second_counters:?}"
        ));
    }
    let traced = gear_reversals(&first.trace) as u64;
    let counted = first_counters
        .iter()
        .find(|(name, _)| name == "gear_reversals")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    if traced != counted {
        return Err(format!(
            "family {family}: trace-derived gear reversals {traced} disagree with the \
             live counter {counted}"
        ));
    }
    Ok(())
}

/// Exercises the versioned-weight serving contract end to end on the
/// generated scenario:
///
/// * a session created before a mid-episode hot-swap keeps the
///   generation pinned at its creation to the very end and replays
///   bitwise against a reference server that never swaps;
/// * a session created after the publish rides the new generation;
/// * a snapshot carrying a generation the target server never published
///   is refused with the typed [`UnknownWeightVersion`] error instead of
///   silently replaying on different weights;
/// * the IL-lane safety projection is idempotent — re-projecting a
///   projected action returns it bitwise unchanged and reports no clip,
///   and actions the first pass already found feasible pass through
///   untouched.
///
/// [`UnknownWeightVersion`]: icoil_serve::ServeError::UnknownWeightVersion
fn check_weight_version_pinning(
    spec: &ProcScenario,
    settings: &CheckSettings,
) -> Result<(), String> {
    use icoil_adapt::{SafetyProjector, WeightStore};
    use icoil_serve::{Serve, ServeConfig, ServeError, SessionSpec};
    use std::sync::Arc;
    use std::time::Duration;

    let total: usize = if settings.episode_time >= 12.0 { 40 } else { 24 };
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5AFE_11A0);
    let swap_at = rng.gen_range(1..total);

    // a generous deadline and deep queue make sheds impossible, so both
    // streams are pure functions of (scenario, pinned weights)
    let config = || ServeConfig {
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let pinned_model = || {
        IlModel::untrained(
            ActionCodec::default(),
            ICoilConfig::default().bev,
            spec.seed ^ 0xA11A,
        )
    };
    let next_model = || {
        IlModel::untrained(
            ActionCodec::default(),
            ICoilConfig::default().bev,
            spec.seed ^ 0xB22B,
        )
    };
    let session_spec = || SessionSpec::Scenario(Box::new(spec.build()));

    // reference: generation 0 only, never swapped
    let reference = {
        let server = Serve::start(config(), pinned_model());
        let handle = server.handle();
        let id = handle
            .create(session_spec())
            .map_err(|e| format!("create reference: {e}"))?;
        let stream: Result<Vec<_>, _> = (0..total).map(|_| handle.step(id)).collect();
        server.shutdown();
        stream.map_err(|e| format!("step reference: {e}"))?
    };

    // hot-swap twin: generation 1 goes live at the fuzzed frame
    let store = Arc::new(WeightStore::new(pinned_model()));
    let server = Serve::start_with_store(config(), Arc::clone(&store));
    let handle = server.handle();
    let pinned = handle
        .create(session_spec())
        .map_err(|e| format!("create pinned session: {e}"))?;
    let mut stream = Vec::with_capacity(total);
    for frame in 0..swap_at {
        stream.push(
            handle
                .step(pinned)
                .map_err(|e| format!("pinned frame {frame}: {e}"))?,
        );
    }
    let published = store.publish(next_model(), 1);
    if published != 1 {
        return Err(format!(
            "publishing the second generation returned version {published}, expected 1"
        ));
    }
    let fresh = handle
        .create(session_spec())
        .map_err(|e| format!("create post-swap session: {e}"))?;
    let first = handle
        .step(fresh)
        .map_err(|e| format!("post-swap step: {e}"))?;
    if first.weight_version != 1 {
        return Err(format!(
            "a session created after the publish reports weight version {}, expected 1",
            first.weight_version
        ));
    }
    for frame in swap_at..total {
        stream.push(
            handle
                .step(pinned)
                .map_err(|e| format!("pinned frame {frame} after the swap: {e}"))?,
        );
    }
    if let Some(r) = stream.iter().find(|r| r.weight_version != 0) {
        return Err(format!(
            "the pinned session drifted to weight version {} at frame {}",
            r.weight_version, r.frame
        ));
    }
    same_stream(
        &reference,
        &stream,
        &format!("pinned session across a swap at frame {swap_at}"),
    )?;

    // a generation-1 snapshot is refused by a server that never
    // published generation 1
    let bytes = handle
        .evict(fresh)
        .map_err(|e| format!("evict post-swap session: {e}"))?;
    server.shutdown();
    let stale = Serve::start(config(), pinned_model());
    let refused = stale.handle().restore(&bytes);
    stale.shutdown();
    match refused {
        Err(ServeError::UnknownWeightVersion(1)) => {}
        Ok(_) => {
            return Err(
                "a generation-1 snapshot restored onto a server that only knows generation 0"
                    .to_string(),
            )
        }
        Err(other) => {
            return Err(format!(
                "expected UnknownWeightVersion(1) refusing the stale restore, got: {other}"
            ))
        }
    }

    // safety projection idempotence on real frames of this scenario,
    // over the whole action codebook
    let scenario = spec.build();
    let params = scenario.vehicle_params;
    let icoil = ICoilConfig::default();
    let mut safety = icoil.safety;
    safety.enabled = true;
    let projector = SafetyProjector::new(safety);
    let codec = ActionCodec::default();
    let mut perception = Perception::new(icoil.bev, &scenario);
    let mut world = World::new(scenario);
    for frame in 0..8 {
        let sensing = perception.observe(&Observation::new(&world));
        for class in 0..codec.num_classes() {
            let action = codec.decode(class);
            let once = projector.project(world.ego(), &params, &sensing.boxes, action);
            let twice = projector.project(world.ego(), &params, &sensing.boxes, once.action);
            if twice.clipped || twice.action != once.action {
                return Err(format!(
                    "safety projection is not idempotent at frame {frame} class {class}: \
                     first pass {:?} (clipped {}), second pass {:?} (clipped {})",
                    once.action, once.clipped, twice.action, twice.clipped
                ));
            }
            if !once.clipped && once.action != action {
                return Err(format!(
                    "an unclipped projection rewrote the action at frame {frame} class \
                     {class}: {:?} -> {:?}",
                    action, once.action
                ));
            }
        }
        for _ in 0..3 {
            world.step(&icoil_vehicle::Action::forward(0.3, 0.05));
        }
    }
    Ok(())
}

/// The canary "fails" whenever the scenario has a dynamic obstacle —
/// a deliberately scenario-dependent defect that exercises the full
/// report-and-shrink path without touching any real subsystem.
fn check_injected_canary(spec: &ProcScenario) -> Result<(), String> {
    if spec.routes.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "canary: scenario carries {} dynamic route(s)",
            spec.routes.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_world::ProcGen;

    #[test]
    fn cheap_checks_pass_on_generated_scenarios() {
        let gen = ProcGen::default();
        for seed in 0..3 {
            let spec = gen.generate(seed);
            assert_eq!(check_qp_warm_cold(&spec, &CheckSettings::default()), Ok(()));
            assert_eq!(check_inference(&spec), Ok(()));
            assert_eq!(check_batched_single_il(&spec), Ok(()));
            assert_eq!(check_batched_single_qp(&spec), Ok(()));
            assert_eq!(check_hsa_window(&spec), Ok(()));
            assert_eq!(check_hsa_guard(&spec), Ok(()));
        }
    }

    #[test]
    fn quantized_il_check_passes_on_generated_scenarios() {
        let gen = ProcGen::default();
        for seed in [0u64, 11] {
            let spec = gen.generate(seed);
            assert_eq!(
                run_check(CheckKind::QuantizedIl, &spec, &CheckSettings::smoke()),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn canary_fires_only_with_dynamics() {
        let gen = ProcGen::default();
        let with = (0..100)
            .map(|s| gen.generate(s))
            .find(|s| !s.routes.is_empty())
            .expect("a dynamic spec exists");
        let without = (0..100)
            .map(|s| gen.generate(s))
            .find(|s| s.routes.is_empty())
            .expect("a static spec exists");
        assert!(check_injected_canary(&with).is_err());
        assert_eq!(check_injected_canary(&without), Ok(()));
    }

    /// Regression for fuzzer seed 182: a warm seed carried across this
    /// scenario's reference strands ADMM (both SCP passes capped) and
    /// used to return a feasible solution 60x costlier than the cold
    /// solve of the same frame. The MPC's cold-restart fallback now
    /// re-solves such frames from scratch, so the differential check
    /// must come back clean on the campaign's minimized repro.
    #[test]
    fn warm_capped_solves_fall_back_to_cold_on_fuzzer_seed_182() {
        use icoil_geom::{Pose2, Vec2};
        use icoil_world::{MapFamily, RouteSpec, StaticSpec};
        let spec = ProcScenario {
            seed: 182,
            lot_w: 30.0,
            lot_h: 18.875938917286458,
            family: MapFamily::ParallelCurb,
            bay_frac: 0.5,
            statics: vec![StaticSpec {
                pose: Pose2::new(8.95577114397386, 7.470088871181514, -2.687110353761553),
                length: 2.8396619358472193,
                width: 2.5529059057700385,
            }],
            routes: vec![RouteSpec {
                waypoints: vec![
                    Vec2::new(3.0301300666644395, 9.105537526822438),
                    Vec2::new(19.55843279652683, 9.105537526822438),
                ],
                speed: 0.7420768441962187,
            }],
            start: Pose2::new(3.1766061701633737, 6.231569360154387, 0.10085374526121449),
            noise_scale: 0.0,
        };
        // the original divergence fired at solve 140 (t = 7.0 s)
        let settings = CheckSettings {
            episode_time: 8.0,
            ..CheckSettings::default()
        };
        assert_eq!(run_check(CheckKind::WarmColdMpc, &spec, &settings), Ok(()));
    }

    #[test]
    fn check_names_are_stable() {
        let names: Vec<&str> = CheckKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "warm_cold_mpc",
                "qp_warm_cold",
                "parallelism",
                "inference",
                "hsa_window",
                "hsa_guard",
                "determinism",
                "dense_sparse_qp",
                "batched_single_il",
                "simd_scalar_kernels",
                "batched_single_qp",
                "checkpoint_restore_replay",
                "quantized_il",
                "family_determinism",
                "weight_version_pinning"
            ]
        );
    }

    #[test]
    fn weight_version_pinning_check_passes_on_generated_scenarios() {
        let gen = ProcGen::default();
        for seed in [0u64, 7] {
            let spec = gen.generate(seed);
            assert_eq!(
                run_check(CheckKind::WeightVersionPinning, &spec, &CheckSettings::smoke()),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn family_determinism_check_passes_on_every_family() {
        for (i, kind) in icoil_world::MapFamilyKind::ALL.into_iter().enumerate() {
            let gen = ProcGen::new(icoil_world::ProcGenConfig {
                family: Some(kind),
                ..icoil_world::ProcGenConfig::default()
            });
            let spec = gen.generate(40 + i as u64);
            assert_eq!(
                run_check(CheckKind::FamilyDeterminism, &spec, &CheckSettings::smoke()),
                Ok(()),
                "family {}",
                kind.name()
            );
        }
    }
}
