//! The fuzz loop: generate → check → (on divergence) shrink → report.

use crate::checks::{run_check, telemetry_snapshot, CheckKind, CheckSettings};
use crate::report::{DivergenceRecord, TriageReport};
use icoil_world::{shrink, MapFamilyKind, ProcGen, ProcGenConfig};

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of scenarios to generate and check.
    pub cases: usize,
    /// First generator seed; case `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Use the reduced smoke settings (shorter episodes, wider strides).
    pub smoke: bool,
    /// Also run the deliberately-failing canary check, to demonstrate
    /// the shrink-and-triage path end to end.
    pub inject: bool,
    /// Generator sampling ranges.
    pub gen: ProcGenConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 200,
            seed0: 0,
            smoke: false,
            inject: false,
            gen: ProcGenConfig::default(),
        }
    }
}

/// How often each check runs, as a stride over the case index.
///
/// Cheap checks run on every scenario; episode-heavy ones are strided so
/// a 200-case campaign stays in CI-friendly wall-clock territory while
/// every check still sees a diverse scenario sample. The tallies in the
/// report make the striding visible rather than silent.
fn stride(kind: CheckKind, smoke: bool) -> usize {
    let base = match kind {
        CheckKind::QpWarmCold
        | CheckKind::Inference
        | CheckKind::BatchedSingleIl
        | CheckKind::BatchedSingleQp
        | CheckKind::HsaWindow
        | CheckKind::HsaGuard
        | CheckKind::InjectedCanary => 1,
        CheckKind::WarmColdMpc => 2,
        CheckKind::DenseSparseQp => 2,
        CheckKind::SimdScalarKernels => 2,
        CheckKind::Determinism => 5,
        CheckKind::Parallelism => 5,
        CheckKind::CheckpointRestoreReplay => 5,
        // two served episodes per case: stride like the other
        // serving-engine check
        CheckKind::QuantizedIl => 5,
        // two full-stack episodes per case
        CheckKind::FamilyDeterminism => 5,
        // two served episodes plus a stale-restore round trip per case
        CheckKind::WeightVersionPinning => 5,
    };
    if smoke && base > 1 {
        base * 2
    } else {
        base
    }
}

/// Runs the campaign and produces the triage report.
///
/// Every divergence is re-verified and then shrunk with the world
/// crate's deterministic shrinker: the minimized spec recorded in the
/// report still fails the same check.
pub fn run_fuzz(config: &FuzzConfig) -> TriageReport {
    run_fuzz_with_progress(config, |_, _| {})
}

/// [`run_fuzz`] with a progress callback `(case_index, cases)`.
pub fn run_fuzz_with_progress<P>(config: &FuzzConfig, mut progress: P) -> TriageReport
where
    P: FnMut(usize, usize),
{
    // With no family pinned, the campaign cycles the full matrix: case i
    // generates from family ALL[i % 6], so every family sees an even
    // share of every check (strides are coprime with nothing here — the
    // tallies in the report make the split visible). A pinned family
    // runs the whole campaign on that family alone.
    let generators: Vec<ProcGen> = match config.gen.family {
        Some(_) => vec![ProcGen::new(config.gen)],
        None => MapFamilyKind::ALL
            .into_iter()
            .map(|kind| {
                ProcGen::new(ProcGenConfig {
                    family: Some(kind),
                    ..config.gen
                })
            })
            .collect(),
    };
    let settings = if config.smoke {
        CheckSettings::smoke()
    } else {
        CheckSettings::default()
    };
    let mut checks: Vec<CheckKind> = CheckKind::ALL.to_vec();
    if config.inject {
        checks.push(CheckKind::InjectedCanary);
    }

    let mut report = TriageReport {
        cases: config.cases,
        seed0: config.seed0,
        smoke: config.smoke,
        checks: Vec::new(),
        divergences: Vec::new(),
        unexplained: 0,
    };

    for i in 0..config.cases {
        progress(i, config.cases);
        let seed = config.seed0 + i as u64;
        let spec = generators[i % generators.len()].generate(seed);
        for &kind in &checks {
            if i % stride(kind, config.smoke) != 0 {
                continue;
            }
            report.tally_mut(kind.name()).runs += 1;
            let Err(detail) = run_check(kind, &spec, &settings) else {
                continue;
            };
            report.tally_mut(kind.name()).divergences += 1;
            let minimized = shrink(&spec, |cand| run_check(kind, cand, &settings).is_err());
            let injected = kind == CheckKind::InjectedCanary;
            if !injected {
                report.unexplained += 1;
            }
            let telemetry = telemetry_snapshot(&minimized, &settings);
            report.divergences.push(DivergenceRecord {
                check: kind.name().to_string(),
                seed,
                detail,
                injected,
                shrunk_away: (
                    spec.statics.len() - minimized.statics.len(),
                    spec.routes.len() - minimized.routes.len(),
                ),
                scenario: spec.clone(),
                minimized,
                telemetry,
            });
        }
    }
    progress(config.cases, config.cases);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fuzz_is_clean_and_deterministic() {
        let config = FuzzConfig {
            cases: 2,
            seed0: 0,
            smoke: true,
            inject: false,
            gen: ProcGenConfig::default(),
        };
        let a = run_fuzz(&config);
        assert!(a.passed(), "unexpected divergences: {:?}", a.divergences);
        let b = run_fuzz(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn injected_canary_is_caught_and_shrunk() {
        // pick a seed whose case-0 generator (family ALL[0] when no
        // family is pinned) yields a dynamic-obstacle scenario
        let gen = ProcGen::new(ProcGenConfig {
            family: Some(MapFamilyKind::ALL[0]),
            ..ProcGenConfig::default()
        });
        let seed0 = (0..500)
            .find(|&s| !gen.generate(s).routes.is_empty())
            .expect("a dynamic scenario exists");
        let config = FuzzConfig {
            cases: 1,
            seed0,
            smoke: true,
            inject: true,
            gen: ProcGenConfig::default(),
        };
        let report = run_fuzz(&config);
        // the canary must fire, be marked injected, and not fail the run
        assert!(report.passed(), "canary must not count as unexplained");
        let canary: Vec<_> = report
            .divergences
            .iter()
            .filter(|d| d.check == "injected_canary")
            .collect();
        assert_eq!(canary.len(), 1);
        let d = canary[0];
        assert!(d.injected);
        // minimized: exactly one route, nothing else left to remove
        assert_eq!(d.minimized.routes.len(), 1);
        assert!(d.minimized.statics.is_empty());
        assert_eq!(d.minimized.noise_scale, 0.0);
        assert_eq!(d.minimized.validity(), Ok(()));
        // the repro carries a telemetry snapshot with real solver context
        assert!(
            d.telemetry.iter().any(|(k, v)| k == "mpc_solves" && *v > 0),
            "telemetry snapshot attached: {:?}",
            d.telemetry
        );
    }
}
