//! Trained-model artifacts: train once, cache on disk, reuse everywhere.
//!
//! The benchmark binaries all need the same trained IL model; training it
//! per binary would dominate their runtime. [`load_or_train`] persists
//! the model JSON under `artifacts/` so the first caller pays and the
//! rest load.

use crate::config::ICoilConfig;
use icoil_il::{collect_demonstrations, dagger_train, train, DaggerConfig, IlModel, TrainConfig};
use icoil_vehicle::ActionCodec;
use icoil_world::{Difficulty, ScenarioConfig};
use std::path::Path;

/// Trains an IL model on expert demonstrations from `episodes` easy-level
/// scenarios for `epochs` epochs (the paper: 5 171 samples, 300 epochs;
/// scale down for quick runs).
pub fn train_default_model(episodes: u64, epochs: usize) -> IlModel {
    let config = ICoilConfig::default();
    let codec = ActionCodec::default();
    let scenarios: Vec<ScenarioConfig> = (0..episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 1000 + s))
        .collect();
    let dataset = collect_demonstrations(&scenarios, &codec, &config.bev, 90.0);
    assert!(
        !dataset.is_empty(),
        "expert produced no successful demonstrations"
    );
    let train_config = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let (model, _) = train(&dataset, &codec, &config.bev, &train_config);
    model
}

/// Trains the production IL model: DART-style demonstrations followed by
/// `rounds` DAgger aggregation rounds (the covariate-shift fix the paper
/// points at via HG-DAgger \[15\]).
pub fn train_dagger_model(episodes: u64, epochs: usize, rounds: usize) -> IlModel {
    let config = ICoilConfig::default();
    let codec = ActionCodec::default();
    let scenarios: Vec<ScenarioConfig> = (0..episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 1000 + s))
        .collect();
    let dataset = collect_demonstrations(&scenarios, &codec, &config.bev, 90.0);
    assert!(
        !dataset.is_empty(),
        "expert produced no successful demonstrations"
    );
    let dagger_config = DaggerConfig {
        rounds,
        episodes_per_round: (episodes / 2).max(2),
        max_time: 60.0,
        train: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    };
    let (model, _) = dagger_train(dataset, 2000, &codec, &config.bev, &dagger_config);
    model
}

/// Loads a cached model from `path`, or trains one and writes the cache.
///
/// `dagger_rounds = 0` gives plain behavioral cloning; positive values
/// run that many DAgger aggregation rounds on top.
///
/// # Errors
///
/// Returns an IO error when the cache cannot be read or written, or a
/// JSON error (wrapped into `io::Error`) when the cache is corrupt.
pub fn load_or_train(
    path: &Path,
    episodes: u64,
    epochs: usize,
    dagger_rounds: usize,
) -> std::io::Result<IlModel> {
    if path.exists() {
        let json = std::fs::read_to_string(path)?;
        return IlModel::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
    }
    let model = if dagger_rounds == 0 {
        train_default_model(episodes, epochs)
    } else {
        train_dagger_model(episodes, epochs, dagger_rounds)
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, model.to_json())?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_or_train_roundtrips_through_cache() {
        let dir = std::env::temp_dir().join("icoil_test_artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("model.json");
        // 1 episode, 1 epoch, no DAgger: fast but real
        let m1 = load_or_train(&path, 1, 1, 0).unwrap();
        assert!(path.exists());
        let m2 = load_or_train(&path, 1, 1, 0).unwrap();
        assert_eq!(m1.to_json(), m2.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
