//! The iCOIL policy and its two single-mode baselines.

use crate::config::ICoilConfig;
use icoil_adapt::SafetyProjector;
use icoil_co::{CoController, CoOutput, MpcSolution, MpcStatus};
use icoil_hsa::{Hsa, Mode};
use icoil_il::IlModel;
use icoil_perception::Perception;
use icoil_solver::Backend;
use icoil_telemetry::{Counter, FrameEvent, Recorder, Series, SolveEvent};
use icoil_vehicle::VehicleParams;
use icoil_world::episode::{Decision, ModeTag, Observation, Policy};
use icoil_world::Scenario;
use std::time::Instant;

/// Stage-name string of an HSA mode for trace events.
fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Il => "IL",
        Mode::Co => "CO",
    }
}

/// Maps an MPC solution onto the telemetry solve event.
fn solve_event(mpc: &MpcSolution) -> SolveEvent {
    SolveEvent {
        scp_passes: mpc.scp_passes,
        admm_iterations: mpc.qp_iterations as u64,
        backend: match mpc.backend {
            Backend::Sparse => "Sparse",
            _ => "Dense",
        },
        reg_bumps: mpc.diagnostics.reg_bumps,
        symbolic_cache_hits: mpc.diagnostics.symbolic_cache_hits,
        symbolic_rebuilds: mpc.diagnostics.symbolic_rebuilds,
        factor_cache_hits: mpc.diagnostics.factor_cache_hits,
        cold_restart: mpc.cold_restarted,
        numerical_error: mpc.status == MpcStatus::NumericalError,
    }
}

/// Builds the frame event shared by all three policies. Stage timings
/// are seconds; a negative value marks a stage that did not run.
#[allow(clippy::too_many_arguments)]
fn frame_event<'a>(
    obs: &Observation,
    mode: &'a str,
    raw_mode: &'a str,
    uncertainty: f64,
    complexity: f64,
    ratio: f64,
    stages: [f64; 4],
    total_s: f64,
    co_out: Option<&CoOutput>,
    solve: Option<SolveEvent>,
) -> FrameEvent<'a> {
    FrameEvent {
        frame: obs.frame(),
        time: obs.time(),
        mode,
        raw_mode,
        uncertainty,
        complexity,
        ratio,
        perception_s: stages[0],
        il_s: stages[1],
        hsa_s: stages[2],
        co_s: stages[3],
        total_s,
        emergency: co_out.is_some_and(|o| o.emergency),
        safe_brake: co_out.is_some_and(|o| o.degraded),
        solve,
    }
}

/// The full iCOIL policy: perception → {IL, CO} selected by HSA (eq. 1).
///
/// IL inference runs every frame (the HSA uncertainty needs the softmax
/// distribution); the CO solve runs only in CO mode — exactly the
/// division that makes mode switching worthwhile at runtime.
pub struct ICoilPolicy {
    perception: Perception,
    model: IlModel,
    co: CoController,
    hsa: Hsa,
    recorder: Recorder,
    last_mode: Option<Mode>,
    last_reverse: Option<bool>,
    /// Safety projection for IL-mode actions, present only when
    /// `config.safety.enabled` — absent, IL actions pass through
    /// untouched and trajectories stay bit-identical to earlier builds.
    projector: Option<SafetyProjector>,
    params: VehicleParams,
}

impl ICoilPolicy {
    /// Assembles the policy for a scenario.
    pub fn new(config: &ICoilConfig, model: IlModel, scenario: &Scenario) -> Self {
        ICoilPolicy {
            perception: Perception::new(config.bev, scenario),
            model,
            co: CoController::new(config.co, scenario.vehicle_params),
            hsa: Hsa::new(config.hsa),
            recorder: Recorder::new(),
            last_mode: None,
            last_reverse: None,
            projector: config
                .safety
                .enabled
                .then(|| SafetyProjector::new(config.safety)),
            params: scenario.vehicle_params,
        }
    }

    /// The HSA module (for inspection in experiments).
    pub fn hsa(&self) -> &Hsa {
        &self.hsa
    }
}

impl Policy for ICoilPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.co.reset();
        self.hsa.reset();
        self.last_mode = None;
        self.last_reverse = None;
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        Some(&mut self.recorder)
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let t0 = Instant::now();
        let sensing = self.perception.observe(obs);
        let t1 = Instant::now();
        let il = self.model.infer(&sensing.bev);
        let t2 = Instant::now();
        self.hsa.set_ego_position(obs.ego().pose.position());
        let hsa = self.hsa.update(&il.probs, &sensing.boxes);
        let t3 = Instant::now();
        let (action, tag, co_out) = match hsa.mode {
            Mode::Il => {
                let mut action = il.action;
                if let Some(projector) = &self.projector {
                    let proj = projector.project(&obs.ego(), &self.params, &sensing.boxes, action);
                    if proj.clipped {
                        self.recorder.add(Counter::SafetyProjections, 1);
                        self.recorder
                            .observe(Series::SafetyClipMag, proj.clip_magnitude);
                    }
                    action = proj.action;
                }
                (action, ModeTag::Il, None)
            }
            Mode::Co => {
                let out = self.co.control(obs, &sensing.boxes);
                (out.action, ModeTag::Co, Some(out))
            }
        };
        let t4 = Instant::now();

        if self.last_mode.is_some_and(|prev| prev != hsa.mode) {
            self.recorder.add(Counter::HsaSwitches, 1);
        }
        self.last_mode = Some(hsa.mode);
        if self.last_reverse.is_some_and(|prev| prev != action.reverse) {
            self.recorder.add(Counter::GearReversals, 1);
        }
        self.last_reverse = Some(action.reverse);
        let co_s = if co_out.is_some() {
            (t4 - t3).as_secs_f64()
        } else {
            -1.0
        };
        let solve = co_out
            .as_ref()
            .and_then(|o| o.mpc.as_ref())
            .map(solve_event);
        self.recorder.frame(&frame_event(
            obs,
            mode_name(hsa.mode),
            mode_name(hsa.raw_mode),
            hsa.uncertainty,
            hsa.complexity,
            hsa.ratio,
            [
                (t1 - t0).as_secs_f64(),
                (t2 - t1).as_secs_f64(),
                (t3 - t2).as_secs_f64(),
                co_s,
            ],
            (t4 - t0).as_secs_f64(),
            co_out.as_ref(),
            solve,
        ));

        Decision {
            action,
            mode: Some(tag),
            uncertainty: Some(hsa.uncertainty),
            complexity: Some(hsa.complexity),
        }
    }
}

/// The conventional-IL baseline of Table II: the DNN drives everywhere.
///
/// The HSA module still *measures* uncertainty (it is cheap and useful
/// for the figures) but never switches modes.
pub struct PureIlPolicy {
    perception: Perception,
    model: IlModel,
    hsa: Hsa,
    recorder: Recorder,
    last_reverse: Option<bool>,
}

impl PureIlPolicy {
    /// Assembles the baseline for a scenario.
    pub fn new(config: &ICoilConfig, model: IlModel, scenario: &Scenario) -> Self {
        PureIlPolicy {
            perception: Perception::new(config.bev, scenario),
            model,
            hsa: Hsa::new(config.hsa),
            recorder: Recorder::new(),
            last_reverse: None,
        }
    }
}

impl Policy for PureIlPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.hsa.reset();
        self.last_reverse = None;
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        Some(&mut self.recorder)
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let t0 = Instant::now();
        let sensing = self.perception.observe(obs);
        let t1 = Instant::now();
        let il = self.model.infer(&sensing.bev);
        let t2 = Instant::now();
        self.hsa.set_ego_position(obs.ego().pose.position());
        let hsa = self.hsa.update(&il.probs, &sensing.boxes);
        let t3 = Instant::now();

        if self.last_reverse.is_some_and(|prev| prev != il.action.reverse) {
            self.recorder.add(Counter::GearReversals, 1);
        }
        self.last_reverse = Some(il.action.reverse);
        self.recorder.frame(&frame_event(
            obs,
            "IL",
            mode_name(hsa.raw_mode),
            hsa.uncertainty,
            hsa.complexity,
            hsa.ratio,
            [
                (t1 - t0).as_secs_f64(),
                (t2 - t1).as_secs_f64(),
                (t3 - t2).as_secs_f64(),
                -1.0,
            ],
            (t3 - t0).as_secs_f64(),
            None,
            None,
        ));

        Decision {
            action: il.action,
            mode: Some(ModeTag::Il),
            uncertainty: Some(hsa.uncertainty),
            complexity: Some(hsa.complexity),
        }
    }
}

/// An optimization-only reference: the CO stack drives everywhere,
/// consuming detected (possibly noisy) boxes.
pub struct PureCoPolicy {
    perception: Perception,
    co: CoController,
    recorder: Recorder,
    last_reverse: Option<bool>,
}

impl PureCoPolicy {
    /// Assembles the baseline for a scenario.
    pub fn new(config: &ICoilConfig, scenario: &Scenario) -> Self {
        PureCoPolicy {
            perception: Perception::new(config.bev, scenario),
            co: CoController::new(config.co, scenario.vehicle_params),
            recorder: Recorder::new(),
            last_reverse: None,
        }
    }

    /// The inner CO controller (conformance probes attach here).
    pub fn co_mut(&mut self) -> &mut CoController {
        &mut self.co
    }
}

impl Policy for PureCoPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.co.reset();
        self.last_reverse = None;
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        Some(&mut self.recorder)
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let t0 = Instant::now();
        let sensing = self.perception.observe(obs);
        let t1 = Instant::now();
        let out = self.co.control(obs, &sensing.boxes);
        let t2 = Instant::now();

        if self.last_reverse.is_some_and(|prev| prev != out.action.reverse) {
            self.recorder.add(Counter::GearReversals, 1);
        }
        self.last_reverse = Some(out.action.reverse);
        let solve = out.mpc.as_ref().map(solve_event);
        self.recorder.frame(&frame_event(
            obs,
            "CO",
            "CO",
            0.0,
            0.0,
            0.0,
            [(t1 - t0).as_secs_f64(), -1.0, -1.0, (t2 - t1).as_secs_f64()],
            (t2 - t0).as_secs_f64(),
            Some(&out),
            solve,
        ));

        Decision::tagged(out.action, ModeTag::Co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_vehicle::ActionCodec;
    use icoil_world::episode::{run_episode, EpisodeConfig};
    use icoil_world::{Difficulty, ScenarioConfig, World};

    fn untrained_model(config: &ICoilConfig) -> IlModel {
        IlModel::untrained(ActionCodec::default(), config.bev, 1)
    }

    #[test]
    fn icoil_emits_tagged_decisions() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 2.0,
                record_trace: true,
            },
        );
        assert!(!result.trace.is_empty());
        for f in &result.trace {
            assert!(f.mode.is_some());
            assert!(f.uncertainty.is_some());
            assert!(f.complexity.is_some());
            assert!(f.action.validate().is_ok());
        }
    }

    #[test]
    fn untrained_model_is_uncertain_so_icoil_uses_co() {
        // an untrained DNN outputs near-uniform distributions → high
        // entropy → the HSA must keep iCOIL in CO mode
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 5.0,
                record_trace: true,
            },
        );
        let co_frames = result
            .trace
            .iter()
            .filter(|f| f.mode == Some(ModeTag::Co))
            .count();
        assert!(
            co_frames as f64 > 0.9 * result.trace.len() as f64,
            "CO frames {co_frames}/{}",
            result.trace.len()
        );
    }

    #[test]
    fn pure_il_always_tags_il() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = PureIlPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 1.0,
                record_trace: true,
            },
        );
        assert!(result
            .trace
            .iter()
            .all(|f| f.mode == Some(ModeTag::Il)));
    }

    #[test]
    fn pure_co_parks_on_easy() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = PureCoPolicy::new(&config, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 90.0,
                record_trace: false,
            },
        );
        assert!(result.is_success(), "outcome {:?}", result.outcome);
    }

    #[test]
    fn safety_projection_shields_il_mode() {
        use icoil_adapt::SafetyConfig;
        use icoil_hsa::HsaConfig;
        // pin the arbiter to IL so every frame exercises the projector,
        // with an untrained (essentially random) policy driving
        let config = ICoilConfig {
            hsa: HsaConfig {
                lambda: f64::INFINITY,
                initial_mode: Mode::Il,
                ..HsaConfig::default()
            },
            safety: SafetyConfig {
                enabled: true,
                ..SafetyConfig::default()
            },
            ..ICoilConfig::default()
        };
        let scenario = ScenarioConfig::new(Difficulty::Hard, 13).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 10.0,
                record_trace: true,
            },
        );
        for f in &result.trace {
            assert!(f.action.validate().is_ok());
        }
        let m = policy.recorder_mut().expect("instrumented").metrics();
        assert_eq!(
            m.counter(Counter::SafetyProjections),
            m.series(Series::SafetyClipMag).count(),
            "every projection activation must record its clip magnitude"
        );
    }

    #[test]
    fn policies_accumulate_frame_metrics() {
        use icoil_telemetry::Series;
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 2.0,
                record_trace: false,
            },
        );
        let m = policy.recorder_mut().expect("instrumented").metrics();
        assert_eq!(m.counter(Counter::Frames) as usize, result.frames);
        assert_eq!(
            m.counter(Counter::IlFrames) + m.counter(Counter::CoFrames),
            m.counter(Counter::Frames)
        );
        // the untrained model keeps iCOIL in CO mode → MPC solves ran
        assert!(m.counter(Counter::MpcSolves) > 0);
        assert!(m.counter(Counter::AdmmIterations) > 0);
        assert_eq!(
            m.series(Series::FrameTotal).count(),
            m.counter(Counter::Frames)
        );
        assert_eq!(
            m.series(Series::AdmmPerSolve).count(),
            m.counter(Counter::MpcSolves)
        );
    }
}
