//! The iCOIL policy and its two single-mode baselines.

use crate::config::ICoilConfig;
use icoil_co::CoController;
use icoil_hsa::{Hsa, Mode};
use icoil_il::IlModel;
use icoil_perception::Perception;
use icoil_world::episode::{Decision, ModeTag, Observation, Policy};
use icoil_world::Scenario;

/// The full iCOIL policy: perception → {IL, CO} selected by HSA (eq. 1).
///
/// IL inference runs every frame (the HSA uncertainty needs the softmax
/// distribution); the CO solve runs only in CO mode — exactly the
/// division that makes mode switching worthwhile at runtime.
pub struct ICoilPolicy {
    perception: Perception,
    model: IlModel,
    co: CoController,
    hsa: Hsa,
}

impl ICoilPolicy {
    /// Assembles the policy for a scenario.
    pub fn new(config: &ICoilConfig, model: IlModel, scenario: &Scenario) -> Self {
        ICoilPolicy {
            perception: Perception::new(config.bev, scenario),
            model,
            co: CoController::new(config.co, scenario.vehicle_params),
            hsa: Hsa::new(config.hsa),
        }
    }

    /// The HSA module (for inspection in experiments).
    pub fn hsa(&self) -> &Hsa {
        &self.hsa
    }
}

impl Policy for ICoilPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.co.reset();
        self.hsa.reset();
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let sensing = self.perception.observe(obs);
        let il = self.model.infer(&sensing.bev);
        self.hsa.set_ego_position(obs.ego().pose.position());
        let hsa = self.hsa.update(&il.probs, &sensing.boxes);
        let (action, tag) = match hsa.mode {
            Mode::Il => (il.action, ModeTag::Il),
            Mode::Co => {
                let out = self.co.control(obs, &sensing.boxes);
                (out.action, ModeTag::Co)
            }
        };
        Decision {
            action,
            mode: Some(tag),
            uncertainty: Some(hsa.uncertainty),
            complexity: Some(hsa.complexity),
        }
    }
}

/// The conventional-IL baseline of Table II: the DNN drives everywhere.
///
/// The HSA module still *measures* uncertainty (it is cheap and useful
/// for the figures) but never switches modes.
pub struct PureIlPolicy {
    perception: Perception,
    model: IlModel,
    hsa: Hsa,
}

impl PureIlPolicy {
    /// Assembles the baseline for a scenario.
    pub fn new(config: &ICoilConfig, model: IlModel, scenario: &Scenario) -> Self {
        PureIlPolicy {
            perception: Perception::new(config.bev, scenario),
            model,
            hsa: Hsa::new(config.hsa),
        }
    }
}

impl Policy for PureIlPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.hsa.reset();
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let sensing = self.perception.observe(obs);
        let il = self.model.infer(&sensing.bev);
        self.hsa.set_ego_position(obs.ego().pose.position());
        let hsa = self.hsa.update(&il.probs, &sensing.boxes);
        Decision {
            action: il.action,
            mode: Some(ModeTag::Il),
            uncertainty: Some(hsa.uncertainty),
            complexity: Some(hsa.complexity),
        }
    }
}

/// An optimization-only reference: the CO stack drives everywhere,
/// consuming detected (possibly noisy) boxes.
pub struct PureCoPolicy {
    perception: Perception,
    co: CoController,
}

impl PureCoPolicy {
    /// Assembles the baseline for a scenario.
    pub fn new(config: &ICoilConfig, scenario: &Scenario) -> Self {
        PureCoPolicy {
            perception: Perception::new(config.bev, scenario),
            co: CoController::new(config.co, scenario.vehicle_params),
        }
    }

    /// The inner CO controller (conformance probes attach here).
    pub fn co_mut(&mut self) -> &mut CoController {
        &mut self.co
    }
}

impl Policy for PureCoPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.co.reset();
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let sensing = self.perception.observe(obs);
        let out = self.co.control(obs, &sensing.boxes);
        Decision::tagged(out.action, ModeTag::Co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_vehicle::ActionCodec;
    use icoil_world::episode::{run_episode, EpisodeConfig};
    use icoil_world::{Difficulty, ScenarioConfig, World};

    fn untrained_model(config: &ICoilConfig) -> IlModel {
        IlModel::untrained(ActionCodec::default(), config.bev, 1)
    }

    #[test]
    fn icoil_emits_tagged_decisions() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 2.0,
                record_trace: true,
            },
        );
        assert!(!result.trace.is_empty());
        for f in &result.trace {
            assert!(f.mode.is_some());
            assert!(f.uncertainty.is_some());
            assert!(f.complexity.is_some());
            assert!(f.action.validate().is_ok());
        }
    }

    #[test]
    fn untrained_model_is_uncertain_so_icoil_uses_co() {
        // an untrained DNN outputs near-uniform distributions → high
        // entropy → the HSA must keep iCOIL in CO mode
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = ICoilPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 5.0,
                record_trace: true,
            },
        );
        let co_frames = result
            .trace
            .iter()
            .filter(|f| f.mode == Some(ModeTag::Co))
            .count();
        assert!(
            co_frames as f64 > 0.9 * result.trace.len() as f64,
            "CO frames {co_frames}/{}",
            result.trace.len()
        );
    }

    #[test]
    fn pure_il_always_tags_il() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = PureIlPolicy::new(&config, untrained_model(&config), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 1.0,
                record_trace: true,
            },
        );
        assert!(result
            .trace
            .iter()
            .all(|f| f.mode == Some(ModeTag::Il)));
    }

    #[test]
    fn pure_co_parks_on_easy() {
        let config = ICoilConfig::default();
        let scenario = ScenarioConfig::new(Difficulty::Easy, 6).build();
        let mut policy = PureCoPolicy::new(&config, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 90.0,
                record_trace: false,
            },
        );
        assert!(result.is_success(), "outcome {:?}", result.outcome);
    }
}
