//! iCOIL: scenario-aware autonomous parking via integrated constrained
//! optimization and imitation learning.
//!
//! This crate assembles the full system of the paper (Fig. 2): the
//! perception pipeline feeds an IL policy, a CO planner and the HSA
//! mode selector, which together implement the switched inference mapping
//! of eq. (1):
//!
//! ```text
//! f(x_i) = f_IL(g(x_i))        if U_i / C_i ≤ λ
//!          f_CO(h(g(x_i)))     otherwise
//! ```
//!
//! Three ready-made policies are provided:
//!
//! * [`ICoilPolicy`] — the paper's contribution;
//! * [`PureIlPolicy`] — the conventional-IL baseline of Table II;
//! * [`PureCoPolicy`] — an optimization-only reference;
//!
//! plus the [`eval`] harness that regenerates the paper's statistics
//! (success rates, parking times) over seeded scenario batches.
//!
//! # Example
//!
//! ```no_run
//! use icoil_core::{eval, Method};
//! use icoil_world::Difficulty;
//!
//! // Train a small IL model, then compare methods on the easy level.
//! let model = icoil_core::artifacts::train_default_model(4, 8);
//! let stats = eval::evaluate(Method::ICoil, Difficulty::Easy, 0..10, &model);
//! println!("iCOIL success rate: {:.0}%", stats.success_ratio() * 100.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod artifacts;
pub mod config;
pub mod eval;
pub mod policies;

pub use config::ICoilConfig;
pub use eval::{run_scenarios_with, EvalConfig, Method};
pub use policies::{ICoilPolicy, PureCoPolicy, PureIlPolicy};
