//! Seeded batch evaluation: the statistics machinery behind Table II and
//! the sensitivity figures.
//!
//! Batches fan out across OS threads (see [`EvalConfig::parallelism`]):
//! each seeded episode is a pure function of its `ScenarioConfig` plus a
//! private clone of the IL model, so workers pull episode indices from a
//! shared atomic counter and the reassembled result vector is bit-identical
//! to a serial run regardless of worker count or scheduling.

use crate::config::ICoilConfig;
use crate::policies::{ICoilPolicy, PureCoPolicy, PureIlPolicy};
use icoil_il::IlModel;
use icoil_telemetry::{EpisodeEvent, Metrics};
use icoil_world::episode::{run_episode, EpisodeConfig, EpisodeResult, Policy};
use icoil_world::{Difficulty, ParkingStats, Scenario, ScenarioConfig, World};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Execution knobs for batch evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Worker threads episodes are fanned across; `1` runs serially on the
    /// calling thread. Results are bit-identical at any setting.
    pub parallelism: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { parallelism: 1 }
    }
}

/// Validates a worker count, clamping `0` up to `1`.
///
/// Pure counterpart of [`EvalConfig::with_parallelism`]: returns the
/// effective count plus a diagnostic when the input had to be adjusted.
pub fn clamp_parallelism(parallelism: usize) -> (usize, Option<String>) {
    if parallelism == 0 {
        (
            1,
            Some("icoil: parallelism 0 is meaningless; clamped to 1".to_string()),
        )
    } else {
        (parallelism, None)
    }
}

/// Parses an `ICOIL_PARALLELISM` value, falling back to `default`.
///
/// Pure counterpart of [`EvalConfig::from_env`]: `raw = None` means the
/// variable was unset (silent fallback); a set-but-malformed value also
/// falls back but returns a diagnostic so the caller can warn once.
pub fn parse_parallelism(raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    match raw {
        None => (default, None),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => (n, None),
            Err(_) => (
                default,
                Some(format!(
                    "icoil: ICOIL_PARALLELISM={v:?} is not a worker count; using {default}"
                )),
            ),
        },
    }
}

/// Emits a parallelism diagnostic to stderr at most once per process.
fn warn_once(once: &'static Once, message: &str) {
    once.call_once(|| eprintln!("{message}"));
}

static CLAMP_WARNING: Once = Once::new();
static PARSE_WARNING: Once = Once::new();

impl EvalConfig {
    /// A config with the given worker count (`0` is clamped to `1`, with
    /// a one-shot stderr diagnostic).
    pub fn with_parallelism(parallelism: usize) -> Self {
        let (parallelism, warning) = clamp_parallelism(parallelism);
        if let Some(w) = warning {
            warn_once(&CLAMP_WARNING, &w);
        }
        EvalConfig { parallelism }
    }

    /// Reads `ICOIL_PARALLELISM` from the environment, defaulting to the
    /// number of available cores. A set-but-malformed value falls back to
    /// the default with a one-shot stderr diagnostic instead of silently.
    pub fn from_env() -> Self {
        let default = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let raw = std::env::var("ICOIL_PARALLELISM").ok();
        let (parallelism, warning) = parse_parallelism(raw.as_deref(), default);
        if let Some(w) = warning {
            warn_once(&PARSE_WARNING, &w);
        }
        EvalConfig::with_parallelism(parallelism)
    }
}

/// The parking method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// The proposed hybrid (eq. 1).
    ICoil,
    /// The conventional-IL baseline \[2\].
    Il,
    /// Optimization-only reference.
    Co,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::ICoil => write!(f, "iCOIL"),
            Method::Il => write!(f, "IL"),
            Method::Co => write!(f, "CO"),
        }
    }
}

/// Builds the policy for a method and scenario.
///
/// The IL model is cloned per episode so policies never share mutable
/// state across seeds.
pub fn make_policy(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario: &Scenario,
) -> Box<dyn Policy> {
    match method {
        Method::ICoil => Box::new(ICoilPolicy::new(config, model.clone(), scenario)),
        Method::Il => Box::new(PureIlPolicy::new(config, model.clone(), scenario)),
        Method::Co => Box::new(PureCoPolicy::new(config, scenario)),
    }
}

/// Runs one seeded episode of `method` on a scenario config.
pub fn run_one(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_config: &ScenarioConfig,
    episode: &EpisodeConfig,
) -> EpisodeResult {
    let scenario = scenario_config.build();
    let mut policy = make_policy(method, config, model, &scenario);
    let mut world = World::new(scenario);
    run_episode(&mut world, policy.as_mut(), episode)
}

/// Runs a batch of seeded episodes serially and returns the raw results.
///
/// Equivalent to [`run_batch_with`] at `parallelism = 1`; batch regenerators
/// should prefer `run_batch_with(.., &EvalConfig::from_env())`.
pub fn run_batch(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_configs: &[ScenarioConfig],
    episode: &EpisodeConfig,
) -> Vec<EpisodeResult> {
    run_batch_with(
        method,
        config,
        model,
        scenario_configs,
        episode,
        &EvalConfig::default(),
    )
}

/// Runs a batch of seeded episodes across `eval.parallelism` workers.
///
/// Workers steal episode indices from a shared counter and return
/// `(index, result)` pairs, which are reassembled in seed order — so the
/// output is bit-identical to the serial path for every worker count.
pub fn run_batch_with(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_configs: &[ScenarioConfig],
    episode: &EpisodeConfig,
    eval: &EvalConfig,
) -> Vec<EpisodeResult> {
    fan_out(scenario_configs.len(), eval.parallelism, |idx| {
        run_one(method, config, model, &scenario_configs[idx], episode)
    })
}

/// Closes out an episode in the policy's recorder and drains the
/// accumulated [`Metrics`].
///
/// Records the outcome summary (an `episode` trace event plus the
/// episode/outcome counters), flushes the trace sink, and takes the
/// metrics — leaving the recorder empty for the next episode. Policies
/// without a recorder yield empty metrics.
pub fn drain_episode_metrics(policy: &mut dyn Policy, result: &EpisodeResult) -> Metrics {
    match policy.recorder_mut() {
        Some(recorder) => {
            recorder.episode(&EpisodeEvent {
                outcome: match result.outcome {
                    icoil_world::episode::Outcome::Success => "success",
                    icoil_world::episode::Outcome::Collision => "collision",
                    icoil_world::episode::Outcome::Timeout => "timeout",
                },
                frames: result.frames,
                time: result.parking_time,
                path_length: result.path_length,
            });
            recorder.flush();
            recorder.take_metrics()
        }
        None => Metrics::new(),
    }
}

/// Runs one seeded episode and returns its result plus drained telemetry.
pub fn run_one_telemetry(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_config: &ScenarioConfig,
    episode: &EpisodeConfig,
) -> (EpisodeResult, Metrics) {
    let scenario = scenario_config.build();
    let mut policy = make_policy(method, config, model, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(&mut world, policy.as_mut(), episode);
    let metrics = drain_episode_metrics(policy.as_mut(), &result);
    (result, metrics)
}

/// Runs a batch of seeded episodes across workers, returning the results
/// plus the batch-wide merged [`Metrics`].
///
/// Per-episode metrics are merged in seed order after the fan-out
/// completes, so the merged aggregate is bit-identical for every worker
/// count — the same determinism contract as [`run_batch_with`]. (Timing
/// histograms still vary run to run, of course; use
/// [`Metrics::deterministic_eq`] to compare the machine-independent
/// part.)
pub fn run_batch_telemetry(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_configs: &[ScenarioConfig],
    episode: &EpisodeConfig,
    eval: &EvalConfig,
) -> (Vec<EpisodeResult>, Metrics) {
    let pairs = fan_out(scenario_configs.len(), eval.parallelism, |idx| {
        run_one_telemetry(method, config, model, &scenario_configs[idx], episode)
    });
    let mut merged = Metrics::new();
    let mut results = Vec::with_capacity(pairs.len());
    for (result, metrics) in pairs {
        merged.merge(&metrics);
        results.push(result);
    }
    (results, merged)
}

/// Runs prebuilt scenarios (e.g. procedurally generated ones that exist
/// outside the `ScenarioConfig` seed space) across workers, constructing
/// each episode's policy with `policy_for`.
///
/// Same determinism contract as [`run_batch_with`]: results are
/// reassembled in input order and bit-identical for every worker count,
/// provided `policy_for` is a pure function of the scenario.
pub fn run_scenarios_with<F>(
    scenarios: &[Scenario],
    policy_for: F,
    episode: &EpisodeConfig,
    eval: &EvalConfig,
) -> Vec<EpisodeResult>
where
    F: Fn(&Scenario) -> Box<dyn Policy> + Sync,
{
    fan_out(scenarios.len(), eval.parallelism, |idx| {
        let scenario = scenarios[idx].clone();
        let mut policy = policy_for(&scenario);
        let mut world = World::new(scenario);
        run_episode(&mut world, policy.as_mut(), episode)
    })
}

/// Fans `n` independent jobs across `workers` threads.
///
/// Workers steal job indices from a shared counter and return
/// `(index, result)` pairs, which are reassembled in job order — so the
/// output is bit-identical to a serial run for every worker count and
/// any scheduling. `workers <= 1` (or a single job) runs inline on the
/// calling thread with no thread machinery at all.
fn fan_out<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, job(idx)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (idx, result) in handle.join().expect("episode worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every job index was claimed by a worker"))
        .collect()
}

/// Convenience wrapper: evaluates `method` on `difficulty` over a seed
/// range with default configs, returning Table-II-style statistics.
///
/// Episodes run across the worker count given by [`EvalConfig::from_env`]
/// (the `ICOIL_PARALLELISM` knob); the statistics are unaffected by the
/// worker count because per-seed results are bit-identical.
pub fn evaluate(
    method: Method,
    difficulty: Difficulty,
    seeds: std::ops::Range<u64>,
    model: &IlModel,
) -> ParkingStats {
    evaluate_with(method, difficulty, seeds, model, &EvalConfig::from_env())
}

/// [`evaluate`] with an explicit [`EvalConfig`].
pub fn evaluate_with(
    method: Method,
    difficulty: Difficulty,
    seeds: std::ops::Range<u64>,
    model: &IlModel,
    eval: &EvalConfig,
) -> ParkingStats {
    let config = ICoilConfig::default();
    let scenario_configs: Vec<ScenarioConfig> = seeds
        .map(|s| ScenarioConfig::new(difficulty, s))
        .collect();
    let results = run_batch_with(
        method,
        &config,
        model,
        &scenario_configs,
        &EpisodeConfig {
            max_time: 60.0,
            record_trace: false,
        },
        eval,
    );
    ParkingStats::from_results(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_vehicle::ActionCodec;

    #[test]
    fn run_batch_is_deterministic() {
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let scenario_configs =
            vec![ScenarioConfig::new(Difficulty::Easy, 1), ScenarioConfig::new(Difficulty::Easy, 2)];
        let episode = EpisodeConfig {
            max_time: 3.0,
            record_trace: false,
        };
        let a = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        let b = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        assert_eq!(a, b);
    }

    #[test]
    fn co_method_beats_untrained_il() {
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let episode = EpisodeConfig {
            max_time: 60.0,
            record_trace: false,
        };
        let scenario_configs = vec![ScenarioConfig::new(Difficulty::Easy, 6)];
        let co = run_batch(Method::Co, &config, &model, &scenario_configs, &episode);
        let il = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        assert!(co[0].is_success());
        assert!(!il[0].is_success(), "an untrained IL policy cannot park");
    }

    #[test]
    fn parallel_run_batch_matches_serial() {
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let scenario_configs: Vec<ScenarioConfig> = (0..6)
            .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
            .collect();
        let episode = EpisodeConfig {
            max_time: 2.0,
            record_trace: false,
        };
        let serial = run_batch_with(
            Method::ICoil,
            &config,
            &model,
            &scenario_configs,
            &episode,
            &EvalConfig::with_parallelism(1),
        );
        for workers in [2, 4, 8] {
            let parallel = run_batch_with(
                Method::ICoil,
                &config,
                &model,
                &scenario_configs,
                &episode,
                &EvalConfig::with_parallelism(workers),
            );
            assert_eq!(serial, parallel, "parallelism={workers} diverged");
        }
    }

    #[test]
    fn eval_config_clamps_and_defaults() {
        assert_eq!(EvalConfig::default().parallelism, 1);
        assert_eq!(EvalConfig::with_parallelism(0).parallelism, 1);
        assert_eq!(EvalConfig::with_parallelism(7).parallelism, 7);
    }

    #[test]
    fn clamp_parallelism_diagnoses_zero() {
        assert_eq!(clamp_parallelism(4), (4, None));
        let (p, warning) = clamp_parallelism(0);
        assert_eq!(p, 1);
        assert!(warning.expect("diagnostic").contains("clamped to 1"));
    }

    #[test]
    fn parse_parallelism_falls_back_loudly_on_garbage() {
        assert_eq!(parse_parallelism(None, 8), (8, None));
        assert_eq!(parse_parallelism(Some("3"), 8), (3, None));
        assert_eq!(parse_parallelism(Some(" 3 "), 8), (3, None));
        for garbage in ["three", "-1", "2.5", ""] {
            let (p, warning) = parse_parallelism(Some(garbage), 8);
            assert_eq!(p, 8, "fallback for {garbage:?}");
            let w = warning.expect("malformed values must carry a diagnostic");
            assert!(w.contains("ICOIL_PARALLELISM"), "names the knob: {w}");
        }
    }

    #[test]
    fn batch_telemetry_merges_deterministically() {
        use icoil_telemetry::Counter;
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let scenario_configs: Vec<ScenarioConfig> = (0..4)
            .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
            .collect();
        let episode = EpisodeConfig {
            max_time: 2.0,
            record_trace: false,
        };
        let (serial_results, serial_metrics) = run_batch_telemetry(
            Method::ICoil,
            &config,
            &model,
            &scenario_configs,
            &episode,
            &EvalConfig::with_parallelism(1),
        );
        assert_eq!(serial_metrics.counter(Counter::Episodes), 4);
        let frames: usize = serial_results.iter().map(|r| r.frames).sum();
        assert_eq!(serial_metrics.counter(Counter::Frames) as usize, frames);
        for workers in [2, 4] {
            let (results, metrics) = run_batch_telemetry(
                Method::ICoil,
                &config,
                &model,
                &scenario_configs,
                &episode,
                &EvalConfig::with_parallelism(workers),
            );
            assert_eq!(serial_results, results, "parallelism={workers} diverged");
            assert!(
                serial_metrics.deterministic_eq(&metrics),
                "parallelism={workers} telemetry diverged"
            );
        }
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::ICoil.to_string(), "iCOIL");
        assert_eq!(Method::Il.to_string(), "IL");
        assert_eq!(Method::Co.to_string(), "CO");
    }
}
