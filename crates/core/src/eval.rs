//! Seeded batch evaluation: the statistics machinery behind Table II and
//! the sensitivity figures.

use crate::config::ICoilConfig;
use crate::policies::{ICoilPolicy, PureCoPolicy, PureIlPolicy};
use icoil_il::IlModel;
use icoil_world::episode::{run_episode, EpisodeConfig, EpisodeResult, Policy};
use icoil_world::{Difficulty, ParkingStats, Scenario, ScenarioConfig, World};
use serde::{Deserialize, Serialize};

/// The parking method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// The proposed hybrid (eq. 1).
    ICoil,
    /// The conventional-IL baseline \[2\].
    Il,
    /// Optimization-only reference.
    Co,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::ICoil => write!(f, "iCOIL"),
            Method::Il => write!(f, "IL"),
            Method::Co => write!(f, "CO"),
        }
    }
}

/// Builds the policy for a method and scenario.
///
/// The IL model is cloned per episode so policies never share mutable
/// state across seeds.
pub fn make_policy(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario: &Scenario,
) -> Box<dyn Policy> {
    match method {
        Method::ICoil => Box::new(ICoilPolicy::new(config, model.clone(), scenario)),
        Method::Il => Box::new(PureIlPolicy::new(config, model.clone(), scenario)),
        Method::Co => Box::new(PureCoPolicy::new(config, scenario)),
    }
}

/// Runs one seeded episode of `method` on a scenario config.
pub fn run_one(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_config: &ScenarioConfig,
    episode: &EpisodeConfig,
) -> EpisodeResult {
    let scenario = scenario_config.build();
    let mut policy = make_policy(method, config, model, &scenario);
    let mut world = World::new(scenario);
    run_episode(&mut world, policy.as_mut(), episode)
}

/// Runs a batch of seeded episodes and returns the raw results.
pub fn run_batch(
    method: Method,
    config: &ICoilConfig,
    model: &IlModel,
    scenario_configs: &[ScenarioConfig],
    episode: &EpisodeConfig,
) -> Vec<EpisodeResult> {
    scenario_configs
        .iter()
        .map(|sc| run_one(method, config, model, sc, episode))
        .collect()
}

/// Convenience wrapper: evaluates `method` on `difficulty` over a seed
/// range with default configs, returning Table-II-style statistics.
pub fn evaluate(
    method: Method,
    difficulty: Difficulty,
    seeds: std::ops::Range<u64>,
    model: &IlModel,
) -> ParkingStats {
    let config = ICoilConfig::default();
    let scenario_configs: Vec<ScenarioConfig> = seeds
        .map(|s| ScenarioConfig::new(difficulty, s))
        .collect();
    let results = run_batch(
        method,
        &config,
        model,
        &scenario_configs,
        &EpisodeConfig {
            max_time: 60.0,
            record_trace: false,
        },
    );
    ParkingStats::from_results(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_vehicle::ActionCodec;

    #[test]
    fn run_batch_is_deterministic() {
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let scenario_configs =
            vec![ScenarioConfig::new(Difficulty::Easy, 1), ScenarioConfig::new(Difficulty::Easy, 2)];
        let episode = EpisodeConfig {
            max_time: 3.0,
            record_trace: false,
        };
        let a = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        let b = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        assert_eq!(a, b);
    }

    #[test]
    fn co_method_beats_untrained_il() {
        let config = ICoilConfig::default();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 3);
        let episode = EpisodeConfig {
            max_time: 60.0,
            record_trace: false,
        };
        let scenario_configs = vec![ScenarioConfig::new(Difficulty::Easy, 6)];
        let co = run_batch(Method::Co, &config, &model, &scenario_configs, &episode);
        let il = run_batch(Method::Il, &config, &model, &scenario_configs, &episode);
        assert!(co[0].is_success());
        assert!(!il[0].is_success(), "an untrained IL policy cannot park");
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::ICoil.to_string(), "iCOIL");
        assert_eq!(Method::Il.to_string(), "IL");
        assert_eq!(Method::Co.to_string(), "CO");
    }
}
