//! Top-level iCOIL configuration.

use icoil_adapt::SafetyConfig;
use icoil_co::CoConfig;
use icoil_hsa::HsaConfig;
use icoil_perception::BevConfig;
use serde::{Deserialize, Serialize};

/// Bundles the configuration of every iCOIL submodule.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ICoilConfig {
    /// CO-module (MPC) parameters.
    pub co: CoConfig,
    /// HSA (mode-switching) parameters.
    pub hsa: HsaConfig,
    /// BEV geometry used by perception and the IL model.
    pub bev: BevConfig,
    /// Safety projection applied to IL-mode actions (disabled by
    /// default; absent in configs serialized before it existed).
    #[serde(default)]
    pub safety: SafetyConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = ICoilConfig::default();
        assert!(c.co.validate().is_ok());
        assert_eq!(c.hsa.complexity.horizon, c.co.horizon,
            "HSA complexity model should reflect the CO horizon");
        assert!(c.bev.size % 8 == 0);
        assert!(
            !c.safety.enabled,
            "safety projection must be opt-in so existing trajectories stay bit-identical"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let c = ICoilConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        let d: ICoilConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, d);
    }
}
