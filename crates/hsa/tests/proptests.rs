//! Property tests for the HSA crate.

use icoil_geom::{Obb, Pose2, Vec2};
use icoil_hsa::{
    instant_complexity, instant_uncertainty, ComplexityParams, Hsa, HsaConfig, Mode, SlidingMean,
};
use proptest::prelude::*;

fn arb_probs(m: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, m).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / sum).collect()
    })
}

proptest! {
    #[test]
    fn decision_fields_are_finite_and_consistent(
        probs in arb_probs(21),
        n_boxes in 0usize..6,
        seed in 0u64..100,
    ) {
        let mut hsa = Hsa::new(HsaConfig::default());
        hsa.set_ego_position(Vec2::new(seed as f64 % 10.0, 0.0));
        let boxes: Vec<Obb> = (0..n_boxes)
            .map(|i| Obb::from_pose(Pose2::new(i as f64 * 2.0, 1.0, 0.1), 2.0, 2.0))
            .collect();
        for _ in 0..5 {
            let d = hsa.update(&probs, &boxes);
            prop_assert!(d.uncertainty.is_finite() && d.uncertainty >= 0.0);
            prop_assert!(d.uncertainty <= (21f64).ln() + 1e-9);
            prop_assert!(d.complexity.is_finite() && d.complexity > 0.0);
            prop_assert!(d.ratio >= 0.0);
            // the debounced mode only changes through the raw mode
            if d.mode != Mode::Co {
                prop_assert_eq!(d.mode, Mode::Il);
            }
        }
    }

    #[test]
    fn complexity_monotone_in_obstacle_count(
        k in 1usize..8,
        d0 in 0.5f64..3.0,
    ) {
        let params = ComplexityParams { d0, ..ComplexityParams::default() };
        let boxes: Vec<Obb> = (0..k)
            .map(|i| Obb::from_pose(Pose2::new(3.0 + i as f64, 0.0, 0.0), 2.0, 2.0))
            .collect();
        let mut prev = instant_complexity(Vec2::ZERO, &[], &params);
        for n in 1..=k {
            let c = instant_complexity(Vec2::ZERO, &boxes[..n], &params);
            prop_assert!(c >= prev - 1e-9, "adding an obstacle must not reduce complexity");
            prev = c;
        }
    }

    #[test]
    fn guard_time_bounds_switch_rate(
        flips in prop::collection::vec(any::<bool>(), 50..150),
        guard in 2usize..20,
    ) {
        // arbitrary confident/uniform sequences: the number of mode
        // switches can never exceed len / guard
        let confident = {
            let mut p = vec![0.001; 21];
            p[0] = 1.0 - 0.02;
            p
        };
        let uniform = vec![1.0 / 21.0; 21];
        let mut hsa = Hsa::new(HsaConfig {
            window: 1,
            guard_time: guard,
            ..HsaConfig::default()
        });
        let mut switches = 0;
        let mut last = hsa.mode();
        for f in &flips {
            let d = hsa.update(if *f { &confident } else { &uniform }, &[]);
            if d.mode != last {
                switches += 1;
                last = d.mode;
            }
        }
        prop_assert!(switches <= flips.len() / guard + 1,
            "switches {} exceeds bound for guard {}", switches, guard);
    }

    #[test]
    fn window_mean_stays_within_value_extremes(
        values in prop::collection::vec(-50.0f64..50.0, 1..60),
        capacity in 1usize..10,
    ) {
        // the 1/T Σ windows of eqs. (7)/(8) are means: never outside the
        // extremes of the values currently in the window
        let mut mean = SlidingMean::new(capacity);
        for (i, &v) in values.iter().enumerate() {
            let m = mean.push(v);
            let lo = i.saturating_sub(capacity - 1);
            let tail = &values[lo..=i];
            let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= min - 1e-9 && m <= max + 1e-9,
                "mean {m} outside window extremes [{min}, {max}]");
        }
    }

    #[test]
    fn windowed_averages_match_naive_reference(
        frames in prop::collection::vec(arb_probs(21), 5..30),
        window in 1usize..8,
        n_boxes in 0usize..4,
    ) {
        // eqs. (7)/(8): the decision's U_i and C_i must equal explicit
        // means of the instant values over the last `window` frames
        let config = HsaConfig { window, ..HsaConfig::default() };
        let mut hsa = Hsa::new(config);
        hsa.set_ego_position(Vec2::ZERO);
        let boxes: Vec<Obb> = (0..n_boxes)
            .map(|i| Obb::from_pose(Pose2::new(2.5 + i as f64, 1.0, 0.2), 2.0, 2.0))
            .collect();
        let c_inst = instant_complexity(Vec2::ZERO, &boxes, &config.complexity);
        let mut u_insts = Vec::new();
        for probs in &frames {
            u_insts.push(instant_uncertainty(probs));
            let d = hsa.update(probs, &boxes);
            let lo = u_insts.len().saturating_sub(window);
            let tail = &u_insts[lo..];
            let u_ref = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((d.uncertainty - u_ref).abs() <= 1e-9 * u_ref.abs().max(1.0),
                "windowed U {} vs naive {}", d.uncertainty, u_ref);
            // the complexity stream is constant here, so its mean is too
            prop_assert!((d.complexity - c_inst).abs() <= 1e-9 * c_inst,
                "windowed C {} vs instant {}", d.complexity, c_inst);
            prop_assert!(d.uncertainty >= -1e-12 && d.uncertainty <= (21f64).ln() + 1e-9);
            prop_assert!(d.complexity >= config.complexity.min_value() - 1e-6);
            prop_assert!(d.complexity <= config.complexity.max_for(n_boxes) + 1e-6);
        }
    }

    #[test]
    fn complexity_monotone_in_obstacle_proximity(
        d0 in 0.5f64..3.0,
        near in 0.0f64..5.0,
        gap in 0.1f64..6.0,
    ) {
        // beyond D0, a closer obstacle always constrains the planner
        // more (eq. 8's e^{-|D0 - D|} influence decays with distance)
        let params = ComplexityParams { d0, ..ComplexityParams::default() };
        let d_near = d0 + near;
        let d_far = d_near + gap;
        // boundary distance d ⇒ obstacle center at d + half-extent
        let at = |d: f64| Obb::from_pose(Pose2::new(d + 1.0, 0.0, 0.0), 2.0, 2.0);
        let c_near = instant_complexity(Vec2::ZERO, &[at(d_near)], &params);
        let c_far = instant_complexity(Vec2::ZERO, &[at(d_far)], &params);
        prop_assert!(c_near >= c_far - 1e-9,
            "complexity {c_near} at {d_near} m < {c_far} at {d_far} m");
    }

    #[test]
    fn raw_mode_matches_threshold_exactly(
        probs in arb_probs(21),
        n_boxes in 0usize..5,
        lambda_exp in -8.0f64..-3.0,
    ) {
        // eq. (1): the un-debounced decision is IL iff U/C ≤ λ
        let lambda = 10f64.powf(lambda_exp);
        let mut hsa = Hsa::new(HsaConfig { lambda, ..HsaConfig::default() });
        hsa.set_ego_position(Vec2::ZERO);
        let boxes: Vec<Obb> = (0..n_boxes)
            .map(|i| Obb::from_pose(Pose2::new(3.0 + i as f64, -1.0, 0.0), 2.0, 2.0))
            .collect();
        for _ in 0..4 {
            let d = hsa.update(&probs, &boxes);
            let expect = if d.ratio <= lambda { Mode::Il } else { Mode::Co };
            prop_assert_eq!(d.raw_mode, expect,
                "raw mode disagrees with ratio {} vs λ {}", d.ratio, lambda);
        }
    }

    #[test]
    fn committed_switches_are_guard_time_apart(
        flips in prop::collection::vec(any::<bool>(), 60..200),
        guard in 2usize..12,
    ) {
        // a committed mode change requires `guard` consecutive opposing
        // raw frames, so two commits can never be closer than that
        let confident = {
            let mut p = vec![0.001; 21];
            p[0] = 1.0 - 0.02;
            p
        };
        let uniform = vec![1.0 / 21.0; 21];
        let mut hsa = Hsa::new(HsaConfig {
            window: 1,
            guard_time: guard,
            ..HsaConfig::default()
        });
        let mut last_mode = hsa.mode();
        let mut last_switch: Option<usize> = None;
        for (i, f) in flips.iter().enumerate() {
            let d = hsa.update(if *f { &confident } else { &uniform }, &[]);
            if d.mode != last_mode {
                if let Some(prev) = last_switch {
                    prop_assert!(i - prev >= guard,
                        "switches at frames {prev} and {i} violate guard {guard}");
                }
                last_switch = Some(i);
                last_mode = d.mode;
            }
        }
    }
}
