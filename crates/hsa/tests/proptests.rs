//! Property tests for the HSA crate.

use icoil_geom::{Obb, Pose2, Vec2};
use icoil_hsa::{instant_complexity, ComplexityParams, Hsa, HsaConfig, Mode};
use proptest::prelude::*;

fn arb_probs(m: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, m).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / sum).collect()
    })
}

proptest! {
    #[test]
    fn decision_fields_are_finite_and_consistent(
        probs in arb_probs(21),
        n_boxes in 0usize..6,
        seed in 0u64..100,
    ) {
        let mut hsa = Hsa::new(HsaConfig::default());
        hsa.set_ego_position(Vec2::new(seed as f64 % 10.0, 0.0));
        let boxes: Vec<Obb> = (0..n_boxes)
            .map(|i| Obb::from_pose(Pose2::new(i as f64 * 2.0, 1.0, 0.1), 2.0, 2.0))
            .collect();
        for _ in 0..5 {
            let d = hsa.update(&probs, &boxes);
            prop_assert!(d.uncertainty.is_finite() && d.uncertainty >= 0.0);
            prop_assert!(d.uncertainty <= (21f64).ln() + 1e-9);
            prop_assert!(d.complexity.is_finite() && d.complexity > 0.0);
            prop_assert!(d.ratio >= 0.0);
            // the debounced mode only changes through the raw mode
            if d.mode != Mode::Co {
                prop_assert_eq!(d.mode, Mode::Il);
            }
        }
    }

    #[test]
    fn complexity_monotone_in_obstacle_count(
        k in 1usize..8,
        d0 in 0.5f64..3.0,
    ) {
        let params = ComplexityParams { d0, ..ComplexityParams::default() };
        let boxes: Vec<Obb> = (0..k)
            .map(|i| Obb::from_pose(Pose2::new(3.0 + i as f64, 0.0, 0.0), 2.0, 2.0))
            .collect();
        let mut prev = instant_complexity(Vec2::ZERO, &[], &params);
        for n in 1..=k {
            let c = instant_complexity(Vec2::ZERO, &boxes[..n], &params);
            prop_assert!(c >= prev - 1e-9, "adding an obstacle must not reduce complexity");
            prev = c;
        }
    }

    #[test]
    fn guard_time_bounds_switch_rate(
        flips in prop::collection::vec(any::<bool>(), 50..150),
        guard in 2usize..20,
    ) {
        // arbitrary confident/uniform sequences: the number of mode
        // switches can never exceed len / guard
        let confident = {
            let mut p = vec![0.001; 21];
            p[0] = 1.0 - 0.02;
            p
        };
        let uniform = vec![1.0 / 21.0; 21];
        let mut hsa = Hsa::new(HsaConfig {
            window: 1,
            guard_time: guard,
            ..HsaConfig::default()
        });
        let mut switches = 0;
        let mut last = hsa.mode();
        for f in &flips {
            let d = hsa.update(if *f { &confident } else { &uniform }, &[]);
            if d.mode != last {
                switches += 1;
                last = d.mode;
            }
        }
        prop_assert!(switches <= flips.len() / guard + 1,
            "switches {} exceeds bound for guard {}", switches, guard);
    }
}
