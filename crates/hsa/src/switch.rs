//! The mode-switching rule (eq. 1) with guard-time debouncing.

use crate::complexity::{instant_complexity, ComplexityParams};
use crate::uncertainty::{instant_uncertainty, SlidingMean};
use icoil_geom::{Obb, Vec2};
use serde::{Deserialize, Serialize};

/// The two candidate working modes of iCOIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Imitation learning (fast, fragile out of distribution).
    Il,
    /// Constrained optimization (reliable, computationally heavy).
    Co,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Il => write!(f, "IL"),
            Mode::Co => write!(f, "CO"),
        }
    }
}

/// HSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HsaConfig {
    /// Window length `T` (frames) for both averages.
    pub window: usize,
    /// The switching threshold `λ` on `U_i · C_i⁻¹` (eq. 1).
    ///
    /// `U` is entropy in nats (order 0–3 for ~20 actions); `C` is the
    /// raw eq. (8) value (order 10⁴–10⁶), so useful `λ` values are
    /// around 10⁻⁶–10⁻⁵.
    pub lambda: f64,
    /// Frames a raw decision must persist before the mode switches
    /// (the paper smooths transitions with 20 time stamps).
    pub guard_time: usize,
    /// The complexity-model parameters (Table I).
    pub complexity: ComplexityParams,
    /// The mode used before any update arrives.
    pub initial_mode: Mode,
}

impl Default for HsaConfig {
    fn default() -> Self {
        HsaConfig {
            window: 20,
            lambda: 3e-6,
            guard_time: 20,
            complexity: ComplexityParams::default(),
            initial_mode: Mode::Co,
        }
    }
}

/// One frame's HSA outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HsaDecision {
    /// The debounced working mode to use this frame.
    pub mode: Mode,
    /// Average scenario uncertainty `U_i` (eq. 7).
    pub uncertainty: f64,
    /// Average scenario complexity `C_i` (eq. 8).
    pub complexity: f64,
    /// The ratio `U_i · C_i⁻¹` compared against `λ`.
    pub ratio: f64,
    /// The un-debounced decision this frame (before the guard time).
    pub raw_mode: Mode,
}

/// The stateful HSA module `f_HSA`.
///
/// Feed it the IL output distribution and the detected obstacle boxes
/// each frame; it returns the working mode, smoothed by the guard time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hsa {
    config: HsaConfig,
    uncertainty: SlidingMean,
    complexity: SlidingMean,
    mode: Mode,
    pending: Option<(Mode, usize)>,
    ego_position: Vec2,
}

impl Hsa {
    /// Creates the module.
    ///
    /// # Panics
    ///
    /// Panics for a zero window.
    pub fn new(config: HsaConfig) -> Self {
        Hsa {
            uncertainty: SlidingMean::new(config.window),
            complexity: SlidingMean::new(config.window),
            mode: config.initial_mode,
            pending: None,
            ego_position: Vec2::ZERO,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HsaConfig {
        &self.config
    }

    /// Current debounced mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Updates the ego position used for obstacle distances `D_{i,k}`.
    pub fn set_ego_position(&mut self, position: Vec2) {
        self.ego_position = position;
    }

    /// Clears all windows (start of a new episode).
    pub fn reset(&mut self) {
        self.uncertainty.reset();
        self.complexity.reset();
        self.mode = self.config.initial_mode;
        self.pending = None;
    }

    /// Processes one frame: `probs` is the IL softmax output, `boxes`
    /// the detected obstacles. Returns the decision for this frame.
    pub fn update(&mut self, probs: &[f64], boxes: &[Obb]) -> HsaDecision {
        let u_inst = instant_uncertainty(probs);
        let c_inst = instant_complexity(self.ego_position, boxes, &self.config.complexity);
        let u = self.uncertainty.push(u_inst);
        let c = self.complexity.push(c_inst);
        let ratio = if c > 0.0 { u / c } else { f64::INFINITY };
        let raw = if ratio <= self.config.lambda {
            Mode::Il
        } else {
            Mode::Co
        };

        // guard-time debounce: a change must persist before taking effect
        if raw == self.mode {
            self.pending = None;
        } else {
            let count = match self.pending {
                Some((m, c)) if m == raw => c + 1,
                _ => 1,
            };
            if count >= self.config.guard_time {
                self.mode = raw;
                self.pending = None;
            } else {
                self.pending = Some((raw, count));
            }
        }

        HsaDecision {
            mode: self.mode,
            uncertainty: u,
            complexity: c,
            ratio,
            raw_mode: raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;

    fn confident(m: usize) -> Vec<f64> {
        let mut p = vec![0.01 / (m as f64 - 1.0); m];
        p[0] = 0.99;
        p
    }

    fn uniform(m: usize) -> Vec<f64> {
        vec![1.0 / m as f64; m]
    }

    fn config_fast() -> HsaConfig {
        HsaConfig {
            window: 4,
            guard_time: 3,
            ..HsaConfig::default()
        }
    }

    #[test]
    fn confident_outputs_select_il() {
        let mut hsa = Hsa::new(config_fast());
        let mut last = None;
        for _ in 0..20 {
            last = Some(hsa.update(&confident(21), &[]));
        }
        let d = last.unwrap();
        assert_eq!(d.mode, Mode::Il);
        assert!(d.uncertainty < 0.2);
    }

    #[test]
    fn uncertain_outputs_select_co() {
        let mut hsa = Hsa::new(HsaConfig {
            initial_mode: Mode::Il,
            ..config_fast()
        });
        let mut last = None;
        for _ in 0..20 {
            last = Some(hsa.update(&uniform(21), &[]));
        }
        let d = last.unwrap();
        assert_eq!(d.mode, Mode::Co);
        assert!(d.uncertainty > 2.5); // ln 21 ≈ 3.04
    }

    #[test]
    fn guard_time_debounces_flapping() {
        let cfg = HsaConfig {
            window: 1,
            guard_time: 5,
            initial_mode: Mode::Co,
            ..HsaConfig::default()
        };
        let mut hsa = Hsa::new(cfg);
        // alternate confident/uncertain every frame: the raw decision
        // flaps, the debounced mode must stay put
        for i in 0..40 {
            let probs = if i % 2 == 0 { confident(21) } else { uniform(21) };
            let d = hsa.update(&probs, &[]);
            assert_eq!(d.mode, Mode::Co, "frame {i} must hold the mode");
        }
    }

    #[test]
    fn sustained_change_eventually_switches() {
        let cfg = HsaConfig {
            window: 2,
            guard_time: 4,
            initial_mode: Mode::Co,
            ..HsaConfig::default()
        };
        let mut hsa = Hsa::new(cfg);
        let mut switched_at = None;
        for i in 0..30 {
            let d = hsa.update(&confident(21), &[]);
            if d.mode == Mode::Il && switched_at.is_none() {
                switched_at = Some(i);
            }
        }
        let at = switched_at.expect("must switch to IL");
        assert!(at >= 3, "guard time must delay the switch, got {at}");
    }

    #[test]
    fn nearby_obstacles_raise_complexity_and_favor_il() {
        // same (moderate) uncertainty; complexity decides
        let probs = {
            // entropy ~0.7: two likely actions
            let mut p = vec![0.0; 21];
            p[0] = 0.6;
            p[1] = 0.4;
            p
        };
        let boxes: Vec<Obb> = (0..5)
            .map(|i| Obb::from_pose(Pose2::new(2.0 + i as f64, 0.0, 0.0), 2.0, 2.0))
            .collect();
        let mut free = Hsa::new(config_fast());
        let mut cluttered = Hsa::new(config_fast());
        cluttered.set_ego_position(Vec2::ZERO);
        free.set_ego_position(Vec2::ZERO);
        let mut d_free = None;
        let mut d_clut = None;
        for _ in 0..10 {
            d_free = Some(free.update(&probs, &[]));
            d_clut = Some(cluttered.update(&probs, &boxes));
        }
        let (f, c) = (d_free.unwrap(), d_clut.unwrap());
        assert!(c.complexity > f.complexity);
        assert!(c.ratio < f.ratio, "clutter must lower the ratio");
    }

    #[test]
    fn reset_restores_initial_mode() {
        let mut hsa = Hsa::new(HsaConfig {
            initial_mode: Mode::Co,
            window: 1,
            guard_time: 1,
            ..HsaConfig::default()
        });
        for _ in 0..5 {
            hsa.update(&confident(21), &[]);
        }
        assert_eq!(hsa.mode(), Mode::Il);
        hsa.reset();
        assert_eq!(hsa.mode(), Mode::Co);
    }

    #[test]
    fn decision_reports_both_modes() {
        let mut hsa = Hsa::new(HsaConfig {
            window: 1,
            guard_time: 100, // never actually switches
            initial_mode: Mode::Co,
            ..HsaConfig::default()
        });
        let mut d = hsa.update(&confident(21), &[]);
        for _ in 0..5 {
            d = hsa.update(&confident(21), &[]);
        }
        assert_eq!(d.mode, Mode::Co);
        assert_eq!(d.raw_mode, Mode::Il);
    }
}
