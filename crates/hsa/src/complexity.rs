//! Scenario complexity: the CO-delay model of eq. (8).

use icoil_geom::{Obb, Vec2};
use serde::{Deserialize, Serialize};

/// Parameters of the complexity model (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexityParams {
    /// Length of the CO prediction horizon `H`.
    pub horizon: usize,
    /// Dimension of the action space `Nₐ`.
    pub action_dim: usize,
    /// Most dangerous obstacle distance `D₀` (meters): obstacles at this
    /// distance contribute maximally to the complexity.
    pub d0: f64,
    /// The superlinear exponent (3.5 in the paper).
    pub exponent: f64,
}

impl Default for ComplexityParams {
    fn default() -> Self {
        ComplexityParams {
            horizon: 12,
            action_dim: 2,
            d0: 1.5,
            exponent: 3.5,
        }
    }
}

impl ComplexityParams {
    /// The largest possible instant complexity for `k` obstacles (every
    /// obstacle exactly at the most-dangerous distance).
    pub fn max_for(&self, k: usize) -> f64 {
        ((self.horizon as f64) * (self.action_dim as f64 + k as f64)).powf(self.exponent)
    }

    /// The smallest possible instant complexity (no obstacle influence).
    pub fn min_value(&self) -> f64 {
        ((self.horizon as f64) * self.action_dim as f64).powf(self.exponent)
    }
}

/// Instant scenario complexity at one frame (the bracketed term of
/// eq. 8): `[H(Nₐ + Σ_k e^{-|D₀ − D_k|})]^{3.5}`, where `D_k` is the
/// distance from the ego position to obstacle `k`.
///
/// Obstacles near `D₀` contribute ≈ 1 (they constrain the planner most);
/// both very close obstacles (planning space already reduced) and remote
/// obstacles (no collision risk) contribute less — the interpretation
/// given in §IV-C.
pub fn instant_complexity(ego_position: Vec2, obstacles: &[Obb], params: &ComplexityParams) -> f64 {
    let mut influence = 0.0;
    for obb in obstacles {
        let d = obb.distance_to_point(ego_position);
        influence += (-(params.d0 - d).abs()).exp();
    }
    ((params.horizon as f64) * (params.action_dim as f64 + influence)).powf(params.exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;

    fn obstacle_at(x: f64) -> Obb {
        Obb::from_pose(Pose2::new(x, 0.0, 0.0), 2.0, 2.0)
    }

    #[test]
    fn empty_scene_gives_minimum() {
        let p = ComplexityParams::default();
        let c = instant_complexity(Vec2::ZERO, &[], &p);
        assert!((c - p.min_value()).abs() < 1e-9);
    }

    #[test]
    fn obstacle_at_d0_contributes_most() {
        let p = ComplexityParams::default();
        // boundary at exactly D0 (obstacle center at d0 + half size)
        let at_d0 = instant_complexity(Vec2::ZERO, &[obstacle_at(p.d0 + 1.0)], &p);
        let far = instant_complexity(Vec2::ZERO, &[obstacle_at(20.0)], &p);
        let touching = instant_complexity(Vec2::ZERO, &[obstacle_at(1.0)], &p);
        assert!(at_d0 > far, "at-D0 {at_d0} vs far {far}");
        assert!(at_d0 >= touching, "at-D0 {at_d0} vs touching {touching}");
    }

    #[test]
    fn complexity_increases_with_obstacle_count() {
        let p = ComplexityParams::default();
        let one = instant_complexity(Vec2::ZERO, &[obstacle_at(3.0)], &p);
        let two = instant_complexity(
            Vec2::ZERO,
            &[obstacle_at(3.0), obstacle_at(-3.0)],
            &p,
        );
        assert!(two > one);
    }

    #[test]
    fn superlinear_in_horizon() {
        let short = ComplexityParams {
            horizon: 5,
            ..ComplexityParams::default()
        };
        let long = ComplexityParams {
            horizon: 10,
            ..ComplexityParams::default()
        };
        let c_short = instant_complexity(Vec2::ZERO, &[], &short);
        let c_long = instant_complexity(Vec2::ZERO, &[], &long);
        // doubling H multiplies complexity by 2^3.5 ≈ 11.3
        assert!((c_long / c_short - 2f64.powf(3.5)).abs() < 1e-9);
    }

    #[test]
    fn bounds_hold() {
        let p = ComplexityParams::default();
        let obstacles: Vec<Obb> = (0..5).map(|i| obstacle_at(2.0 + i as f64)).collect();
        let c = instant_complexity(Vec2::ZERO, &obstacles, &p);
        assert!(c >= p.min_value());
        assert!(c <= p.max_for(5));
    }
}
