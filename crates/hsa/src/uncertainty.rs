//! Scenario uncertainty: windowed mean entropy (eq. 7).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A fixed-capacity sliding mean over the last `T` values — the
/// `1/T Σ_{h=0}^{T-1}` windows of eqs. (7) and (8).
///
/// Before the window fills, the mean is taken over the values seen so
/// far.
///
/// # Example
///
/// ```
/// use icoil_hsa::SlidingMean;
///
/// let mut m = SlidingMean::new(3);
/// assert_eq!(m.push(3.0), 3.0);
/// assert_eq!(m.push(5.0), 4.0);
/// assert_eq!(m.push(7.0), 5.0);
/// assert_eq!(m.push(9.0), 7.0); // 3.0 dropped
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl SlidingMean {
    /// Creates a window of capacity `T`.
    ///
    /// # Panics
    ///
    /// Panics for a zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingMean {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
        }
    }

    /// Pushes a value and returns the current windowed mean.
    pub fn push(&mut self, value: f64) -> f64 {
        if self.window.len() == self.capacity {
            self.sum -= self.window.pop_front().expect("window non-empty");
        }
        self.window.push_back(value);
        self.sum += value;
        self.mean()
    }

    /// Current mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            f64::NAN
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` when no value has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (start of a new episode).
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

/// Instant scenario uncertainty `ω_i`: the Shannon entropy (nats) of the
/// IL output distribution (§IV-C).
///
/// Zero-probability entries contribute zero, matching the `p log p → 0`
/// limit.
pub fn instant_uncertainty(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Alternative uncertainty measure: `1 − max_j p_j` (least-confidence).
///
/// Cheaper than entropy and often used in active learning; exposed for
/// the HSA ablations. Ranges over `[0, 1 − 1/M]`.
pub fn least_confidence(probs: &[f64]) -> f64 {
    1.0 - probs.iter().cloned().fold(0.0, f64::max)
}

/// Alternative uncertainty measure: `1 − (p₍₁₎ − p₍₂₎)`, one minus the
/// margin between the two most likely actions.
///
/// High when the DNN hesitates between two actions even if each is far
/// from uniform — a failure mode entropy under-weights.
pub fn margin_uncertainty(probs: &[f64]) -> f64 {
    let mut first = 0.0f64;
    let mut second = 0.0f64;
    for &p in probs {
        if p > first {
            second = first;
            first = p;
        } else if p > second {
            second = p;
        }
    }
    1.0 - (first - second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_mean_tracks_window() {
        let mut m = SlidingMean::new(2);
        assert!(m.is_empty());
        m.push(1.0);
        m.push(2.0);
        assert_eq!(m.mean(), 1.5);
        m.push(4.0); // drops 1.0
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn reset_empties() {
        let mut m = SlidingMean::new(3);
        m.push(5.0);
        m.reset();
        assert!(m.is_empty());
        assert!(m.mean().is_nan());
    }

    #[test]
    fn uniform_distribution_maximizes_uncertainty() {
        let m = 21;
        let uniform = vec![1.0 / m as f64; m];
        let u = instant_uncertainty(&uniform);
        assert!((u - (m as f64).ln()).abs() < 1e-12);
        // any non-uniform distribution has lower entropy
        let mut peaked = vec![0.5 / (m as f64 - 1.0); m];
        peaked[0] = 0.5;
        assert!(instant_uncertainty(&peaked) < u);
    }

    #[test]
    fn onehot_distribution_has_zero_uncertainty() {
        let mut p = vec![0.0; 10];
        p[4] = 1.0;
        assert_eq!(instant_uncertainty(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = SlidingMean::new(0);
    }

    #[test]
    fn least_confidence_bounds() {
        assert_eq!(least_confidence(&[1.0, 0.0]), 0.0);
        assert!((least_confidence(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
        let m = 4;
        let u = least_confidence(&vec![1.0 / m as f64; m]);
        assert!((u - (1.0 - 1.0 / m as f64)).abs() < 1e-12);
    }

    #[test]
    fn margin_uncertainty_detects_two_way_ties() {
        // near-tie between two actions: margin says "very uncertain"
        // while entropy sees a fairly peaked distribution
        let two_way = [0.49, 0.48, 0.01, 0.01, 0.01];
        let peaked = [0.96, 0.01, 0.01, 0.01, 0.01];
        assert!(margin_uncertainty(&two_way) > 0.9);
        assert!(margin_uncertainty(&peaked) < 0.1);
        assert!(instant_uncertainty(&two_way) < (5.0f64).ln());
    }

    #[test]
    fn all_measures_agree_on_extremes() {
        let onehot = [0.0, 1.0, 0.0];
        let uniform = [1.0 / 3.0; 3];
        for f in [instant_uncertainty, least_confidence, margin_uncertainty] {
            assert!(f(&onehot) < f(&uniform));
        }
    }
}
