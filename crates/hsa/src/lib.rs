//! Hybrid scenario analysis (HSA) — the mode-selection brain of iCOIL
//! (§IV-C).
//!
//! Per frame the HSA computes:
//!
//! * **scenario uncertainty** `U_i` (eq. 7): the windowed mean Shannon
//!   entropy of the IL softmax output — high when the DNN is unsure;
//! * **scenario complexity** `C_i` (eq. 8): the windowed mean of
//!   `[H(Nₐ + Σ_k e^{-|D₀ − D_{i,k}|})]^{3.5}` — a model of the CO
//!   module's computational delay, superlinear in the horizon and in the
//!   number of *nearby* obstacles;
//! * the **mode decision** (eq. 1): IL while `U_i · C_i⁻¹ ≤ λ`, CO
//!   otherwise, debounced by a guard time (the paper uses 20 stamps) so
//!   the system never chatters between modes.
//!
//! # Example
//!
//! ```
//! use icoil_hsa::{Hsa, HsaConfig, Mode};
//!
//! let mut hsa = Hsa::new(HsaConfig::default());
//! // A confident IL distribution over 7 actions, no obstacles near.
//! // After the guard time elapses the system settles on IL mode:
//! let mut probs = vec![0.002; 7];
//! probs[3] = 0.988;
//! let mut d = hsa.update(&probs, &[]);
//! for _ in 0..30 {
//!     d = hsa.update(&probs, &[]);
//! }
//! assert!(d.uncertainty < 0.5);
//! assert_eq!(d.mode, Mode::Il);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod complexity;
pub mod switch;
pub mod uncertainty;

pub use complexity::{instant_complexity, ComplexityParams};
pub use switch::{Hsa, HsaConfig, HsaDecision, Mode};
pub use uncertainty::{instant_uncertainty, SlidingMean};
