//! In-memory classification datasets with seeded mini-batching.

use crate::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled classification dataset of fixed-shape samples.
///
/// Samples are stored flat; `sample_shape` describes one sample (e.g.
/// `[2, 32, 32]` for a two-channel BEV image).
///
/// # Example
///
/// ```
/// use icoil_nn::Dataset;
///
/// let mut d = Dataset::new(vec![2]);
/// d.push(&[0.0, 1.0], 0).unwrap();
/// d.push(&[1.0, 0.0], 1).unwrap();
/// assert_eq!(d.len(), 2);
/// let (x, y) = d.batch(&[1, 0]);
/// assert_eq!(x.shape(), &[2, 2]);
/// assert_eq!(y, vec![1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    sample_shape: Vec<usize>,
    sample_len: usize,
    data: Vec<f32>,
    labels: Vec<usize>,
}

/// Error returned when a pushed sample has the wrong length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleLenError {
    /// Expected per-sample element count.
    pub expected: usize,
    /// Supplied element count.
    pub got: usize,
}

impl std::fmt::Display for SampleLenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sample has {} elements but the dataset stores {}-element samples",
            self.got, self.expected
        )
    }
}

impl std::error::Error for SampleLenError {}

impl Dataset {
    /// Creates an empty dataset of samples shaped `sample_shape`.
    pub fn new(sample_shape: Vec<usize>) -> Self {
        let sample_len = sample_shape.iter().product();
        Dataset {
            sample_shape,
            sample_len,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`SampleLenError`] when the sample length does not match.
    pub fn push(&mut self, sample: &[f32], label: usize) -> Result<(), SampleLenError> {
        if sample.len() != self.sample_len {
            return Err(SampleLenError {
                expected: self.sample_len,
                got: sample.len(),
            });
        }
        self.data.extend_from_slice(sample);
        self.labels.push(label);
        Ok(())
    }

    /// Appends every sample of `other`, in order — how the adaptation
    /// loop folds per-family reservoirs into one training set.
    ///
    /// # Errors
    ///
    /// Returns [`SampleLenError`] when the sample shapes differ; this
    /// dataset is left untouched in that case.
    pub fn extend(&mut self, other: &Dataset) -> Result<(), SampleLenError> {
        if other.sample_shape != self.sample_shape {
            return Err(SampleLenError {
                expected: self.sample_len,
                got: other.sample_len,
            });
        }
        self.data.extend_from_slice(&other.data);
        self.labels.extend_from_slice(&other.labels);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The shape of one sample.
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// The label list.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Class histogram over `classes` classes.
    pub fn class_counts(&self, classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; classes];
        for &l in &self.labels {
            if l < classes {
                counts[l] += 1;
            }
        }
        counts
    }

    /// Assembles a batch tensor `[indices.len(), …sample_shape]` plus
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        let mut data = Vec::with_capacity(indices.len() * self.sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&self.data[i * self.sample_len..(i + 1) * self.sample_len]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(shape, data).expect("batch shape matches data"),
            labels,
        )
    }

    /// Seeded shuffled mini-batch index lists covering the whole dataset;
    /// the final batch may be smaller.
    ///
    /// # Panics
    ///
    /// Panics for a zero batch size.
    pub fn shuffled_batches(&self, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Splits into `(train, test)` by taking every `k`-th sample for test.
    ///
    /// Deterministic (no RNG): stable across runs and platforms.
    ///
    /// # Panics
    ///
    /// Panics when `k < 2`.
    pub fn split_every_kth(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "split requires k >= 2");
        let mut train = Dataset::new(self.sample_shape.clone());
        let mut test = Dataset::new(self.sample_shape.clone());
        for i in 0..self.len() {
            let sample = &self.data[i * self.sample_len..(i + 1) * self.sample_len];
            let dst = if i % k == 0 { &mut test } else { &mut train };
            dst.push(sample, self.labels[i]).expect("same shape");
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_sample_dataset() -> Dataset {
        let mut d = Dataset::new(vec![2]);
        d.push(&[0.0, 1.0], 0).unwrap();
        d.push(&[2.0, 3.0], 1).unwrap();
        d.push(&[4.0, 5.0], 2).unwrap();
        d
    }

    #[test]
    fn push_validates_length() {
        let mut d = Dataset::new(vec![3]);
        assert!(d.push(&[1.0, 2.0], 0).is_err());
        assert!(d.push(&[1.0, 2.0, 3.0], 0).is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn batch_gathers_in_order() {
        let d = three_sample_dataset();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(y, vec![2, 0]);
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let mut d = Dataset::new(vec![1]);
        for i in 0..10 {
            d.push(&[i as f32], i).unwrap();
        }
        let batches = d.shuffled_batches(3, 42);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // determinism
        assert_eq!(d.shuffled_batches(3, 42), d.shuffled_batches(3, 42));
        assert_ne!(d.shuffled_batches(3, 42), d.shuffled_batches(3, 43));
    }

    #[test]
    fn class_counts() {
        let d = three_sample_dataset();
        assert_eq!(d.class_counts(3), vec![1, 1, 1]);
        assert_eq!(d.class_counts(2), vec![1, 1]); // out-of-range dropped
    }

    #[test]
    fn split_every_kth_partitions() {
        let mut d = Dataset::new(vec![1]);
        for i in 0..10 {
            d.push(&[i as f32], i % 2).unwrap();
        }
        let (train, test) = d.split_every_kth(5);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len(), 8);
    }

    #[test]
    fn serde_roundtrip() {
        let d = three_sample_dataset();
        let s = serde_json::to_string(&d).unwrap();
        let e: Dataset = serde_json::from_str(&s).unwrap();
        assert_eq!(d, e);
    }
}
