//! Weight initialization.

use crate::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// He (Kaiming) uniform initialization for layers followed by ReLU:
/// samples from `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Example
///
/// ```
/// use icoil_nn::init::he_uniform;
///
/// let w = he_uniform(vec![16, 8], 8, 42);
/// assert_eq!(w.shape(), &[16, 8]);
/// let bound = (6.0f32 / 8.0).sqrt();
/// assert!(w.data().iter().all(|v| v.abs() <= bound));
/// ```
pub fn he_uniform(shape: Vec<usize>, fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan-in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Xavier/Glorot uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: Vec<usize>, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sizes must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Uniform initialization on `[lo, hi)`, seeded.
pub fn uniform(shape: Vec<usize>, lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("shape matches generated length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_init_is_deterministic() {
        let a = he_uniform(vec![4, 4], 4, 7);
        let b = he_uniform(vec![4, 4], 4, 7);
        assert_eq!(a, b);
        let c = he_uniform(vec![4, 4], 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let t = uniform(vec![1000], -0.5, 0.5, 3);
        assert!(t.data().iter().all(|v| (-0.5..0.5).contains(v)));
        // roughly centered
        let mean: f32 = t.sum() / 1000.0;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn xavier_scales_with_fans() {
        let small = xavier_uniform(vec![100], 10, 10, 1);
        let large = xavier_uniform(vec![100], 1000, 1000, 1);
        let amp = |t: &Tensor| t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(amp(&large) < amp(&small));
    }
}
