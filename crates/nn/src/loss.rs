//! Softmax, cross-entropy (eq. 3) and classification metrics.

use crate::Tensor;

/// Row-wise softmax of a logits matrix `[n, classes]`.
///
/// Numerically stabilized by subtracting each row's maximum.
///
/// # Example
///
/// ```
/// use icoil_nn::{loss::softmax, Tensor};
///
/// let p = softmax(&Tensor::from_vec(vec![1, 3], vec![1.0, 1.0, 1.0]).unwrap());
/// for v in p.data() {
///     assert!((v - 1.0 / 3.0).abs() < 1e-6);
/// }
/// ```
///
/// # Panics
///
/// Panics unless the input is a 2-D tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "softmax expects [n, classes]");
    let (n, c) = (shape[0], shape[1]);
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in out[i * c..(i + 1) * c].iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in &mut out[i * c..(i + 1) * c] {
            *o /= sum;
        }
    }
    Tensor::from_vec(vec![n, c], out).expect("softmax preserves shape")
}

/// In-place variant of [`softmax`]: replaces a logits matrix with its
/// row-wise softmax without allocating. Produces bit-identical results.
///
/// # Panics
///
/// Panics unless the input is a 2-D tensor.
pub fn softmax_in_place(logits: &mut Tensor) {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "softmax expects [n, classes]");
    let (n, c) = (shape[0], shape[1]);
    let data = logits.data_mut();
    for i in 0..n {
        let row = &mut data[i * c..(i + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row {
            *v /= sum;
        }
    }
}

/// Mean softmax cross-entropy loss over a batch, plus its gradient with
/// respect to the logits.
///
/// This is eq. (3) of the paper: `L = -(1/|D|) Σ log p_correct`. The
/// returned gradient is `(softmax - onehot) / n`, ready to feed into
/// [`crate::Network::backward`].
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size or any label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "cross_entropy expects [n, classes]");
    let (n, c) = (shape[0], shape[1]);
    assert_eq!(labels.len(), n, "one label per batch row required");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        let p = probs.data()[i * c + y].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * c + y] -= 1.0;
    }
    grad.scale(inv_n);
    (loss * inv_n, grad)
}

/// Label-smoothed cross-entropy: the one-hot target is mixed with the
/// uniform distribution (`ε` mass spread over all classes). Smoothing
/// keeps the trained network from collapsing to near-zero entropy — a
/// calibration property the HSA uncertainty signal depends on.
///
/// # Panics
///
/// Panics on dimension mismatch, out-of-range labels, or `ε ∉ [0, 1)`.
pub fn cross_entropy_smoothed(logits: &Tensor, labels: &[usize], eps: f32) -> (f32, Tensor) {
    assert!((0.0..1.0).contains(&eps), "smoothing must be in [0, 1)");
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "cross_entropy expects [n, classes]");
    let (n, c) = (shape[0], shape[1]);
    assert_eq!(labels.len(), n, "one label per batch row required");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    let off = eps / c as f32;
    let on = 1.0 - eps + off;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        for j in 0..c {
            let target = if j == y { on } else { off };
            let p = probs.data()[i * c + j].max(1e-12);
            loss -= target * p.ln();
            grad.data_mut()[i * c + j] -= target;
        }
    }
    grad.scale(inv_n);
    (loss * inv_n, grad)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "one label per batch row required");
    if preds.is_empty() {
        return f64::NAN;
    }
    let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / labels.len() as f64
}

/// Shannon entropy (nats) of one probability row — the paper's instant
/// scenario uncertainty `ω_i = -Σ_j p_j log p_j` (§IV-C).
///
/// # Example
///
/// ```
/// use icoil_nn::loss::entropy;
///
/// // Uniform over 4 classes: ln 4 ≈ 1.386 nats.
/// assert!((entropy(&[0.25; 4]) - 4.0f64.ln()).abs() < 1e-9);
/// // One-hot: zero entropy.
/// assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
/// ```
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -10., 0., 10.]).unwrap();
        let p = softmax(&l);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // larger logit, larger probability
        assert!(p.at(0, 2) > p.at(0, 1) && p.at(0, 1) > p.at(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1, 2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&a);
        assert!(p.is_finite());
        let b = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let q = softmax(&b);
        for (x, y) in p.data().iter().zip(q.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let l = Tensor::from_vec(vec![1, 3], vec![100.0, 0.0, 0.0]).unwrap();
        let (loss, _) = cross_entropy(&l, &[0]);
        assert!(loss < 1e-6);
        let (bad_loss, _) = cross_entropy(&l, &[2]);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let l = Tensor::zeros(vec![4, 5]);
        let (loss, grad) = cross_entropy(&l, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
        // gradient rows sum to zero (softmax minus one-hot)
        for i in 0..4 {
            let s: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let l = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 0.0, 0.3, -0.4]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&l, &labels);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = cross_entropy(&lp, &labels);
            let (fm, _) = cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "logit {i}: numeric {num} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let l = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 0.]).unwrap();
        assert!((accuracy(&l, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&l, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn entropy_bounds() {
        // entropy maximal for uniform, zero for deterministic
        let m = 8;
        let uniform = vec![1.0 / m as f64; m];
        assert!((entropy(&uniform) - (m as f64).ln()).abs() < 1e-12);
        for k in 2..10 {
            let mut p = vec![0.0; k];
            p[0] = 1.0;
            assert_eq!(entropy(&p), 0.0);
        }
    }

    #[test]
    fn smoothed_cross_entropy_reduces_confidence_incentive() {
        // at eps = 0 it matches the plain loss
        let l = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 0.0, 0.3, -0.4]).unwrap();
        let labels = [2usize, 0];
        let (a, ga) = cross_entropy(&l, &labels);
        let (b, gb) = cross_entropy_smoothed(&l, &labels, 0.0);
        assert!((a - b).abs() < 1e-6);
        for (x, y) in ga.data().iter().zip(gb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        // with smoothing, an extremely confident correct logit is *worse*
        // than a moderately confident one
        let confident = Tensor::from_vec(vec![1, 3], vec![50.0, 0.0, 0.0]).unwrap();
        let moderate = Tensor::from_vec(vec![1, 3], vec![3.0, 0.0, 0.0]).unwrap();
        let (lc, _) = cross_entropy_smoothed(&confident, &[0], 0.1);
        let (lm, _) = cross_entropy_smoothed(&moderate, &[0], 0.1);
        assert!(lc > lm, "overconfidence must cost: {lc} vs {lm}");
    }

    #[test]
    fn smoothed_gradient_matches_finite_difference() {
        let l = Tensor::from_vec(vec![2, 3], vec![0.4, -0.1, 0.2, -0.3, 0.6, 0.0]).unwrap();
        let labels = [1usize, 2];
        let (_, grad) = cross_entropy_smoothed(&l, &labels, 0.15);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = cross_entropy_smoothed(&lp, &labels, 0.15);
            let (fm, _) = cross_entropy_smoothed(&lm, &labels, 0.15);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let l = Tensor::zeros(vec![1, 2]);
        let _ = cross_entropy(&l, &[5]);
    }
}
