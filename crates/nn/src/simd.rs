//! Runtime-dispatched SIMD kernels for the crate's `f32` hot paths and
//! the quantized int8 inference lane.
//!
//! Two backends implement each kernel:
//!
//! * **scalar** — the original portable loops, unchanged, so
//!   `ICOIL_FORCE_SCALAR=1` reproduces pre-SIMD results bit-for-bit;
//! * **avx2** — x86-64 AVX2/FMA `f32x8` lanes, selected at runtime when
//!   the CPU reports both `avx2` and `fma`.
//!
//! # Determinism contract
//!
//! Each kernel declares a conformance *mode* (see [`kernel_modes`]):
//!
//! * `"bitwise"` — the SIMD path performs the same floating-point
//!   operations in the same order as the scalar path (pure data movement
//!   or lane-independent updates), so both backends agree bit-for-bit.
//! * `"ulp"` — FMA contraction and lane-split reductions reorder
//!   roundings, so backends agree only to a small relative tolerance.
//!   Crucially, each *output element's* value is still a pure function of
//!   its own inputs on a given backend: lane tiling and batch width never
//!   leak into an element's accumulation order, preserving the
//!   batched-vs-single and worker-count bit-identity contracts *within*
//!   a backend.
//!
//! Dispatch is process-wide (cached on first use, honoring
//! `ICOIL_FORCE_SCALAR=1`) with a thread-local override
//! ([`with_backend`]) so differential tests can compare both backends in
//! one process.

// This module is the one place in the crate allowed to use `unsafe`: the
// AVX2 kernels require `core::arch` intrinsics, which are only callable
// from `#[target_feature]` functions guarded by runtime detection.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

/// Which kernel implementation services the f32 hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar loops (the pre-SIMD reference path).
    Scalar,
    /// x86-64 AVX2 + FMA `f32x8` lanes.
    Avx2,
}

impl KernelBackend {
    /// The backend's stable label, as recorded in bench JSON
    /// (`"scalar"` / `"avx2"`).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

fn detect() -> KernelBackend {
    if std::env::var("ICOIL_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        return KernelBackend::Avx2;
    }
    KernelBackend::Scalar
}

/// The process-wide backend chosen at first use: scalar when
/// `ICOIL_FORCE_SCALAR=1`, otherwise the best the CPU supports.
pub fn detected() -> KernelBackend {
    static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

thread_local! {
    static OVERRIDE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// The backend the *current thread* will use: a [`with_backend`] override
/// when one is active, the process-wide [`detected`] backend otherwise.
pub fn active() -> KernelBackend {
    OVERRIDE.with(Cell::get).unwrap_or_else(detected)
}

/// The active backend's label (`"avx2"` / `"scalar"`), for bench
/// metadata.
pub fn dispatch_target() -> &'static str {
    active().label()
}

/// Runs `f` with the current thread's kernels pinned to `backend`,
/// restoring the previous dispatch afterwards (also on panic), so
/// differential tests can compare scalar and SIMD results in-process.
pub fn with_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

/// Per-kernel conformance modes: `(kernel, mode)` where mode is
/// `"bitwise"` (backends agree bit-for-bit) or `"ulp"` (tolerance-bounded
/// agreement; FMA/lane reductions reorder roundings). See the module docs
/// for what each mode guarantees.
pub fn kernel_modes() -> &'static [(&'static str, &'static str)] {
    &[
        ("matmul_f32", "ulp"),
        ("matmul_nt_f32", "ulp"),
        ("im2col_f32", "bitwise"),
        ("gemm_nt_i8", "bitwise"),
        ("requant_u8", "bitwise"),
        ("quantize_u8", "bitwise"),
    ]
}

/// `out[m×n] = a[m×k] · b[k×n]`, row-major. `out` is fully overwritten.
///
/// Both backends accumulate each output element over `k` in ascending
/// order and skip `a == 0.0` entries, so an element's value depends only
/// on its own row of `a` and column of `b` — never on the tiling.
///
/// # Panics
///
/// Panics (in debug builds) when the slice lengths disagree with the
/// dimensions.
pub fn matmul(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match active() {
        KernelBackend::Scalar => matmul_scalar(a, m, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backend is only ever selected after runtime
        // detection of avx2+fma (or by an explicit test override on a
        // machine where detection already succeeded).
        KernelBackend::Avx2 => unsafe { matmul_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => matmul_scalar(a, m, k, b, n, out),
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ`, row-major. `out` is fully overwritten.
///
/// Each output element is an independent dot product over `k`, so the
/// result row for `a`'s row `i` is identical whatever the batch width
/// `m` — the property the serve IL micro-batch relies on.
pub fn matmul_nt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    match active() {
        KernelBackend::Scalar => matmul_nt_scalar(a, m, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `matmul` — avx2+fma verified before dispatch.
        KernelBackend::Avx2 => unsafe { matmul_nt_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => matmul_nt_scalar(a, m, k, b, n, out),
    }
}

/// The pre-SIMD column-blocked matmul, kept verbatim as the scalar
/// reference: a panel of `b` columns stays in cache across all rows of
/// `a`, each element accumulating over `k` in ascending order.
fn matmul_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    const BLOCK: usize = 128;
    out.fill(0.0);
    let mut jb = 0;
    while jb < n {
        let je = (jb + BLOCK).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n + jb..i * n + je];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + jb..kk * n + je];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        jb = je;
    }
}

/// The pre-SIMD per-element dot product, kept verbatim as the scalar
/// reference.
fn matmul_nt_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    out.fill(0.0);
    // Register-tiled core: a 4-row × 16-column tile of `out` lives in
    // eight ymm accumulators across the whole k loop, so each k step is
    // two panel loads plus eight independent FMA chains — enough to keep
    // both FMA ports busy instead of round-tripping `out` through L1 on
    // every k step. Per element the math is unchanged: one FMA per
    // nonzero `a` entry, k ascending, so the tiling never leaks into a
    // value and row results are independent of the batch height `m`.
    const NR: usize = 16;
    const MR: usize = 4;
    let n_main = n - n % NR;
    let m_main = m - m % MR;
    let mut jb = 0;
    while jb < n_main {
        let mut ib = 0;
        while ib < m_main {
            // SAFETY: ib + MR <= m and jb + NR <= n, so every a/b/out
            // index below is in bounds.
            unsafe {
                let bp = b.as_ptr().add(jb);
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for kk in 0..k {
                    let brow = bp.add(kk * n);
                    let b0 = _mm256_loadu_ps(brow);
                    let b1 = _mm256_loadu_ps(brow.add(8));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = *a.get_unchecked((ib + r) * k + kk);
                        if av == 0.0 {
                            continue;
                        }
                        let va = _mm256_set1_ps(av);
                        accr[0] = _mm256_fmadd_ps(va, b0, accr[0]);
                        accr[1] = _mm256_fmadd_ps(va, b1, accr[1]);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let op = out.as_mut_ptr().add((ib + r) * n + jb);
                    _mm256_storeu_ps(op, accr[0]);
                    _mm256_storeu_ps(op.add(8), accr[1]);
                }
            }
            ib += MR;
        }
        // Row tail (m % MR): one row at a time, accumulators still held
        // in registers across k — the same per-element op sequence as
        // the 4-row tile.
        for i in m_main..m {
            // SAFETY: i < m and jb + NR <= n.
            unsafe {
                let bp = b.as_ptr().add(jb);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                for kk in 0..k {
                    let av = *a.get_unchecked(i * k + kk);
                    if av == 0.0 {
                        continue;
                    }
                    let brow = bp.add(kk * n);
                    let va = _mm256_set1_ps(av);
                    acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
                    acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(8)), acc1);
                }
                let op = out.as_mut_ptr().add(i * n + jb);
                _mm256_storeu_ps(op, acc0);
                _mm256_storeu_ps(op.add(8), acc1);
            }
        }
        jb += NR;
    }
    // Column tail (n % NR): stream the leftover columns per (i, k) with
    // the same fmadd lane semantics (8-lane vectors, then `mul_add` for
    // the rest — both compile to vfmadd, so tail columns see the same
    // rounding as tiled ones).
    if n_main < n {
        let span = n - n_main;
        let lanes = span - span % 8;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + n_main..(kk + 1) * n];
                let out_row = &mut out[i * n + n_main..(i + 1) * n];
                let va = _mm256_set1_ps(av);
                let mut j = 0;
                while j < lanes {
                    // SAFETY: j + 8 <= lanes <= span == both slice lengths.
                    let vb = unsafe { _mm256_loadu_ps(b_row.as_ptr().add(j)) };
                    let vo = unsafe { _mm256_loadu_ps(out_row.as_ptr().add(j)) };
                    let fused = _mm256_fmadd_ps(va, vb, vo);
                    unsafe { _mm256_storeu_ps(out_row.as_mut_ptr().add(j), fused) };
                    j += 8;
                }
                for j in lanes..span {
                    out_row[j] = av.mul_add(b_row[j], out_row[j]);
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_nt_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let lanes = k - k % 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = _mm256_setzero_ps();
            let mut kk = 0;
            while kk < lanes {
                // SAFETY: kk + 8 <= lanes <= k == both slice lengths.
                let va = unsafe { _mm256_loadu_ps(a_row.as_ptr().add(kk)) };
                let vb = unsafe { _mm256_loadu_ps(b_row.as_ptr().add(kk)) };
                acc = _mm256_fmadd_ps(va, vb, acc);
                kk += 8;
            }
            // Fixed-order horizontal sum, then the scalar tail — the
            // same reduction tree for every (i, j), independent of m, n.
            let lo = _mm256_castps256_ps128(acc);
            let hi = _mm256_extractf128_ps(acc, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            let mut sum = _mm_cvtss_f32(s);
            for kk in lanes..k {
                sum = a_row[kk].mul_add(b_row[kk], sum);
            }
            out[i * n + j] = sum;
        }
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` over quantized integers: `a` holds
/// unsigned activation codes, `b` signed int8 weights, and every output
/// element is an exact i32 dot product — the quantized counterpart of
/// [`matmul_nt`].
///
/// # Determinism contract
///
/// This kernel is `"bitwise"`: i32 addition is associative mod 2³², so
/// the AVX2 lane tiling cannot reorder a result, *provided* the
/// `maddubs` pair sums never saturate in i16. The quantizer guarantees
/// that by keeping activation codes in `0..=127` (so a pair is at most
/// `2·127·127 = 32258 < 32767`); callers handing this kernel activation
/// bytes above 127 forfeit the bitwise guarantee on AVX2.
///
/// The caller also guarantees the i32 accumulator cannot overflow:
/// `k·127·127` must stay below `i32::MAX` (true for any `k` below
/// ~132 000; the iCOIL CNN's largest reduction is 512).
///
/// # Panics
///
/// Panics (in debug builds) when the slice lengths disagree with the
/// dimensions.
pub fn gemm_nt_i8(a: &[u8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(
        a.iter().all(|&v| v <= 127),
        "activation codes above 127 break the maddubs bitwise contract"
    );
    match active() {
        KernelBackend::Scalar => gemm_nt_i8_scalar(a, m, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `matmul` — avx2 verified before dispatch.
        KernelBackend::Avx2 => unsafe { gemm_nt_i8_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => gemm_nt_i8_scalar(a, m, k, b, n, out),
    }
}

/// The portable int8 reference: plain i32 dot products, the exact value
/// the AVX2 path must reproduce bit-for-bit.
fn gemm_nt_i8_scalar(a: &[u8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += i32::from(av) * i32::from(bv);
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_i8_avx2(a: &[u8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    use std::arch::x86_64::*;
    let lanes = k - k % 32;
    let n_main = n - n % 8;
    // SAFETY (whole function): every pointer below indexes a[..m*k],
    // b[..n*k] or out[..m*n] within the bounds debug-asserted by the
    // dispatcher; vector loads read 32 bytes at offsets < lanes <= k, and
    // the 256-bit result store covers out[i*n+j .. +8] with j+8 <= n.
    unsafe {
        let ones = _mm256_set1_epi16(1);
        // Eight-column panels, panel-outer so the eight weight-row
        // pointers stay pinned in registers across the whole activation
        // sweep: per row, eight weight rows share each 32-byte activation
        // load (one maddubs u8×i8 → i16 pairs, one madd pair sum → i32
        // lanes, one add per row), and the eight accumulators collapse
        // through a single hadd/permute tree into one ymm of ordered
        // column sums, stored with one 256-bit write. Amortizing the
        // horizontal reduction to ~1 instruction per output is what makes
        // the skinny conv GEMMs (k as small as 32) worthwhile. Exact i32
        // sums make the tiling invisible in the result.
        let mut j = 0;
        while j < n_main {
            let bp: [*const i8; 8] = std::array::from_fn(|s| b.as_ptr().add((j + s) * k));
            for i in 0..m {
                let a_row = a.as_ptr().add(i * k);
                let mut acc = [_mm256_setzero_si256(); 8];
                let mut kk = 0;
                while kk < lanes {
                    let va = _mm256_loadu_si256(a_row.add(kk) as *const __m256i);
                    for (accs, bs) in acc.iter_mut().zip(&bp) {
                        let vb = _mm256_loadu_si256(bs.add(kk) as *const __m256i);
                        *accs = _mm256_add_epi32(
                            *accs,
                            _mm256_madd_epi16(_mm256_maddubs_epi16(va, vb), ones),
                        );
                    }
                    kk += 32;
                }
                // [Σ0..Σ7] in column order: hadd pairs lanes within
                // 128-bit halves, the permute2x128 pair realigns them
                let t0 = _mm256_hadd_epi32(acc[0], acc[1]);
                let t1 = _mm256_hadd_epi32(acc[2], acc[3]);
                let t2 = _mm256_hadd_epi32(acc[4], acc[5]);
                let t3 = _mm256_hadd_epi32(acc[6], acc[7]);
                let u0 = _mm256_hadd_epi32(t0, t1);
                let u1 = _mm256_hadd_epi32(t2, t3);
                let mut v = _mm256_add_epi32(
                    _mm256_permute2x128_si256(u0, u1, 0x20),
                    _mm256_permute2x128_si256(u0, u1, 0x31),
                );
                if lanes < k {
                    let mut tails = [0i32; 8];
                    for (ts, bs) in tails.iter_mut().zip(&bp) {
                        for kk in lanes..k {
                            *ts += i32::from(*a_row.add(kk)) * i32::from(*bs.add(kk));
                        }
                    }
                    let vt = _mm256_loadu_si256(tails.as_ptr() as *const __m256i);
                    v = _mm256_add_epi32(v, vt);
                }
                _mm256_storeu_si256(out.as_mut_ptr().add(i * n + j) as *mut __m256i, v);
            }
            j += 8;
        }
        // column tail (n % 8): one weight row at a time
        for j in n_main..n {
            let b_row = b.as_ptr().add(j * k);
            for i in 0..m {
                out[i * n + j] = dot_i8_avx2(a.as_ptr().add(i * k), b_row, k, lanes);
            }
        }
    }
}

/// One u8·i8 dot product over `k` entries (`lanes` of them vectorized).
///
/// # Safety
///
/// `a` and `b` must be readable for `k` bytes, and avx2 must be
/// available; `lanes` must be `k - k % 32`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: *const u8, b: *const i8, k: usize, lanes: usize) -> i32 {
    use std::arch::x86_64::*;
    // SAFETY: callers pass pointers valid for k bytes; loads stop at
    // lanes <= k.
    unsafe {
        let ones = _mm256_set1_epi16(1);
        let mut accv = _mm256_setzero_si256();
        let mut kk = 0;
        while kk < lanes {
            let va = _mm256_loadu_si256(a.add(kk) as *const __m256i);
            let vb = _mm256_loadu_si256(b.add(kk) as *const __m256i);
            accv = _mm256_add_epi32(accv, _mm256_madd_epi16(_mm256_maddubs_epi16(va, vb), ones));
            kk += 32;
        }
        let s = _mm_add_epi32(_mm256_castsi256_si128(accv), _mm256_extracti128_si256(accv, 1));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b_01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b_00_00_00_01));
        let mut acc = _mm_cvtsi128_si32(s);
        for kk in lanes..k {
            acc += i32::from(*a.add(kk)) * i32::from(*b.add(kk));
        }
        acc
    }
}

/// One requantization element: the exact op sequence both backends
/// perform — i32→f32 convert, scale, offset, optional ReLU, round ties
/// to even, zero-point shift, clamp to the `[0, 127]` code range.
#[inline]
fn requant_one(a: i32, zc: i32, s: f32, b: f32, fuse_relu: bool, zp_out: f32) -> u8 {
    let mut v = (a - zc) as f32 * s + b;
    if fuse_relu {
        v = v.max(0.0);
    }
    (v.round_ties_even() + zp_out).clamp(0.0, 127.0) as u8
}

/// Fused requantization of a `[rows, out]` i32 accumulator plane into u8
/// activation codes: per column `j`,
/// `code = clamp(round((acc − zp_corr[j])·s_out[j] + b_out[j]) + zp_out)`,
/// with an optional fused ReLU before rounding.
///
/// # Determinism contract
///
/// `"bitwise"`: the pipeline is elementwise over IEEE f32 ops performed
/// in the same order on both backends (no FMA contraction, ties-to-even
/// rounding), so lane width cannot change a single code.
///
/// # Panics
///
/// Panics (in debug builds) when the column arrays disagree in length or
/// the plane sizes are not `rows × zp_corr.len()`.
pub fn requant_rows_u8(
    acc: &[i32],
    zp_corr: &[i32],
    s_out: &[f32],
    b_out: &[f32],
    fuse_relu: bool,
    zp_out: f32,
    dst: &mut [u8],
) {
    let out = zp_corr.len();
    debug_assert_eq!(s_out.len(), out);
    debug_assert_eq!(b_out.len(), out);
    debug_assert_eq!(acc.len(), dst.len());
    debug_assert!(out == 0 || acc.len().is_multiple_of(out));
    match active() {
        KernelBackend::Scalar => {
            requant_rows_u8_scalar(acc, zp_corr, s_out, b_out, fuse_relu, zp_out, dst)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `matmul` — avx2 verified before dispatch.
        KernelBackend::Avx2 => unsafe {
            requant_rows_u8_avx2(acc, zp_corr, s_out, b_out, fuse_relu, zp_out, dst)
        },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => {
            requant_rows_u8_scalar(acc, zp_corr, s_out, b_out, fuse_relu, zp_out, dst)
        }
    }
}

fn requant_rows_u8_scalar(
    acc: &[i32],
    zp_corr: &[i32],
    s_out: &[f32],
    b_out: &[f32],
    fuse_relu: bool,
    zp_out: f32,
    dst: &mut [u8],
) {
    let out = zp_corr.len();
    if out == 0 {
        return;
    }
    for (acc_row, dst_row) in acc.chunks_exact(out).zip(dst.chunks_exact_mut(out)) {
        let lanes = dst_row.iter_mut().zip(acc_row).zip(zp_corr).zip(s_out).zip(b_out);
        for ((((d, &a), &zc), &s), &b) in lanes {
            *d = requant_one(a, zc, s, b, fuse_relu, zp_out);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn requant_rows_u8_avx2(
    acc: &[i32],
    zp_corr: &[i32],
    s_out: &[f32],
    b_out: &[f32],
    fuse_relu: bool,
    zp_out: f32,
    dst: &mut [u8],
) {
    use std::arch::x86_64::*;
    let out = zp_corr.len();
    if out == 0 {
        return;
    }
    let rows = acc.len() / out;
    let out_main = out - out % 8;
    // SAFETY (whole function): row pointers index acc[..rows*out] and
    // dst[..rows*out]; vector loads/stores cover 8 elements at offsets
    // j <= out_main - 8; x86-64 is little-endian, so the packed low
    // 4-byte halves land in dst in column order.
    unsafe {
        let zero = _mm256_setzero_ps();
        let v127 = _mm256_set1_ps(127.0);
        let vzp = _mm256_set1_ps(zp_out);
        for r in 0..rows {
            let acc_row = acc.as_ptr().add(r * out);
            let dst_row = dst.as_mut_ptr().add(r * out);
            let mut j = 0;
            while j < out_main {
                let va = _mm256_loadu_si256(acc_row.add(j) as *const __m256i);
                let vzc = _mm256_loadu_si256(zp_corr.as_ptr().add(j) as *const __m256i);
                let f = _mm256_cvtepi32_ps(_mm256_sub_epi32(va, vzc));
                let vs = _mm256_loadu_ps(s_out.as_ptr().add(j));
                let vb = _mm256_loadu_ps(b_out.as_ptr().add(j));
                // mul then add (not fmadd): the scalar path rounds twice
                let mut v = _mm256_add_ps(_mm256_mul_ps(f, vs), vb);
                if fuse_relu {
                    v = _mm256_max_ps(v, zero);
                }
                v = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(v);
                v = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(v, vzp), zero), v127);
                let q = _mm256_cvtps_epi32(v);
                // pack 8 i32 codes (0..=127) into 8 bytes
                let p16 = _mm256_packs_epi32(q, q);
                let p8 = _mm256_packus_epi16(p16, p16);
                let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(p8)) as u32;
                let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256(p8, 1)) as u32;
                (dst_row.add(j) as *mut u32).write_unaligned(lo);
                (dst_row.add(j + 4) as *mut u32).write_unaligned(hi);
                j += 8;
            }
            for j in out_main..out {
                *dst_row.add(j) =
                    requant_one(*acc_row.add(j), zp_corr[j], s_out[j], b_out[j], fuse_relu, zp_out);
            }
        }
    }
}

/// Quantizes a contiguous f32 slice to `[0, 127]` u8 codes:
/// `code = clamp(round(v·inv_scale) + zero_point)`, rounding ties to
/// even.
///
/// # Determinism contract
///
/// `"bitwise"`: elementwise IEEE f32 ops in the same order on both
/// backends.
///
/// # Panics
///
/// Panics (in debug builds) when the slices disagree in length.
pub fn quantize_f32_u8(src: &[f32], inv_scale: f32, zero_point: f32, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    match active() {
        KernelBackend::Scalar => quantize_f32_u8_scalar(src, inv_scale, zero_point, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `matmul` — avx2 verified before dispatch.
        KernelBackend::Avx2 => unsafe { quantize_f32_u8_avx2(src, inv_scale, zero_point, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => quantize_f32_u8_scalar(src, inv_scale, zero_point, dst),
    }
}

#[inline]
fn quantize_one(v: f32, inv_scale: f32, zero_point: f32) -> u8 {
    ((v * inv_scale).round_ties_even() + zero_point).clamp(0.0, 127.0) as u8
}

fn quantize_f32_u8_scalar(src: &[f32], inv_scale: f32, zero_point: f32, dst: &mut [u8]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = quantize_one(v, inv_scale, zero_point);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_f32_u8_avx2(src: &[f32], inv_scale: f32, zero_point: f32, dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let main = n - n % 8;
    // SAFETY (whole function): vector loads/stores cover 8 elements at
    // offsets j <= main - 8 within src/dst of equal length n; x86-64 is
    // little-endian for the packed 4-byte halves.
    unsafe {
        let zero = _mm256_setzero_ps();
        let v127 = _mm256_set1_ps(127.0);
        let vinv = _mm256_set1_ps(inv_scale);
        let vzp = _mm256_set1_ps(zero_point);
        let mut j = 0;
        while j < main {
            let v = _mm256_loadu_ps(src.as_ptr().add(j));
            let v = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
                _mm256_mul_ps(v, vinv),
            );
            let v = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(v, vzp), zero), v127);
            let q = _mm256_cvtps_epi32(v);
            let p16 = _mm256_packs_epi32(q, q);
            let p8 = _mm256_packus_epi16(p16, p16);
            let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(p8)) as u32;
            let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256(p8, 1)) as u32;
            (dst.as_mut_ptr().add(j) as *mut u32).write_unaligned(lo);
            (dst.as_mut_ptr().add(j + 4) as *mut u32).write_unaligned(hi);
            j += 8;
        }
        for (j, &v) in src.iter().enumerate().skip(main) {
            *dst.get_unchecked_mut(j) = quantize_one(v, inv_scale, zero_point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 7 + 3) as f32 * scale).sin()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-5 * x.abs().max(1.0),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let before = active();
        with_backend(KernelBackend::Scalar, || {
            assert_eq!(active(), KernelBackend::Scalar);
            assert_eq!(dispatch_target(), "scalar");
        });
        assert_eq!(active(), before);
    }

    #[test]
    fn override_survives_panic() {
        let before = active();
        let caught = std::panic::catch_unwind(|| {
            with_backend(KernelBackend::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active(), before, "override must unwind with the panic");
    }

    #[test]
    fn backends_agree_on_matmul_within_tolerance() {
        // deliberately awkward: k and n not multiples of 8
        let (m, k, n) = (5, 13, 21);
        let a = wavy(m * k, 0.137);
        let b = wavy(k * n, 0.219);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul(&a, m, k, &b, n, &mut simd));
        assert_close(&scalar, &simd, "matmul");
    }

    #[test]
    fn backends_agree_on_matmul_nt_within_tolerance() {
        let (m, k, n) = (7, 19, 9);
        let a = wavy(m * k, 0.091);
        let b = wavy(n * k, 0.173);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul_nt(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul_nt(&a, m, k, &b, n, &mut simd));
        assert_close(&scalar, &simd, "matmul_nt");
    }

    #[test]
    fn zero_dimensions_are_safe() {
        let mut out = vec![0.0f32; 0];
        matmul(&[], 0, 3, &[0.0; 9], 3, &mut out);
        matmul_nt(&[], 0, 4, &[0.0; 8], 2, &mut out);
        let mut out1 = vec![7.0f32; 2];
        // k = 0: every element is an empty sum
        matmul_nt(&[], 1, 0, &[], 2, &mut out1);
        assert_eq!(out1, [0.0, 0.0]);
    }

    #[test]
    fn nan_propagation_matches_scalar() {
        let (m, k, n) = (2, 9, 5);
        let mut a = wavy(m * k, 0.2);
        a[3] = f32::NAN;
        let b = wavy(k * n, 0.3);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul(&a, m, k, &b, n, &mut simd));
        for (s, v) in scalar.iter().zip(&simd) {
            assert_eq!(s.is_nan(), v.is_nan(), "NaN pattern must match");
        }
    }

    #[test]
    fn kernel_mode_table_is_complete() {
        let modes = kernel_modes();
        assert_eq!(modes.len(), 6);
        for (kernel, mode) in modes {
            assert!(
                *mode == "bitwise" || *mode == "ulp",
                "{kernel}: unknown mode {mode}"
            );
        }
    }

    fn quant_inputs(m: usize, k: usize, n: usize) -> (Vec<u8>, Vec<i8>) {
        let a: Vec<u8> = (0..m * k).map(|i| ((i * 37 + 11) % 128) as u8).collect();
        let b: Vec<i8> = (0..n * k)
            .map(|i| (((i * 53 + 7) % 255) as i32 - 127) as i8)
            .collect();
        (a, b)
    }

    #[test]
    fn int8_backends_agree_bitwise() {
        // awkward shapes: k not a multiple of 32, n not a multiple of 4
        for (m, k, n) in [(1, 27, 8), (5, 72, 16), (3, 160, 21), (8, 512, 128), (2, 33, 5)] {
            let (a, b) = quant_inputs(m, k, n);
            let mut scalar = vec![0i32; m * n];
            let mut simd = vec![0i32; m * n];
            with_backend(KernelBackend::Scalar, || {
                gemm_nt_i8(&a, m, k, &b, n, &mut scalar)
            });
            with_backend(detected(), || gemm_nt_i8(&a, m, k, &b, n, &mut simd));
            assert_eq!(scalar, simd, "gemm_nt_i8 {m}x{k}x{n} diverged");
        }
    }

    #[test]
    fn requant_backends_agree_bitwise() {
        // column counts on and off the 8-lane grid, both relu/zp variants
        for (rows, out) in [(7usize, 8usize), (5, 16), (3, 21), (2, 3), (4, 32)] {
            let acc: Vec<i32> = (0..rows * out)
                .map(|i| (i as i32 * 917) % 20001 - 10000)
                .collect();
            let zp_corr: Vec<i32> = (0..out).map(|i| (i as i32 * 13) - 40).collect();
            let s_out: Vec<f32> = (0..out).map(|i| 0.0003 + i as f32 * 1.7e-5).collect();
            let b_out: Vec<f32> = (0..out).map(|i| (i as f32 - 4.0) * 0.02).collect();
            for fuse_relu in [false, true] {
                for zp_out in [0.0f32, 64.0] {
                    let mut scalar = vec![0u8; rows * out];
                    let mut simd = vec![0u8; rows * out];
                    with_backend(KernelBackend::Scalar, || {
                        requant_rows_u8(&acc, &zp_corr, &s_out, &b_out, fuse_relu, zp_out, &mut scalar)
                    });
                    with_backend(detected(), || {
                        requant_rows_u8(&acc, &zp_corr, &s_out, &b_out, fuse_relu, zp_out, &mut simd)
                    });
                    assert_eq!(scalar, simd, "requant {rows}x{out} relu={fuse_relu} diverged");
                }
            }
        }
    }

    #[test]
    fn quantize_backends_agree_bitwise() {
        let src: Vec<f32> = (0..1003)
            .map(|i| ((i * 7 + 3) as f32 * 0.037).sin() * 3.0)
            .collect();
        for (inv, zp) in [(127.0f32 / 3.0, 0.0f32), (63.0 / 3.0, 64.0)] {
            let mut scalar = vec![0u8; src.len()];
            let mut simd = vec![0u8; src.len()];
            with_backend(KernelBackend::Scalar, || {
                quantize_f32_u8(&src, inv, zp, &mut scalar)
            });
            with_backend(detected(), || quantize_f32_u8(&src, inv, zp, &mut simd));
            assert_eq!(scalar, simd, "quantize zp={zp} diverged");
            // every code stays in range and saturates sanely
            assert!(scalar.iter().all(|&c| c <= 127));
        }
    }

    #[test]
    fn int8_matches_exact_reference() {
        let (m, k, n) = (3, 40, 6);
        let (a, b) = quant_inputs(m, k, n);
        let mut out = vec![0i32; m * n];
        gemm_nt_i8(&a, m, k, &b, n, &mut out);
        for i in 0..m {
            for j in 0..n {
                let exact: i64 = (0..k)
                    .map(|kk| i64::from(a[i * k + kk]) * i64::from(b[j * k + kk]))
                    .sum();
                assert_eq!(i64::from(out[i * n + j]), exact, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn int8_zero_dimensions_are_safe() {
        let mut out = vec![0i32; 0];
        gemm_nt_i8(&[], 0, 3, &[0i8; 9], 3, &mut out);
        let mut out1 = vec![7i32; 2];
        // k = 0: every element is an empty sum
        gemm_nt_i8(&[], 1, 0, &[], 2, &mut out1);
        assert_eq!(out1, [0, 0]);
    }

    #[test]
    fn int8_saturating_extremes_stay_exact() {
        // the worst legal pair: a = 127 everywhere against ±127 weights
        let (m, k, n) = (2, 64, 3);
        let a = vec![127u8; m * k];
        let b: Vec<i8> = (0..n * k).map(|i| if i % 2 == 0 { 127 } else { -127 }).collect();
        let mut scalar = vec![0i32; m * n];
        let mut simd = vec![0i32; m * n];
        with_backend(KernelBackend::Scalar, || {
            gemm_nt_i8(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || gemm_nt_i8(&a, m, k, &b, n, &mut simd));
        assert_eq!(scalar, simd);
    }
}
