//! Runtime-dispatched SIMD kernels for the crate's `f32` hot paths.
//!
//! Two backends implement each kernel:
//!
//! * **scalar** — the original portable loops, unchanged, so
//!   `ICOIL_FORCE_SCALAR=1` reproduces pre-SIMD results bit-for-bit;
//! * **avx2** — x86-64 AVX2/FMA `f32x8` lanes, selected at runtime when
//!   the CPU reports both `avx2` and `fma`.
//!
//! # Determinism contract
//!
//! Each kernel declares a conformance *mode* (see [`kernel_modes`]):
//!
//! * `"bitwise"` — the SIMD path performs the same floating-point
//!   operations in the same order as the scalar path (pure data movement
//!   or lane-independent updates), so both backends agree bit-for-bit.
//! * `"ulp"` — FMA contraction and lane-split reductions reorder
//!   roundings, so backends agree only to a small relative tolerance.
//!   Crucially, each *output element's* value is still a pure function of
//!   its own inputs on a given backend: lane tiling and batch width never
//!   leak into an element's accumulation order, preserving the
//!   batched-vs-single and worker-count bit-identity contracts *within*
//!   a backend.
//!
//! Dispatch is process-wide (cached on first use, honoring
//! `ICOIL_FORCE_SCALAR=1`) with a thread-local override
//! ([`with_backend`]) so differential tests can compare both backends in
//! one process.

// This module is the one place in the crate allowed to use `unsafe`: the
// AVX2 kernels require `core::arch` intrinsics, which are only callable
// from `#[target_feature]` functions guarded by runtime detection.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

/// Which kernel implementation services the f32 hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar loops (the pre-SIMD reference path).
    Scalar,
    /// x86-64 AVX2 + FMA `f32x8` lanes.
    Avx2,
}

impl KernelBackend {
    /// The backend's stable label, as recorded in bench JSON
    /// (`"scalar"` / `"avx2"`).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

fn detect() -> KernelBackend {
    if std::env::var("ICOIL_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        return KernelBackend::Avx2;
    }
    KernelBackend::Scalar
}

/// The process-wide backend chosen at first use: scalar when
/// `ICOIL_FORCE_SCALAR=1`, otherwise the best the CPU supports.
pub fn detected() -> KernelBackend {
    static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

thread_local! {
    static OVERRIDE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// The backend the *current thread* will use: a [`with_backend`] override
/// when one is active, the process-wide [`detected`] backend otherwise.
pub fn active() -> KernelBackend {
    OVERRIDE.with(Cell::get).unwrap_or_else(detected)
}

/// The active backend's label (`"avx2"` / `"scalar"`), for bench
/// metadata.
pub fn dispatch_target() -> &'static str {
    active().label()
}

/// Runs `f` with the current thread's kernels pinned to `backend`,
/// restoring the previous dispatch afterwards (also on panic), so
/// differential tests can compare scalar and SIMD results in-process.
pub fn with_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

/// Per-kernel conformance modes: `(kernel, mode)` where mode is
/// `"bitwise"` (backends agree bit-for-bit) or `"ulp"` (tolerance-bounded
/// agreement; FMA/lane reductions reorder roundings). See the module docs
/// for what each mode guarantees.
pub fn kernel_modes() -> &'static [(&'static str, &'static str)] {
    &[
        ("matmul_f32", "ulp"),
        ("matmul_nt_f32", "ulp"),
        ("im2col_f32", "bitwise"),
    ]
}

/// `out[m×n] = a[m×k] · b[k×n]`, row-major. `out` is fully overwritten.
///
/// Both backends accumulate each output element over `k` in ascending
/// order and skip `a == 0.0` entries, so an element's value depends only
/// on its own row of `a` and column of `b` — never on the tiling.
///
/// # Panics
///
/// Panics (in debug builds) when the slice lengths disagree with the
/// dimensions.
pub fn matmul(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match active() {
        KernelBackend::Scalar => matmul_scalar(a, m, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backend is only ever selected after runtime
        // detection of avx2+fma (or by an explicit test override on a
        // machine where detection already succeeded).
        KernelBackend::Avx2 => unsafe { matmul_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => matmul_scalar(a, m, k, b, n, out),
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ`, row-major. `out` is fully overwritten.
///
/// Each output element is an independent dot product over `k`, so the
/// result row for `a`'s row `i` is identical whatever the batch width
/// `m` — the property the serve IL micro-batch relies on.
pub fn matmul_nt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    match active() {
        KernelBackend::Scalar => matmul_nt_scalar(a, m, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `matmul` — avx2+fma verified before dispatch.
        KernelBackend::Avx2 => unsafe { matmul_nt_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Avx2 => matmul_nt_scalar(a, m, k, b, n, out),
    }
}

/// The pre-SIMD column-blocked matmul, kept verbatim as the scalar
/// reference: a panel of `b` columns stays in cache across all rows of
/// `a`, each element accumulating over `k` in ascending order.
fn matmul_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    const BLOCK: usize = 128;
    out.fill(0.0);
    let mut jb = 0;
    while jb < n {
        let je = (jb + BLOCK).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n + jb..i * n + je];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + jb..kk * n + je];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        jb = je;
    }
}

/// The pre-SIMD per-element dot product, kept verbatim as the scalar
/// reference.
fn matmul_nt_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    out.fill(0.0);
    // Register-tiled core: a 4-row × 16-column tile of `out` lives in
    // eight ymm accumulators across the whole k loop, so each k step is
    // two panel loads plus eight independent FMA chains — enough to keep
    // both FMA ports busy instead of round-tripping `out` through L1 on
    // every k step. Per element the math is unchanged: one FMA per
    // nonzero `a` entry, k ascending, so the tiling never leaks into a
    // value and row results are independent of the batch height `m`.
    const NR: usize = 16;
    const MR: usize = 4;
    let n_main = n - n % NR;
    let m_main = m - m % MR;
    let mut jb = 0;
    while jb < n_main {
        let mut ib = 0;
        while ib < m_main {
            // SAFETY: ib + MR <= m and jb + NR <= n, so every a/b/out
            // index below is in bounds.
            unsafe {
                let bp = b.as_ptr().add(jb);
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for kk in 0..k {
                    let brow = bp.add(kk * n);
                    let b0 = _mm256_loadu_ps(brow);
                    let b1 = _mm256_loadu_ps(brow.add(8));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = *a.get_unchecked((ib + r) * k + kk);
                        if av == 0.0 {
                            continue;
                        }
                        let va = _mm256_set1_ps(av);
                        accr[0] = _mm256_fmadd_ps(va, b0, accr[0]);
                        accr[1] = _mm256_fmadd_ps(va, b1, accr[1]);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let op = out.as_mut_ptr().add((ib + r) * n + jb);
                    _mm256_storeu_ps(op, accr[0]);
                    _mm256_storeu_ps(op.add(8), accr[1]);
                }
            }
            ib += MR;
        }
        // Row tail (m % MR): one row at a time, accumulators still held
        // in registers across k — the same per-element op sequence as
        // the 4-row tile.
        for i in m_main..m {
            // SAFETY: i < m and jb + NR <= n.
            unsafe {
                let bp = b.as_ptr().add(jb);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                for kk in 0..k {
                    let av = *a.get_unchecked(i * k + kk);
                    if av == 0.0 {
                        continue;
                    }
                    let brow = bp.add(kk * n);
                    let va = _mm256_set1_ps(av);
                    acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
                    acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(8)), acc1);
                }
                let op = out.as_mut_ptr().add(i * n + jb);
                _mm256_storeu_ps(op, acc0);
                _mm256_storeu_ps(op.add(8), acc1);
            }
        }
        jb += NR;
    }
    // Column tail (n % NR): stream the leftover columns per (i, k) with
    // the same fmadd lane semantics (8-lane vectors, then `mul_add` for
    // the rest — both compile to vfmadd, so tail columns see the same
    // rounding as tiled ones).
    if n_main < n {
        let span = n - n_main;
        let lanes = span - span % 8;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + n_main..(kk + 1) * n];
                let out_row = &mut out[i * n + n_main..(i + 1) * n];
                let va = _mm256_set1_ps(av);
                let mut j = 0;
                while j < lanes {
                    // SAFETY: j + 8 <= lanes <= span == both slice lengths.
                    let vb = unsafe { _mm256_loadu_ps(b_row.as_ptr().add(j)) };
                    let vo = unsafe { _mm256_loadu_ps(out_row.as_ptr().add(j)) };
                    let fused = _mm256_fmadd_ps(va, vb, vo);
                    unsafe { _mm256_storeu_ps(out_row.as_mut_ptr().add(j), fused) };
                    j += 8;
                }
                for j in lanes..span {
                    out_row[j] = av.mul_add(b_row[j], out_row[j]);
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_nt_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let lanes = k - k % 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = _mm256_setzero_ps();
            let mut kk = 0;
            while kk < lanes {
                // SAFETY: kk + 8 <= lanes <= k == both slice lengths.
                let va = unsafe { _mm256_loadu_ps(a_row.as_ptr().add(kk)) };
                let vb = unsafe { _mm256_loadu_ps(b_row.as_ptr().add(kk)) };
                acc = _mm256_fmadd_ps(va, vb, acc);
                kk += 8;
            }
            // Fixed-order horizontal sum, then the scalar tail — the
            // same reduction tree for every (i, j), independent of m, n.
            let lo = _mm256_castps256_ps128(acc);
            let hi = _mm256_extractf128_ps(acc, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            let mut sum = _mm_cvtss_f32(s);
            for kk in lanes..k {
                sum = a_row[kk].mul_add(b_row[kk], sum);
            }
            out[i * n + j] = sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 7 + 3) as f32 * scale).sin()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-5 * x.abs().max(1.0),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let before = active();
        with_backend(KernelBackend::Scalar, || {
            assert_eq!(active(), KernelBackend::Scalar);
            assert_eq!(dispatch_target(), "scalar");
        });
        assert_eq!(active(), before);
    }

    #[test]
    fn override_survives_panic() {
        let before = active();
        let caught = std::panic::catch_unwind(|| {
            with_backend(KernelBackend::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active(), before, "override must unwind with the panic");
    }

    #[test]
    fn backends_agree_on_matmul_within_tolerance() {
        // deliberately awkward: k and n not multiples of 8
        let (m, k, n) = (5, 13, 21);
        let a = wavy(m * k, 0.137);
        let b = wavy(k * n, 0.219);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul(&a, m, k, &b, n, &mut simd));
        assert_close(&scalar, &simd, "matmul");
    }

    #[test]
    fn backends_agree_on_matmul_nt_within_tolerance() {
        let (m, k, n) = (7, 19, 9);
        let a = wavy(m * k, 0.091);
        let b = wavy(n * k, 0.173);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul_nt(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul_nt(&a, m, k, &b, n, &mut simd));
        assert_close(&scalar, &simd, "matmul_nt");
    }

    #[test]
    fn zero_dimensions_are_safe() {
        let mut out = vec![0.0f32; 0];
        matmul(&[], 0, 3, &[0.0; 9], 3, &mut out);
        matmul_nt(&[], 0, 4, &[0.0; 8], 2, &mut out);
        let mut out1 = vec![7.0f32; 2];
        // k = 0: every element is an empty sum
        matmul_nt(&[], 1, 0, &[], 2, &mut out1);
        assert_eq!(out1, [0.0, 0.0]);
    }

    #[test]
    fn nan_propagation_matches_scalar() {
        let (m, k, n) = (2, 9, 5);
        let mut a = wavy(m * k, 0.2);
        a[3] = f32::NAN;
        let b = wavy(k * n, 0.3);
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        with_backend(KernelBackend::Scalar, || {
            matmul(&a, m, k, &b, n, &mut scalar)
        });
        with_backend(detected(), || matmul(&a, m, k, &b, n, &mut simd));
        for (s, v) in scalar.iter().zip(&simd) {
            assert_eq!(s.is_nan(), v.is_nan(), "NaN pattern must match");
        }
    }

    #[test]
    fn kernel_mode_table_is_complete() {
        let modes = kernel_modes();
        assert_eq!(modes.len(), 3);
        for (kernel, mode) in modes {
            assert!(
                *mode == "bitwise" || *mode == "ulp",
                "{kernel}: unknown mode {mode}"
            );
        }
    }
}
