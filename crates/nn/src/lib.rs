//! From-scratch neural-network library for the iCOIL imitation-learning
//! module.
//!
//! The paper's IL DNN (§IV-A) is a feature-extraction network of three
//! convolution + ReLU + max-pool blocks followed by a state-action network
//! of four fully-connected layers and a softmax. This crate implements
//! exactly the pieces needed to train and run that architecture — nothing
//! else — with reverse-mode autodiff hand-derived per layer:
//!
//! * [`Tensor`] — dense row-major `f32` tensors;
//! * [`layer`] — `Dense`, `Conv2d` (im2col), `MaxPool2d`, `ReLU`,
//!   `Flatten`;
//! * [`Network`] — a sequential container with forward/backward;
//! * [`loss`] — softmax cross-entropy (eq. 3) and accuracy;
//! * [`optim`] — SGD with momentum and Adam;
//! * [`data`] — an in-memory classification dataset with seeded
//!   mini-batch shuffling.
//!
//! Determinism: initialization and shuffling take explicit seeds; a
//! training run is a pure function of `(dataset, seed, hyperparameters)`.
//!
//! # Example
//!
//! ```
//! use icoil_nn::{Network, Tensor, layer::LayerKind, loss, optim::{Sgd, Optimizer}};
//!
//! // Learn XOR with a tiny MLP.
//! let mut net = Network::new(vec![
//!     LayerKind::dense(2, 8, 1),
//!     LayerKind::relu(),
//!     LayerKind::dense(8, 2, 2),
//! ]);
//! let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
//! let y = [0usize, 1, 1, 0];
//! let mut opt = Sgd::new(0.5, 0.9);
//! for _ in 0..500 {
//!     let logits = net.forward(&x, true);
//!     let (_, grad) = loss::cross_entropy(&logits, &y);
//!     net.backward(&grad);
//!     opt.step(&mut net);
//!     net.zero_grad();
//! }
//! let logits = net.forward(&x, false);
//! assert_eq!(loss::accuracy(&logits, &y), 1.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod data;
pub mod init;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod quant;
pub mod simd;
pub mod tensor;

pub use data::Dataset;
pub use layer::InferScratch;
pub use network::{InferBuffers, Network};
pub use quant::{ActQuant, QuantScratch, QuantizedNetwork};
pub use simd::KernelBackend;
pub use tensor::Tensor;
