//! Sequential network container.

use crate::layer::{InferScratch, LayerKind};
use crate::loss::{softmax, softmax_in_place};
use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Reusable activation buffers for the allocation-free inference path
/// ([`Network::infer_logits`] / [`Network::infer_proba`]).
///
/// Holds two ping-pong activation tensors plus per-layer scratch. The
/// buffers grow to the largest activation the network produces during the
/// first call and are reused verbatim afterwards, so steady-state
/// inference performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct InferBuffers {
    pub(crate) ping: Tensor,
    pub(crate) pong: Tensor,
    scratch: InferScratch,
}

impl InferBuffers {
    /// Creates empty buffers; they are sized lazily on first use.
    pub fn new() -> Self {
        InferBuffers::default()
    }
}

/// A sequential feed-forward network: the paper's IL DNN is an instance
/// (three conv+ReLU+pool blocks, flatten, four dense layers).
///
/// # Example
///
/// ```
/// use icoil_nn::{Network, Tensor, layer::LayerKind};
///
/// let mut net = Network::new(vec![
///     LayerKind::dense(4, 8, 0),
///     LayerKind::relu(),
///     LayerKind::dense(8, 3, 1),
/// ]);
/// let x = Tensor::zeros(vec![2, 4]);
/// let probs = net.predict_proba(&x);
/// assert_eq!(probs.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<LayerKind>,
}

impl Network {
    /// Builds a network from a layer stack.
    pub fn new(layers: Vec<LayerKind>) -> Self {
        Network { layers }
    }

    /// The paper's IL architecture (§IV-A): three convolution blocks
    /// (conv 3×3 → ReLU → max-pool 2×2) followed by four fully-connected
    /// layers ending in `classes` logits, with dropout in the FC stack.
    /// `input` is `(channels, height, width)`; height and width must be
    /// divisible by 8.
    ///
    /// Dropout is not in the paper's layer list, but the paper grounds
    /// its uncertainty signal in Kendall & Gal \[19\] — dropout-based
    /// Bayesian uncertainty — and without it the softmax collapses to
    /// near-zero entropy, starving the HSA of its signal.
    ///
    /// # Panics
    ///
    /// Panics when height or width is not divisible by 8.
    pub fn il_architecture(input: (usize, usize, usize), classes: usize, seed: u64) -> Self {
        let (c, h, w) = input;
        assert!(
            h % 8 == 0 && w % 8 == 0,
            "IL architecture pools by 8; height and width must be divisible by 8"
        );
        let flat = 32 * (h / 8) * (w / 8);
        Network::new(vec![
            LayerKind::conv2d(c, 8, 3, seed),
            LayerKind::relu(),
            LayerKind::maxpool2d(2),
            LayerKind::conv2d(8, 16, 3, seed.wrapping_add(1)),
            LayerKind::relu(),
            LayerKind::maxpool2d(2),
            LayerKind::conv2d(16, 32, 3, seed.wrapping_add(2)),
            LayerKind::relu(),
            LayerKind::maxpool2d(2),
            LayerKind::flatten(),
            LayerKind::dense(flat, 128, seed.wrapping_add(3)),
            LayerKind::relu(),
            LayerKind::dropout(0.25, seed.wrapping_add(7)),
            LayerKind::dense(128, 64, seed.wrapping_add(4)),
            LayerKind::relu(),
            LayerKind::dropout(0.25, seed.wrapping_add(8)),
            LayerKind::dense(64, 32, seed.wrapping_add(5)),
            LayerKind::relu(),
            LayerKind::dense(32, classes, seed.wrapping_add(6)),
        ])
    }

    /// The layer stack.
    pub fn layers_mut(&mut self) -> &mut [LayerKind] {
        &mut self.layers
    }

    /// Read-only view of the layer stack (the quantizer walks it).
    pub(crate) fn layers(&self) -> &[LayerKind] {
        &self.layers
    }

    /// Forward pass producing logits. `train = true` caches activations
    /// for [`Network::backward`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    /// Forward pass followed by row-wise softmax.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let logits = self.forward(x, false);
        softmax(&logits)
    }

    /// Runs the inference-only pipeline; returns `true` when the result
    /// landed in `buf.ping`, `false` for `buf.pong`.
    fn run_infer(&self, x: &Tensor, buf: &mut InferBuffers) -> bool {
        buf.ping.copy_from(x);
        self.run_layers(buf)
    }

    /// Ping-pongs the already-staged `buf.ping` input through the layer
    /// stack; returns `true` when the result landed in `buf.ping`.
    fn run_layers(&self, buf: &mut InferBuffers) -> bool {
        let mut in_ping = true;
        for layer in &self.layers {
            if in_ping {
                layer.infer_into(&buf.ping, &mut buf.pong, &mut buf.scratch);
            } else {
                layer.infer_into(&buf.pong, &mut buf.ping, &mut buf.scratch);
            }
            in_ping = !in_ping;
        }
        in_ping
    }

    /// Inference over a stacked micro-batch: `samples` are `n` flattened
    /// inputs of identical shape `sample_shape` (e.g. `[channels, h, w]`
    /// BEV images); they are staged into the internal ping buffer as one
    /// `[n, ...sample_shape]` batch, run through the same layer loop as
    /// [`Network::infer_logits`], and the `[n, classes]` logits are
    /// written into `out`.
    ///
    /// Every layer in the inference path treats batch rows independently
    /// with a fixed per-row accumulation order — convolutions and pooling
    /// loop per sample, dense outputs are independent dot products,
    /// dropout is the identity at inference — so row `i` of `out` is
    /// bit-identical to `infer_logits` on sample `i` alone. The
    /// conformance harness (`batched_single_il`) holds the two paths to
    /// exactly that standard.
    ///
    /// Allocation-free after warm-up: activations live in `buf` and `out`
    /// reuses its own storage once grown.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, when a sample's length does not match
    /// `sample_shape`, or when `sample_shape` has more than 7 axes.
    pub fn forward_batch_into(
        &self,
        samples: &[&[f32]],
        sample_shape: &[usize],
        buf: &mut InferBuffers,
        out: &mut Tensor,
    ) {
        assert!(!samples.is_empty(), "forward_batch_into needs at least one sample");
        assert!(sample_shape.len() <= 7, "sample rank exceeds 7");
        let sample_len: usize = sample_shape.iter().product();
        // fixed-size shape scratch keeps this path heap-allocation-free
        let mut shape = [0usize; 8];
        shape[0] = samples.len();
        shape[1..=sample_shape.len()].copy_from_slice(sample_shape);
        buf.ping.resize(&shape[..=sample_shape.len()]);
        for (i, sample) in samples.iter().enumerate() {
            assert_eq!(
                sample.len(),
                sample_len,
                "sample {i} does not match sample_shape"
            );
            buf.ping.data_mut()[i * sample_len..(i + 1) * sample_len].copy_from_slice(sample);
        }
        if self.run_layers(buf) {
            out.copy_from(&buf.ping);
        } else {
            out.copy_from(&buf.pong);
        }
    }

    /// Inference-only forward pass producing logits into reusable
    /// buffers: bit-identical to `forward(x, false)` but performs no heap
    /// allocation once `buf` has warmed up (and caches nothing, so it
    /// takes `&self`).
    pub fn infer_logits<'a>(&self, x: &Tensor, buf: &'a mut InferBuffers) -> &'a Tensor {
        if self.run_infer(x, buf) {
            &buf.ping
        } else {
            &buf.pong
        }
    }

    /// [`Network::infer_logits`] followed by an in-place row-wise
    /// softmax — the allocation-free counterpart of
    /// [`Network::predict_proba`].
    pub fn infer_proba<'a>(&self, x: &Tensor, buf: &'a mut InferBuffers) -> &'a Tensor {
        if self.run_infer(x, buf) {
            softmax_in_place(&mut buf.ping);
            &buf.ping
        } else {
            softmax_in_place(&mut buf.pong);
            &buf.pong
        }
    }

    /// Predicted class per batch row.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, false).argmax_rows()
    }

    /// Backward pass from a loss gradient; accumulates parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics when no training-mode forward pass preceded it.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Mutable (parameter, gradient) pairs across all layers, stable
    /// order.
    pub fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_grads())
            .collect()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.num_params()).sum()
    }

    /// Serializes the network (weights only, no caches) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("network serializes")
    }

    /// Restores a network from [`Network::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn il_architecture_shapes() {
        let mut net = Network::il_architecture((2, 32, 32), 21, 0);
        let x = Tensor::zeros(vec![1, 2, 32, 32]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[1, 21]);
        assert!(net.num_params() > 50_000);
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn il_architecture_validates_dims() {
        let _ = Network::il_architecture((1, 30, 30), 5, 0);
    }

    #[test]
    fn probabilities_on_simplex() {
        let mut net = Network::il_architecture((1, 16, 16), 7, 1);
        let x = crate::init::uniform(vec![3, 1, 16, 16], 0.0, 1.0, 2);
        let p = net.predict_proba(&x);
        for i in 0..3 {
            let row = &p.data()[i * 7..(i + 1) * 7];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        // two gaussian-ish blobs in 2-D
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let t = i as f32 * 0.1;
            xs.extend_from_slice(&[1.0 + t.sin() * 0.1, 1.0 + t.cos() * 0.1]);
            ys.push(0usize);
            xs.extend_from_slice(&[-1.0 - t.sin() * 0.1, -1.0 - t.cos() * 0.1]);
            ys.push(1usize);
        }
        let x = Tensor::from_vec(vec![40, 2], xs).unwrap();
        let mut net = Network::new(vec![
            LayerKind::dense(2, 8, 3),
            LayerKind::relu(),
            LayerKind::dense(8, 2, 4),
        ]);
        let mut opt = Sgd::new(0.1, 0.0);
        let (loss0, _) = loss::cross_entropy(&net.forward(&x, false), &ys);
        for _ in 0..100 {
            let logits = net.forward(&x, true);
            let (_, grad) = loss::cross_entropy(&logits, &ys);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
        }
        let (loss1, _) = loss::cross_entropy(&net.forward(&x, false), &ys);
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
        assert_eq!(loss::accuracy(&net.forward(&x, false), &ys), 1.0);
    }

    #[test]
    fn infer_path_matches_forward_bitwise() {
        let mut net = Network::il_architecture((2, 16, 16), 21, 4);
        let x = crate::init::uniform(vec![2, 2, 16, 16], 0.0, 1.0, 5);
        let logits = net.forward(&x, false);
        let mut buf = InferBuffers::new();
        assert_eq!(logits.data(), net.infer_logits(&x, &mut buf).data());
        let probs = net.predict_proba(&x);
        assert_eq!(probs.data(), net.infer_proba(&x, &mut buf).data());
        // warm buffers must not change the result
        assert_eq!(probs.data(), net.infer_proba(&x, &mut buf).data());
        // and a different input through the same buffers stays correct
        let x2 = crate::init::uniform(vec![1, 2, 16, 16], -1.0, 1.0, 6);
        let probs2 = net.predict_proba(&x2);
        assert_eq!(probs2.data(), net.infer_proba(&x2, &mut buf).data());
    }

    #[test]
    fn batched_rows_match_single_sample_inference_bitwise() {
        let mut net = Network::il_architecture((2, 16, 16), 21, 4);
        let sample_shape = [2usize, 16, 16];
        let sample_len: usize = sample_shape.iter().product();
        let stacked = crate::init::uniform(vec![16, 2, 16, 16], -1.0, 1.0, 7);
        let mut batch_buf = InferBuffers::new();
        let mut single_buf = InferBuffers::new();
        let mut out = Tensor::default();
        for n in [1usize, 2, 7, 16] {
            let samples: Vec<&[f32]> = (0..n)
                .map(|i| &stacked.data()[i * sample_len..(i + 1) * sample_len])
                .collect();
            net.forward_batch_into(&samples, &sample_shape, &mut batch_buf, &mut out);
            assert_eq!(out.shape(), &[n, 21]);
            for (i, sample) in samples.iter().enumerate() {
                let mut x = Tensor::zeros(vec![1, 2, 16, 16]);
                x.data_mut().copy_from_slice(sample);
                let row = &out.data()[i * 21..(i + 1) * 21];
                assert_eq!(
                    row,
                    net.infer_logits(&x, &mut single_buf).data(),
                    "batch {n} row {i} diverged from single-sample inference"
                );
                assert_eq!(
                    row,
                    net.forward(&x, false).data(),
                    "batch {n} row {i} diverged from forward()"
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_inference() {
        let mut net = Network::il_architecture((1, 16, 16), 5, 9);
        let x = crate::init::uniform(vec![2, 1, 16, 16], 0.0, 1.0, 10);
        let y1 = net.forward(&x, false);
        let mut back = Network::from_json(&net.to_json()).unwrap();
        let y2 = back.forward(&x, false);
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn gradient_check_full_network() {
        // tiny conv network; verify d loss / d logits propagated to input
        // parameters via finite differences on a few weights
        let mut net = Network::new(vec![
            LayerKind::conv2d(1, 2, 3, 11),
            LayerKind::relu(),
            LayerKind::maxpool2d(2),
            LayerKind::flatten(),
            LayerKind::dense(2 * 2 * 2, 3, 12),
        ]);
        let x = crate::init::uniform(vec![2, 1, 4, 4], -1.0, 1.0, 13);
        let labels = [0usize, 2];

        let logits = net.forward(&x, true);
        let (_, grad) = loss::cross_entropy(&logits, &labels);
        net.backward(&grad);

        // copy analytic grads out
        let analytic: Vec<Vec<f32>> = net
            .params_grads()
            .iter()
            .map(|(_, g)| g.data().to_vec())
            .collect();

        let eps = 1e-2f32;
        let loss_of = |net: &mut Network| {
            let logits = net.forward(&x, false);
            loss::cross_entropy(&logits, &labels).0
        };
        // probe the first few entries of each parameter tensor
        for (pi, grads) in analytic.iter().enumerate() {
            for (k, &analytic_g) in grads.iter().take(3).enumerate() {
                {
                    let mut pg = net.params_grads();
                    pg[pi].0.data_mut()[k] += eps;
                }
                let fp = loss_of(&mut net);
                {
                    let mut pg = net.params_grads();
                    pg[pi].0.data_mut()[k] -= 2.0 * eps;
                }
                let fm = loss_of(&mut net);
                {
                    let mut pg = net.params_grads();
                    pg[pi].0.data_mut()[k] += eps;
                }
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - analytic_g).abs() < 2e-2,
                    "param {pi}[{k}]: numeric {num} vs analytic {analytic_g}"
                );
            }
        }
    }
}
