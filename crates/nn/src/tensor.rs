//! Dense row-major `f32` tensors.

use serde::{Deserialize, Serialize};

/// A dense tensor of `f32` values in row-major order.
///
/// Shapes are dynamic (a `Vec<usize>`); the common cases in this crate are
/// matrices `[rows, cols]` and batched images `[n, c, h, w]`.
///
/// # Example
///
/// ```
/// use icoil_nn::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
/// let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), &[2, 2]);
/// assert_eq!(c.data(), &[4., 5., 10., 11.]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Error returned when a shape does not match the supplied data length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The requested shape.
    pub shape: Vec<usize>,
    /// The supplied element count.
    pub len: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape {:?} requires {} elements but {} were supplied",
            self.shape,
            self.shape.iter().product::<usize>(),
            self.len
        )
    }
}

impl std::error::Error for ShapeError {}

impl Default for Tensor {
    /// An empty `[0]` tensor — a lazily-sized buffer for the `*_into`
    /// methods.
    fn default() -> Self {
        Tensor::zeros(vec![0])
    }
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wraps a data vector with a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len()` does not equal the shape
    /// product.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, ShapeError> {
        if shape.iter().product::<usize>() != data.len() {
            return Err(ShapeError {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the elements (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the elements (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its elements.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape must preserve the element count"
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Number of rows of a matrix (`shape[0]`), or the leading dimension.
    ///
    /// # Panics
    ///
    /// Panics on a 0-dimensional tensor.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Matrix element accessor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D and the indices are in range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at() requires a matrix");
        self.data[r * self.shape[1] + c]
    }

    /// Resizes the tensor in place, reusing the existing allocation when
    /// the capacity suffices. Element values are unspecified afterwards;
    /// callers are expected to overwrite them.
    pub fn resize(&mut self, shape: &[usize]) {
        let n = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(n, 0.0);
    }

    /// Makes this tensor an element-wise copy of `other`, reusing the
    /// existing allocation when the capacity suffices.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.resize(&other.shape);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix product `self · other` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided tensor, which is
    /// resized as needed: repeated products of the same dimensions reuse
    /// the allocation. Results are bit-identical to [`Tensor::matmul`].
    ///
    /// The kernel is dispatched through [`crate::simd`] (AVX2/FMA lanes
    /// when the CPU supports them, the scalar reference otherwise). On
    /// either backend each output element accumulates over `k` in
    /// ascending order, so cache blocking and lane tiling cannot change
    /// the floating-point result of any individual element.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner
    /// dimensions.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.matrix_dims();
        let (k2, n) = other.matrix_dims();
        assert_eq!(k, k2, "matmul inner dimensions must agree");
        out.resize(&[m, n]);
        crate::simd::matmul(&self.data, m, k, &other.data, n, &mut out.data);
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with `self.rows == other.rows`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = self.matrix_dims();
        let (k2, n) = other.matrix_dims();
        assert_eq!(k, k2, "matmul_tn leading dimensions must agree");
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching column counts.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] writing into a caller-provided tensor, which
    /// is resized as needed (no allocation once warm). Each output element
    /// is an independent dot product (on whichever [`crate::simd`] backend
    /// is active), so results are bit-identical to [`Tensor::matmul_nt`]
    /// and a row's values never depend on the batch width.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching column counts.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = self.matrix_dims();
        let (n, k2) = other.matrix_dims();
        assert_eq!(k, k2, "matmul_nt column counts must agree");
        out.resize(&[m, n]);
        crate::simd::matmul_nt(&self.data, m, k, &other.data, n, &mut out.data);
    }

    /// The transposed matrix.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transposed(&self) -> Tensor {
        let (m, n) = self.matrix_dims();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a new tensor with `f` applied element-wise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Index of the maximum element of each row of a matrix.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is a non-empty 2-D matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (m, n) = self.matrix_dims();
        assert!(n > 0, "argmax over empty rows");
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn matrix_dims(&self) -> (usize, usize) {
        assert_eq!(self.shape.len(), 2, "operation requires a 2-D tensor");
        (self.shape[0], self.shape[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn construction_and_shape_errors() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        let z = Tensor::zeros(vec![3, 4]);
        assert_eq!(z.len(), 12);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(vec![2], 7.0);
        assert_eq!(f.data(), &[7.0, 7.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let i = t(vec![2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(vec![3, 1], vec![1., 1., 1.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1]);
        assert_eq!(c.data(), &[6., 15.]);
    }

    #[test]
    fn matmul_into_reuses_dirty_buffer_and_matches() {
        // irrational-ish values so accumulation-order bugs show up in bits
        let a = t(
            vec![3, 4],
            (0..12).map(|i| ((i * 7 + 3) as f32 * 0.137).sin()).collect(),
        );
        let b = t(
            vec![4, 5],
            (0..20).map(|i| ((i * 5 + 1) as f32 * 0.219).cos()).collect(),
        );
        let expected = a.matmul(&b);
        // wrong-shaped buffer full of garbage must be fully overwritten
        let mut out = Tensor::full(vec![7, 2], 3.5);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, expected);

        let expected_nt = a.matmul_nt(&b.transposed());
        let mut out_nt = Tensor::full(vec![1, 1], -9.0);
        a.matmul_nt_into(&b.transposed(), &mut out_nt);
        assert_eq!(out_nt, expected_nt);
        // plain and transposed-B products use different reduction
        // kernels (accumulate-over-k vs dot product), so they agree to
        // rounding, not necessarily bitwise
        for (p, q) in expected.data().iter().zip(expected_nt.data()) {
            assert!((p - q).abs() <= 1e-5 * p.abs().max(1.0), "{p} vs {q}");
        }
    }

    #[test]
    fn matmul_blocking_spans_wide_outputs() {
        // wider than one column block so the tiled loop crosses a block
        // boundary; compare against a naive triple loop
        let (m, k, n) = (3, 5, 300);
        let a = t(
            vec![m, k],
            (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect(),
        );
        let b = t(
            vec![k, n],
            (0..k * n).map(|i| (i as f32 * 0.17).cos()).collect(),
        );
        // the scalar backend IS the naive accumulation order: bitwise
        let c_scalar =
            crate::simd::with_backend(crate::simd::KernelBackend::Scalar, || a.matmul(&b));
        // the dispatched backend may fuse multiply-adds: rounding-close
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                assert_eq!(c_scalar.at(i, j), acc, "scalar element ({i}, {j})");
                let got = c.at(i, j);
                assert!(
                    (got - acc).abs() <= 1e-5 * acc.abs().max(1.0),
                    "element ({i}, {j}): {got} vs {acc}"
                );
            }
        }
    }

    #[test]
    fn resize_and_copy_from_reuse_capacity() {
        let mut buf = Tensor::default();
        buf.resize(&[4, 4]);
        assert_eq!(buf.shape(), &[4, 4]);
        let src = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        buf.copy_from(&src);
        assert_eq!(buf, src);
    }

    #[test]
    fn transposed_variants_agree() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(vec![2, 4], vec![1., 0., 2., 1., 0., 1., 1., 3.]);
        // aᵀ·b via matmul_tn equals explicit transpose
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        assert_eq!(tn, explicit);
        // a·cᵀ via matmul_nt equals explicit transpose
        let c = t(vec![5, 3], (0..15).map(|i| i as f32).collect());
        let nt = a.matmul_nt(&c);
        let explicit = a.matmul(&c.transposed());
        assert_eq!(nt, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = t(vec![2], vec![1., 2.]);
        a.add_assign(&t(vec![2], vec![3., 4.]));
        assert_eq!(a.data(), &[4., 6.]);
        a.scale(0.5);
        assert_eq!(a.data(), &[2., 3.]);
        let m = a.map(|v| v * v);
        assert_eq!(m.data(), &[4., 9.]);
        assert_eq!(m.sum(), 13.0);
    }

    #[test]
    fn argmax_rows_picks_maximum() {
        let a = t(vec![2, 3], vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshaped(vec![3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn bad_reshape_panics() {
        let a = Tensor::zeros(vec![4]);
        let _ = a.reshaped(vec![3]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn bad_matmul_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn finite_check() {
        let mut a = Tensor::zeros(vec![2]);
        assert!(a.is_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(!a.is_finite());
    }
}
