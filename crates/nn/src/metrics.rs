//! Classification metrics beyond plain accuracy.

use crate::Tensor;

/// A confusion matrix over `classes` classes.
///
/// Rows are true labels, columns are predictions.
///
/// # Example
///
/// ```
/// use icoil_nn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.count(0, 1), 1);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((cm.recall(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics for zero classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true label, prediction)` pair.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range labels.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(
            truth < self.classes && prediction < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + prediction] += 1;
    }

    /// Records a whole batch from logits.
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) {
        let preds = logits.argmax_rows();
        assert_eq!(preds.len(), labels.len(), "one label per row");
        for (&t, &p) in labels.iter().zip(&preds) {
            self.record(t, p);
        }
    }

    /// Count for `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth * self.classes + prediction]
    }

    /// Total recorded samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (`NaN` when empty).
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            f64::NAN
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of one class (`NaN` when the class never occurred).
    pub fn recall(&self, class: usize) -> f64 {
        let row: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            f64::NAN
        } else {
            self.count(class, class) as f64 / row as f64
        }
    }

    /// Precision of one class (`NaN` when the class was never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let col: usize = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            f64::NAN
        } else {
            self.count(class, class) as f64 / col as f64
        }
    }

    /// Macro-averaged recall over classes that occurred.
    pub fn macro_recall(&self) -> f64 {
        let vals: Vec<f64> = (0..self.classes)
            .map(|c| self.recall(c))
            .filter(|v| !v.is_nan())
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Renders a compact text table (rows = truth, cols = prediction).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for t in 0..self.classes {
            for p in 0..self.classes {
                out.push_str(&format!("{:6}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_metrics() {
        let mut cm = ConfusionMatrix::new(2);
        // 3 true class 0 (2 right), 2 true class 1 (1 right)
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(1, 0);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.macro_recall() - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_recording_matches_argmax() {
        let logits = Tensor::from_vec(vec![3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&logits, &[0, 1, 1]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
    }

    #[test]
    fn empty_matrix_is_nan() {
        let cm = ConfusionMatrix::new(4);
        assert!(cm.accuracy().is_nan());
        assert!(cm.recall(0).is_nan());
        assert!(cm.precision(0).is_nan());
    }

    #[test]
    fn text_rendering_nonempty() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 1);
        assert!(cm.to_text().contains('1'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
