//! Post-training int8 quantization of the inference path.
//!
//! The quantized lane trades the f32 stack's bitwise reproducibility for
//! ~4× arithmetic density: weights become per-output-channel symmetric
//! int8, activations per-tensor `u8` codes, and every GEMM runs on the
//! [`crate::simd::gemm_nt_i8`] kernel with i32 accumulators. The f32
//! pieces that remain — bias add, requantization, the final logits — keep
//! the numerics well-conditioned, and a calibration pass both picks the
//! activation ranges and *measures* the resulting per-logit error so the
//! caller gets a concrete tolerance ([`QuantizedNetwork::logit_error_bound`])
//! instead of a hope.
//!
//! # Scheme
//!
//! * **Weights** — per output channel, symmetric: `scale_c = amax_c/127`,
//!   codes clamped to `[-127, 127]`. Round-trip error is at most half a
//!   step (`scale_c/2`).
//! * **Activations** — per tensor, unsigned codes in `[0, 127]`. A
//!   calibrated non-negative range (everything downstream of a ReLU) maps
//!   as `scale = amax/127`, zero point 0; a signed range (the BEV speed
//!   plane can be negative when reversing) maps symmetrically around a
//!   zero point of 64 with `scale = max(amax, −amin)/63`. Capping codes
//!   at 127 keeps every `maddubs` i16 pair sum below saturation, which is
//!   what lets the AVX2 kernel stay bit-identical to the scalar one.
//! * **Accumulation** — exact i32 (`k·127·127 ≤ 8.3e6` for the iCOIL CNN,
//!   no overflow), then one f32 requantization per output element:
//!   `(acc − zp·Σw)·(w_scale·act_scale) + bias`, with the trailing ReLU
//!   and the *next* layer's activation quantization fused in, so
//!   activations travel between layers as bytes.
//! * **Max pooling** — runs directly on the `u8` codes: quantization is
//!   monotone, so pooling codes equals quantizing the pooled f32 plane.
//! * **Layout** — byte activations travel channels-last (`[h·w, c]`),
//!   with the weight columns permuted once at calibration time to match.
//!   That turns im2col into a handful of contiguous byte copies per patch
//!   and makes the requantization loop a single linear walk, which is
//!   where the int8 lane's latency win over f32 actually comes from.
//!
//! Calibration is a pure fold over the calibration set (per-tensor
//! min/max), so it is deterministic and independent of frame order.

use crate::layer::{InferScratch, LayerKind};
use crate::network::{InferBuffers, Network};
use crate::simd;
use crate::Tensor;

/// A per-tensor activation quantizer: `code = clamp(round(v/scale) + zp)`
/// into `[0, 127]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Real-value step per code.
    pub scale: f32,
    /// The code representing 0.0 (0 for non-negative tensors, 64 for
    /// signed ones).
    pub zero_point: u8,
}

impl ActQuant {
    /// A quantizer covering the calibrated `[amin, amax]` range.
    ///
    /// Degenerate (all-zero) ranges get a scale of 1.0 so the mapping
    /// stays finite; the codes are all `zero_point` then, which
    /// dequantizes to exactly 0.0.
    pub fn from_range(amin: f32, amax: f32) -> ActQuant {
        let amax = amax.max(0.0);
        if amin >= 0.0 {
            let scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
            ActQuant { scale, zero_point: 0 }
        } else {
            let m = amax.max(-amin);
            let scale = if m > 0.0 { m / 63.0 } else { 1.0 };
            ActQuant { scale, zero_point: 64 }
        }
    }

    /// Quantizes a real value to its `[0, 127]` code (saturating).
    /// Rounding is ties-to-even — the mode that vectorizes to a bare
    /// `vroundps`, and the same mode the requantization hot loops use.
    pub fn quantize(&self, v: f32) -> u8 {
        let q = (v * (1.0 / self.scale)).round_ties_even() + f32::from(self.zero_point);
        q.clamp(0.0, 127.0) as u8
    }

    /// The real value a code represents.
    pub fn dequantize(&self, q: u8) -> f32 {
        (f32::from(q) - f32::from(self.zero_point)) * self.scale
    }
}

/// Symmetric per-row int8 quantization of one weight row; returns the
/// codes and the row scale. Codes saturate at ±127 and round-trip within
/// `scale/2` for in-range weights.
pub fn quantize_weight_row(row: &[f32]) -> (Vec<i8>, f32) {
    let amax = row.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
    let scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
    let codes = row
        .iter()
        .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (codes, scale)
}

/// The real value a weight code represents under its row scale.
pub fn dequantize_weight(q: i8, scale: f32) -> f32 {
    f32::from(q) * scale
}

/// One quantized GEMM (a conv or dense layer's arithmetic core).
#[derive(Debug, Clone, PartialEq)]
struct QuantGemm {
    /// `[out, k_pad]` weight codes, rows zero-padded to `k_pad`.
    w_q: Vec<i8>,
    /// Per-row code sums (the activation zero-point correction term).
    w_row_sum: Vec<i32>,
    /// Per-row weight scales.
    w_scale: Vec<f32>,
    /// f32 biases, applied at requantization.
    bias: Vec<f32>,
    /// Logical reduction length.
    k: usize,
    /// `k` rounded up to a multiple of 32 (one AVX2 maddubs step).
    k_pad: usize,
    /// Output channels / features.
    out: usize,
    /// Quantizer of this layer's input tensor.
    in_q: ActQuant,
    /// Whether the network's next layer is a ReLU (fused here).
    fuse_relu: bool,
    /// Quantizer of the next GEMM's input — `None` for the final layer,
    /// whose outputs stay f32 logits.
    out_q: Option<ActQuant>,
    /// Precomputed `zp_in · Σw` per row (the zero-point correction).
    zp_corr: Vec<i32>,
    /// Per-row output scale: `w_scale·act_scale`, divided by the output
    /// quantizer's step when the result becomes a byte code.
    s_out: Vec<f32>,
    /// Per-row output offset: the bias under the same scaling as `s_out`.
    b_out: Vec<f32>,
}

impl QuantGemm {
    /// Builds the quantized form of one GEMM layer. `perm` (when present)
    /// reorders each weight row before quantization — `row'[j] =
    /// row[perm[j]]` — which is how the f32 channel-major weight layout is
    /// adapted to the channels-last byte activations once and for all.
    fn new(weight: &Tensor, bias: &Tensor, in_q: ActQuant, perm: Option<&[usize]>) -> QuantGemm {
        let out = weight.shape()[0];
        let k = weight.shape()[1];
        let k_pad = if k == 0 { 0 } else { k.div_ceil(32) * 32 };
        let mut w_q = vec![0i8; out * k_pad];
        let mut w_row_sum = vec![0i32; out];
        let mut w_scale = vec![1.0f32; out];
        let mut permuted = vec![0.0f32; k];
        for oc in 0..out {
            let row = &weight.data()[oc * k..(oc + 1) * k];
            let row = match perm {
                Some(perm) => {
                    debug_assert_eq!(perm.len(), k);
                    for (dst, &src_idx) in permuted.iter_mut().zip(perm) {
                        *dst = row[src_idx];
                    }
                    &permuted[..]
                }
                None => row,
            };
            let (codes, scale) = quantize_weight_row(row);
            w_q[oc * k_pad..oc * k_pad + k].copy_from_slice(&codes);
            w_row_sum[oc] = codes.iter().map(|&c| i32::from(c)).sum();
            w_scale[oc] = scale;
        }
        QuantGemm {
            w_q,
            w_row_sum,
            w_scale,
            bias: bias.data().to_vec(),
            k,
            k_pad,
            out,
            in_q,
            fuse_relu: false,
            out_q: None,
            zp_corr: Vec::new(),
            s_out: Vec::new(),
            b_out: Vec::new(),
        }
    }

    /// Precomputes the per-row requantization affine once `out_q` is
    /// wired, so the hot loop is one fused multiply-add per element (no
    /// per-element division).
    fn finalize(&mut self) {
        let zp_in = i32::from(self.in_q.zero_point);
        self.zp_corr = self.w_row_sum.iter().map(|&s| zp_in * s).collect();
        let inv_out = self.out_q.map_or(1.0, |oq| 1.0 / oq.scale);
        self.s_out = self
            .w_scale
            .iter()
            .map(|&ws| ws * self.in_q.scale * inv_out)
            .collect();
        self.b_out = self.bias.iter().map(|&b| b * inv_out).collect();
    }

    /// The scaled requantization value for one accumulator: the real
    /// output when `out_q` is `None`, otherwise the real output divided
    /// by the output step (ready for round-and-offset into a code). The
    /// trailing ReLU is fused (valid under either scaling: the output
    /// step is positive).
    #[inline]
    fn requant(&self, acc: i32, oc: usize) -> f32 {
        let v = (acc - self.zp_corr[oc]) as f32 * self.s_out[oc] + self.b_out[oc];
        if self.fuse_relu {
            v.max(0.0)
        } else {
            v
        }
    }

    /// Requantizes a `[rows, out]` accumulator plane into byte codes in
    /// place-for-place channels-last order, through the dispatched
    /// [`simd::requant_rows_u8`] kernel — this runs once per conv output
    /// element, so it is one of the lane's two hot loops.
    fn requant_rows(&self, acc: &[i32], zp_out: f32, dst: &mut [u8]) {
        simd::requant_rows_u8(
            acc,
            &self.zp_corr,
            &self.s_out,
            &self.b_out,
            self.fuse_relu,
            zp_out,
            dst,
        );
    }
}

/// One step of the compiled quantized pipeline.
#[derive(Debug, Clone, PartialEq)]
enum QuantOp {
    /// im2col + int8 GEMM + fused requant/ReLU/re-quantize.
    Conv {
        g: QuantGemm,
        in_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    },
    /// int8 GEMM over the flat feature vector.
    Dense { g: QuantGemm },
    /// Max pooling directly on the byte codes.
    Pool { size: usize },
}

/// Reusable buffers for the quantized inference path: two ping-pong byte
/// activation buffers, the quantized im2col patch matrix, and the i32
/// accumulator plane. Grows on first use, allocation-free afterwards.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    q_ping: Vec<u8>,
    q_pong: Vec<u8>,
    cols: Vec<u8>,
    acc: Vec<i32>,
}

impl QuantScratch {
    /// Creates empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

fn grow_u8(buf: &mut Vec<u8>, len: usize) -> &mut [u8] {
    if buf.len() < len {
        buf.resize(len, 0);
    }
    &mut buf[..len]
}

/// A calibrated int8 network: the compiled op pipeline plus the measured
/// calibration error statistics.
///
/// Built once with [`QuantizedNetwork::calibrate`]; inference then runs
/// through [`QuantizedNetwork::forward_batch_into`] with the same
/// batched-rows-match-single-sample property as the f32 path (each
/// sample is processed independently).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    ops: Vec<QuantOp>,
    input_q: ActQuant,
    classes: usize,
    error_bound: f32,
    calib_errors: Vec<f32>,
}

impl QuantizedNetwork {
    /// Quantizes `net` against the given calibration frames (each a
    /// `[c, h, w]` tensor, e.g. recorded BEV images).
    ///
    /// Three deterministic passes: (1) run the f32 network over the
    /// frames folding per-tensor activation min/max (order-independent);
    /// (2) quantize the weights and compile the fused op pipeline;
    /// (3) run both paths over the frames, recording per-logit absolute
    /// errors — the source of [`QuantizedNetwork::logit_error_bound`].
    ///
    /// # Panics
    ///
    /// Panics on an empty calibration set, on mismatched frame shapes,
    /// or on a layer sequence outside the conv/pool/dense family the
    /// quantizer supports (a ReLU or flatten anywhere the iCOIL CNN
    /// would not have one).
    pub fn calibrate(net: &Network, frames: &[Tensor]) -> QuantizedNetwork {
        assert!(!frames.is_empty(), "calibration needs at least one frame");
        let sample_shape: Vec<usize> = frames[0].shape().to_vec();
        assert_eq!(sample_shape.len(), 3, "calibration frames must be [c, h, w]");

        // pass 1: fold activation ranges at every GEMM input, plus the
        // network input itself
        let mut ranges: Vec<(f32, f32)> = Vec::new();
        let mut input_range = (f32::INFINITY, f32::NEG_INFINITY);
        for frame in frames {
            assert_eq!(frame.shape(), sample_shape, "calibration frame shape mismatch");
            for &v in frame.data() {
                input_range.0 = input_range.0.min(v);
                input_range.1 = input_range.1.max(v);
            }
            record_gemm_input_ranges(net, frame, &mut ranges);
        }
        let input_q = ActQuant::from_range(input_range.0, input_range.1);

        // pass 2: quantize weights and compile the fused pipeline. The
        // byte activations are channels-last, so conv rows are permuted
        // from [c][ky][kx] to [ky][kx][c], and the first dense layer after
        // the spatial stack gets its columns permuted from [c][y][x] to
        // [y][x][c]; spatial dims are tracked through the walk to build
        // that permutation.
        let mut ops: Vec<QuantOp> = Vec::new();
        let mut gemm_index = 0usize;
        let mut classes = 0usize;
        let mut spatial: Option<(usize, usize, usize)> =
            Some((sample_shape[0], sample_shape[1], sample_shape[2]));
        for layer in net.layers() {
            match layer {
                LayerKind::Conv2d(c) => {
                    let in_q = if gemm_index == 0 {
                        input_q
                    } else {
                        ActQuant::from_range(ranges[gemm_index].0, ranges[gemm_index].1)
                    };
                    let (in_ch, kernel) = (c.in_ch(), c.kernel());
                    let kk = kernel * kernel;
                    let mut perm = vec![0usize; in_ch * kk];
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            for ch in 0..in_ch {
                                perm[(ky * kernel + kx) * in_ch + ch] = ch * kk + ky * kernel + kx;
                            }
                        }
                    }
                    ops.push(QuantOp::Conv {
                        g: QuantGemm::new(c.weight(), c.bias(), in_q, Some(&perm)),
                        in_ch,
                        kernel,
                        stride: c.stride(),
                        padding: c.padding(),
                    });
                    let (_, h, w) = spatial.expect("conv layers need spatial input");
                    spatial = Some((
                        c.weight().shape()[0],
                        c.out_dim(h),
                        c.out_dim(w),
                    ));
                    gemm_index += 1;
                }
                LayerKind::Dense(d) => {
                    let in_q = if gemm_index == 0 {
                        input_q
                    } else {
                        ActQuant::from_range(ranges[gemm_index].0, ranges[gemm_index].1)
                    };
                    classes = d.weight().shape()[0];
                    let perm = spatial.take().map(|(ch, h, w)| {
                        let hw = h * w;
                        let mut perm = vec![0usize; ch * hw];
                        for p in 0..hw {
                            for c in 0..ch {
                                perm[p * ch + c] = c * hw + p;
                            }
                        }
                        perm
                    });
                    ops.push(QuantOp::Dense {
                        g: QuantGemm::new(d.weight(), d.bias(), in_q, perm.as_deref()),
                    });
                    gemm_index += 1;
                }
                LayerKind::MaxPool2d(p) => {
                    let size = p.size();
                    ops.push(QuantOp::Pool { size });
                    let (ch, h, w) = spatial.expect("pool layers need spatial input");
                    spatial = Some((ch, h / size, w / size));
                }
                LayerKind::ReLU(_) => {
                    let g = ops
                        .iter_mut()
                        .rev()
                        .find_map(|op| match op {
                            QuantOp::Conv { g, .. } | QuantOp::Dense { g } => Some(g),
                            QuantOp::Pool { .. } => None,
                        })
                        .expect("ReLU must follow a conv or dense layer");
                    assert!(!g.fuse_relu, "double ReLU is not supported");
                    g.fuse_relu = true;
                }
                // Flatten is a no-op on the flat byte buffer; dropout is
                // the identity at inference.
                LayerKind::Flatten(_) | LayerKind::Dropout(_) => {}
            }
        }
        // wire each GEMM's output quantizer to the next GEMM's input
        // quantizer (max pooling between them commutes with quantization,
        // so the codes can be produced right at the GEMM output)
        let mut next_in_q: Option<ActQuant> = None;
        for op in ops.iter_mut().rev() {
            if let QuantOp::Conv { g, .. } | QuantOp::Dense { g } = op {
                g.out_q = next_in_q;
                next_in_q = Some(g.in_q);
                g.finalize();
            }
        }

        let mut quantized = QuantizedNetwork {
            ops,
            input_q,
            classes,
            error_bound: 0.0,
            calib_errors: Vec::new(),
        };

        // pass 3: measure the per-logit error over the calibration set
        let mut buf = InferBuffers::new();
        let mut scratch = QuantScratch::new();
        let mut q_out = Tensor::default();
        let mut errors: Vec<f32> = Vec::new();
        for frame in frames {
            let f32_logits = f32_reference_logits(net, frame);
            quantized.forward_batch_into(
                &[frame.data()],
                &sample_shape,
                &mut buf,
                &mut scratch,
                &mut q_out,
            );
            for (&a, &b) in f32_logits.data().iter().zip(q_out.data()) {
                errors.push((a - b).abs());
            }
        }
        // sorted so the struct (and the bound) is independent of frame
        // order — the calibration-determinism contract
        errors.sort_by(f32::total_cmp);
        let max_err = errors.last().copied().unwrap_or(0.0);
        quantized.error_bound = max_err * 4.0 + 0.05;
        quantized.calib_errors = errors;
        quantized
    }

    /// Number of output logits per sample.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The calibrated per-logit absolute error tolerance: conformance
    /// holds |int8 − f32| on held-out frames to this bound (the observed
    /// calibration maximum with 4× headroom plus an absolute floor).
    pub fn logit_error_bound(&self) -> f32 {
        self.error_bound
    }

    /// Per-logit absolute errors observed during calibration, ascending.
    pub fn calibration_errors(&self) -> &[f32] {
        &self.calib_errors
    }

    /// The largest per-logit absolute error observed during calibration.
    pub fn calibration_max_error(&self) -> f32 {
        self.calib_errors.last().copied().unwrap_or(0.0)
    }

    /// Quantized inference over a stacked micro-batch, mirroring
    /// [`Network::forward_batch_into`]: `samples` are flattened
    /// `sample_shape` (`[c, h, w]`) inputs, and `out` receives the
    /// `[n, classes]` f32 logits (staged through `buf`'s ping tensor so
    /// the whole path reuses the pre-sized inference buffers).
    ///
    /// Each sample runs the pipeline independently, so row `i` is
    /// bit-identical to a single-sample call on sample `i` — the same
    /// batching contract the f32 lane honors.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, a sample whose length does not match
    /// `sample_shape`, or a `sample_shape` that is not `[c, h, w]`.
    pub fn forward_batch_into(
        &self,
        samples: &[&[f32]],
        sample_shape: &[usize],
        buf: &mut InferBuffers,
        scratch: &mut QuantScratch,
        out: &mut Tensor,
    ) {
        assert!(!samples.is_empty(), "forward_batch_into needs at least one sample");
        assert_eq!(sample_shape.len(), 3, "quantized inference expects [c, h, w] samples");
        let sample_len: usize = sample_shape.iter().product();
        let n = samples.len();
        buf.ping.resize(&[n, self.classes]);
        for (i, sample) in samples.iter().enumerate() {
            assert_eq!(sample.len(), sample_len, "sample {i} does not match sample_shape");
            let logits_start = i * self.classes;
            self.forward_sample(sample, sample_shape, scratch, |oc, v| {
                buf.ping.data_mut()[logits_start + oc] = v;
            });
        }
        out.copy_from(&buf.ping);
    }

    /// Runs one sample through the byte pipeline, handing each final
    /// logit to `emit`.
    fn forward_sample(
        &self,
        sample: &[f32],
        sample_shape: &[usize],
        scratch: &mut QuantScratch,
        mut emit: impl FnMut(usize, f32),
    ) {
        let (mut ch, mut h, mut w) = (sample_shape[0], sample_shape[1], sample_shape[2]);
        // quantize the [c, h, w] input into channels-last [h·w, c] bytes:
        // a vectorized contiguous quantize (same math as
        // `ActQuant::quantize`) into the cols scratch, then a byte
        // interleave of the channel planes
        {
            let inv = 1.0 / self.input_q.scale;
            let zp = f32::from(self.input_q.zero_point);
            let hw = h * w;
            let tmp = grow_u8(&mut scratch.cols, sample.len());
            simd::quantize_f32_u8(sample, inv, zp, tmp);
            let q = grow_u8(&mut scratch.q_ping, sample.len());
            for (p, dst_px) in q.chunks_exact_mut(ch).enumerate() {
                for (c, dst) in dst_px.iter_mut().enumerate() {
                    *dst = tmp[c * hw + p];
                }
            }
        }
        let mut in_ping = true;
        for op in &self.ops {
            match op {
                QuantOp::Conv {
                    g,
                    in_ch,
                    kernel,
                    stride,
                    padding,
                } => {
                    debug_assert_eq!(*in_ch, ch, "conv channel mismatch");
                    let oh = (h + 2 * padding - kernel) / stride + 1;
                    let ow = (w + 2 * padding - kernel) / stride + 1;
                    let m = oh * ow;
                    {
                        let (src_buf, dst_buf) = if in_ping {
                            (&mut scratch.q_ping, &mut scratch.q_pong)
                        } else {
                            (&mut scratch.q_pong, &mut scratch.q_ping)
                        };
                        let src = &src_buf[..ch * h * w];
                        let cols = grow_u8(&mut scratch.cols, m * g.k_pad);
                        im2col_u8(
                            src,
                            ch,
                            h,
                            w,
                            *kernel,
                            *stride,
                            *padding,
                            oh,
                            ow,
                            g.in_q.zero_point,
                            g.k_pad,
                            cols,
                        );
                        if scratch.acc.len() < m * g.out {
                            scratch.acc.resize(m * g.out, 0);
                        }
                        let acc = &mut scratch.acc[..m * g.out];
                        simd::gemm_nt_i8(cols, m, g.k_pad, &g.w_q, g.out, acc);
                        // requantize into channels-last codes for the next
                        // layer — `acc[p][oc]` and `dst[p][oc]` share the
                        // layout, so this is one linear walk (the final
                        // layer is always dense, so a conv output always
                        // has an out_q)
                        let out_q = g.out_q.expect("conv layers always feed another layer");
                        let zp_out = f32::from(out_q.zero_point);
                        let dst = grow_u8(dst_buf, m * g.out);
                        g.requant_rows(acc, zp_out, dst);
                    }
                    ch = g.out;
                    h = oh;
                    w = ow;
                    in_ping = !in_ping;
                }
                QuantOp::Pool { size } => {
                    let (oh, ow) = (h / size, w / size);
                    let (src_buf, dst_buf) = if in_ping {
                        (&mut scratch.q_ping, &mut scratch.q_pong)
                    } else {
                        (&mut scratch.q_pong, &mut scratch.q_ping)
                    };
                    let src = &src_buf[..ch * h * w];
                    let dst = grow_u8(dst_buf, ch * oh * ow);
                    maxpool_u8(src, ch, h, w, *size, oh, ow, dst);
                    h = oh;
                    w = ow;
                    in_ping = !in_ping;
                }
                QuantOp::Dense { g } => {
                    let k = ch * h * w;
                    debug_assert_eq!(k, g.k, "dense input length mismatch");
                    {
                        let src_buf = if in_ping { &scratch.q_ping } else { &scratch.q_pong };
                        let src = &src_buf[..k];
                        // stage into the padded patch buffer (pads at the
                        // input zero point; the padded weight codes are 0)
                        let cols = grow_u8(&mut scratch.cols, g.k_pad);
                        cols.fill(g.in_q.zero_point);
                        cols[..k].copy_from_slice(src);
                        if scratch.acc.len() < g.out {
                            scratch.acc.resize(g.out, 0);
                        }
                        let acc = &mut scratch.acc[..g.out];
                        simd::gemm_nt_i8(cols, 1, g.k_pad, &g.w_q, g.out, acc);
                        match g.out_q {
                            Some(out_q) => {
                                let zp_out = f32::from(out_q.zero_point);
                                let dst_buf = if in_ping {
                                    &mut scratch.q_pong
                                } else {
                                    &mut scratch.q_ping
                                };
                                let dst = grow_u8(dst_buf, g.out);
                                g.requant_rows(acc, zp_out, dst);
                            }
                            None => {
                                for (oc, &a) in acc.iter().enumerate() {
                                    emit(oc, g.requant(a, oc));
                                }
                            }
                        }
                    }
                    ch = g.out;
                    h = 1;
                    w = 1;
                    if g.out_q.is_some() {
                        in_ping = !in_ping;
                    }
                }
            }
        }
    }
}

/// Folds the min/max of every GEMM layer's input over one frame into
/// `ranges` (growing it on first use).
fn record_gemm_input_ranges(net: &Network, frame: &Tensor, ranges: &mut Vec<(f32, f32)>) {
    let mut shape = vec![1];
    shape.extend_from_slice(frame.shape());
    let mut a = Tensor::from_vec(shape, frame.data().to_vec()).expect("frame reshapes");
    let mut b = Tensor::default();
    let mut scratch = InferScratch::new();
    let mut gi = 0usize;
    for layer in net.layers() {
        if matches!(layer, LayerKind::Conv2d(_) | LayerKind::Dense(_)) {
            if ranges.len() <= gi {
                ranges.push((f32::INFINITY, f32::NEG_INFINITY));
            }
            let r = &mut ranges[gi];
            for &v in a.data() {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
            gi += 1;
        }
        layer.infer_into(&a, &mut b, &mut scratch);
        std::mem::swap(&mut a, &mut b);
    }
}

/// The f32 logits for one frame (the calibration error reference).
fn f32_reference_logits(net: &Network, frame: &Tensor) -> Tensor {
    let mut shape = vec![1];
    shape.extend_from_slice(frame.shape());
    let x = Tensor::from_vec(shape, frame.data().to_vec()).expect("frame reshapes");
    let mut buf = InferBuffers::new();
    net.infer_logits(&x, &mut buf).clone()
}

/// Quantized im2col over channels-last bytes, patch-major: row
/// `oy·ow + ox` holds the `k_pad`-wide patch in `[ky][kx][c]` order (the
/// order the quantized conv weights were permuted into), with out-of-image
/// and `k..k_pad` padding positions at the input zero point (the real
/// value 0.0; padded weight codes are 0, so the tail contributes nothing
/// either way).
///
/// Because `kx` and `ix` advance in lockstep and the channel bytes are
/// adjacent, each in-bounds `(patch, ky)` pair is exactly one contiguous
/// byte copy — no per-element bounds checks anywhere on the hot path.
#[allow(clippy::too_many_arguments)]
fn im2col_u8(
    src: &[u8],
    in_ch: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    zero_point: u8,
    k_pad: usize,
    cols: &mut [u8],
) {
    // The `k..k_pad` tail once held the zero point too; now it may keep
    // stale bytes from an earlier layer's patches — always activation
    // codes `<= 127`, and multiplied by the zero weight-code padding, so
    // they can neither reach an output nor saturate a maddubs pair.
    // Skipping the full-plane fill (and filling only patches the padding
    // actually clips) is a measurable win on the 32×32 conv.
    const CHUNK: usize = 16;
    let run = kernel * in_ch;
    // Fixed 16-byte chunk copies (a pair of vector moves, no memcpy call)
    // blind-write up to 15 bytes past the run. Spills always land forward
    // — in this patch's next kernel row, the pad tail, or the first bytes
    // of the next patch row — and patches are emitted in patch-major
    // order, so every spilled-into position is either rewritten later or
    // a stale-tolerant tail byte. A spill never outruns one patch row
    // (15 < k_pad), and the strip guard below falls back to exact byte
    // copies when a blind read/write could cross a buffer end.
    let blind = run.div_ceil(CHUNK) * CHUNK;
    // ox ∈ [x_lo, x_hi) are the patches whose kx window is fully in-image
    let x_lo = padding.div_ceil(stride).min(ow);
    let x_hi = if kernel > w + padding {
        x_lo
    } else {
        ((w + padding - kernel) / stride + 1).clamp(x_lo, ow)
    };
    for oy in 0..oh {
        let iy0 = oy * stride;
        let clipped_y = iy0 < padding || iy0 + kernel > h + padding;
        if clipped_y {
            for ox in 0..ow {
                patch_careful(src, in_ch, h, w, kernel, stride, padding, ow, zero_point, k_pad, cols, oy, ox);
            }
            continue;
        }
        for ox in 0..x_lo {
            patch_careful(src, in_ch, h, w, kernel, stride, padding, ow, zero_point, k_pad, cols, oy, ox);
        }
        let n_fast = x_hi - x_lo;
        if n_fast > 0 {
            let iy_top = iy0 - padding;
            let yrow = w * in_ch;
            let src_end = ((iy_top + kernel - 1) * w + (x_hi - 1) * stride - padding) * in_ch + blind;
            let dst_end = (oy * ow + x_hi - 1) * k_pad + (kernel - 1) * kernel * in_ch + blind;
            if src_end <= src.len() && dst_end <= cols.len() {
                let mut row = (oy * ow + x_lo) * k_pad;
                let mut sbase = (iy_top * w + x_lo * stride - padding) * in_ch;
                for _ in 0..n_fast {
                    for ky in 0..kernel {
                        let mut s = sbase + ky * yrow;
                        let mut d = row + ky * kernel * in_ch;
                        let mut off = 0;
                        while off < run {
                            let chunk: &[u8; CHUNK] = src[s..s + CHUNK].first_chunk().unwrap();
                            cols[d..d + CHUNK].copy_from_slice(chunk);
                            s += CHUNK;
                            d += CHUNK;
                            off += CHUNK;
                        }
                    }
                    row += k_pad;
                    sbase += stride * in_ch;
                }
            } else {
                for ox in x_lo..x_hi {
                    patch_careful(src, in_ch, h, w, kernel, stride, padding, ow, zero_point, k_pad, cols, oy, ox);
                }
            }
        }
        for ox in x_hi..ow {
            patch_careful(src, in_ch, h, w, kernel, stride, padding, ow, zero_point, k_pad, cols, oy, ox);
        }
    }
}

/// One im2col patch the slow, exact way: zero-point fill, then per-row
/// byte copies that touch only in-image positions. Used for patches the
/// padding clips and as the fallback when a blind chunk copy could cross
/// a buffer end.
#[allow(clippy::too_many_arguments)]
fn patch_careful(
    src: &[u8],
    in_ch: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    ow: usize,
    zero_point: u8,
    k_pad: usize,
    cols: &mut [u8],
    oy: usize,
    ox: usize,
) {
    let iy0 = oy * stride;
    let row = (oy * ow + ox) * k_pad;
    let ix_base = ox * stride;
    // kx ∈ [kx0, kx1) keeps ix = ix_base + kx − padding in image
    let kx0 = padding.saturating_sub(ix_base);
    let kx1 = kernel.min((w + padding).saturating_sub(ix_base));
    cols[row..row + k_pad].fill(zero_point);
    if kx0 >= kx1 {
        return;
    }
    let run = (kx1 - kx0) * in_ch;
    for ky in 0..kernel {
        let iy = (iy0 + ky) as isize - padding as isize;
        if iy < 0 || iy >= h as isize {
            continue;
        }
        let src_off = (iy as usize * w + ix_base + kx0 - padding) * in_ch;
        let dst_off = row + (ky * kernel + kx0) * in_ch;
        for (d, &s) in cols[dst_off..dst_off + run].iter_mut().zip(&src[src_off..]) {
            *d = s;
        }
    }
}

/// Channels-last `u8` max pooling (`size×size`, stride `size`): every
/// window row is a max over channel-wide byte slices. Byte comparisons
/// give the same winner as f32 comparisons because the code mapping is
/// monotone, and 0 is the smallest code so it is a safe identity.
#[allow(clippy::too_many_arguments)]
fn maxpool_u8(src: &[u8], ch: usize, h: usize, w: usize, size: usize, oh: usize, ow: usize, dst: &mut [u8]) {
    let _ = h;
    if size == 2 {
        // every pool in the iCOIL net is 2×2 over one of these widths
        match ch {
            8 => return pool2_const::<8>(src, w, oh, ow, dst),
            16 => return pool2_const::<16>(src, w, oh, ow, dst),
            32 => return pool2_const::<32>(src, w, oh, ow, dst),
            _ => {}
        }
    }
    for oy in 0..oh {
        for ox in 0..ow {
            let out_px = &mut dst[(oy * ow + ox) * ch..][..ch];
            out_px.fill(0);
            for dy in 0..size {
                let win = &src[((oy * size + dy) * w + ox * size) * ch..][..size * ch];
                for px in win.chunks_exact(ch) {
                    for (m, &v) in out_px.iter_mut().zip(px) {
                        *m = (*m).max(v);
                    }
                }
            }
        }
    }
}

/// 2×2 max pool with the channel count fixed at compile time: the four
/// window pixels become `[u8; N]` arrays, so the max chain lowers to wide
/// byte-max instructions instead of a scalar loop.
fn pool2_const<const N: usize>(src: &[u8], w: usize, oh: usize, ow: usize, dst: &mut [u8]) {
    for oy in 0..oh {
        for ox in 0..ow {
            let top = (2 * oy * w + 2 * ox) * N;
            let bot = top + w * N;
            let a: &[u8; N] = src[top..top + N].first_chunk().expect("window pixel");
            let b: &[u8; N] = src[top + N..top + 2 * N].first_chunk().expect("window pixel");
            let c: &[u8; N] = src[bot..bot + N].first_chunk().expect("window pixel");
            let d: &[u8; N] = src[bot + N..bot + 2 * N].first_chunk().expect("window pixel");
            let mut m = [0u8; N];
            for i in 0..N {
                m[i] = a[i].max(b[i]).max(c[i]).max(d[i]);
            }
            dst[(oy * ow + ox) * N..][..N].copy_from_slice(&m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bev_like_frames(count: usize, c: usize, hw: usize, seed: u64) -> Vec<Tensor> {
        (0..count)
            .map(|i| {
                let data: Vec<f32> = (0..c * hw * hw)
                    .map(|j| {
                        let z = (seed as usize + i * 7919 + j * 37) % 101;
                        // channels 0/1-like occupancy in [0,1], plus a
                        // signed-plane flavor on the last channel
                        if j < (c - 1) * hw * hw {
                            (z as f32) / 100.0
                        } else {
                            (z as f32) / 50.0 - 1.0
                        }
                    })
                    .collect();
                Tensor::from_vec(vec![c, hw, hw], data).unwrap()
            })
            .collect()
    }

    fn il_net() -> Network {
        Network::il_architecture((3, 32, 32), 21, 11)
    }

    #[test]
    fn act_quant_round_trips_within_half_step() {
        let q = ActQuant::from_range(0.0, 6.3);
        for i in 0..128 {
            let v = 6.3 * (i as f32) / 127.0;
            let back = q.dequantize(q.quantize(v));
            assert!((v - back).abs() <= q.scale / 2.0 + 1e-6, "{v} -> {back}");
        }
        let signed = ActQuant::from_range(-1.0, 2.5);
        assert_eq!(signed.zero_point, 64);
        assert_eq!(signed.quantize(0.0), 64);
        for v in [-1.0f32, -0.5, 0.0, 0.7, 2.5] {
            let back = signed.dequantize(signed.quantize(v));
            assert!((v - back).abs() <= signed.scale / 2.0 + 1e-6, "{v} -> {back}");
        }
    }

    #[test]
    fn act_quant_saturates_out_of_range() {
        let q = ActQuant::from_range(0.0, 1.0);
        assert_eq!(q.quantize(50.0), 127);
        assert_eq!(q.quantize(-50.0), 0);
        let s = ActQuant::from_range(-1.0, 1.0);
        assert_eq!(s.quantize(50.0), 127);
        assert_eq!(s.quantize(-50.0), 0);
    }

    #[test]
    fn weight_rows_round_trip_within_half_step() {
        let row: Vec<f32> = (0..40).map(|i| ((i * 13 + 5) as f32 * 0.37).sin()).collect();
        let (codes, scale) = quantize_weight_row(&row);
        for (&w, &c) in row.iter().zip(&codes) {
            assert!((w - dequantize_weight(c, scale)).abs() <= scale / 2.0 + 1e-6);
        }
        // extremes hit exactly ±127
        let (codes, _) = quantize_weight_row(&[3.0, -3.0, 0.0]);
        assert_eq!(codes, vec![127, -127, 0]);
    }

    #[test]
    fn calibrated_logits_track_f32_within_bound() {
        let net = il_net();
        let frames = bev_like_frames(6, 3, 32, 3);
        let q = QuantizedNetwork::calibrate(&net, &frames[..4]);
        assert_eq!(q.classes(), 21);
        assert!(q.logit_error_bound() > 0.0);
        let mut buf = InferBuffers::new();
        let mut scratch = QuantScratch::new();
        let mut out = Tensor::default();
        // held-out frames from the same distribution stay within bound
        for frame in &frames[4..] {
            let reference = f32_reference_logits(&net, frame);
            q.forward_batch_into(
                &[frame.data()],
                &[3, 32, 32],
                &mut buf,
                &mut scratch,
                &mut out,
            );
            for (&a, &b) in reference.data().iter().zip(out.data()) {
                assert!(
                    (a - b).abs() <= q.logit_error_bound(),
                    "|{a} - {b}| > {}",
                    q.logit_error_bound()
                );
            }
        }
    }

    #[test]
    fn batched_rows_match_single_sample_quantized() {
        let net = il_net();
        let frames = bev_like_frames(5, 3, 32, 9);
        let q = QuantizedNetwork::calibrate(&net, &frames[..2]);
        let mut buf = InferBuffers::new();
        let mut scratch = QuantScratch::new();
        let samples: Vec<&[f32]> = frames.iter().map(|f| f.data()).collect();
        let mut batch = Tensor::default();
        q.forward_batch_into(&samples, &[3, 32, 32], &mut buf, &mut scratch, &mut batch);
        assert_eq!(batch.shape(), &[5, 21]);
        let mut single_buf = InferBuffers::new();
        let mut single_scratch = QuantScratch::new();
        let mut single = Tensor::default();
        for (i, sample) in samples.iter().enumerate() {
            q.forward_batch_into(
                &[sample],
                &[3, 32, 32],
                &mut single_buf,
                &mut single_scratch,
                &mut single,
            );
            assert_eq!(
                &batch.data()[i * 21..(i + 1) * 21],
                single.data(),
                "batch row {i} diverged"
            );
        }
    }

    #[test]
    fn calibration_is_independent_of_frame_order() {
        let net = il_net();
        let frames = bev_like_frames(4, 3, 32, 21);
        let forward = QuantizedNetwork::calibrate(&net, &frames);
        let reversed: Vec<Tensor> = frames.iter().rev().cloned().collect();
        let backward = QuantizedNetwork::calibrate(&net, &reversed);
        assert_eq!(forward, backward);
    }

    #[test]
    fn quantized_path_is_reproducible() {
        let net = il_net();
        let frames = bev_like_frames(3, 3, 32, 5);
        let q = QuantizedNetwork::calibrate(&net, &frames);
        let mut buf = InferBuffers::new();
        let mut scratch = QuantScratch::new();
        let mut a = Tensor::default();
        let mut b = Tensor::default();
        let samples: Vec<&[f32]> = frames.iter().map(|f| f.data()).collect();
        q.forward_batch_into(&samples, &[3, 32, 32], &mut buf, &mut scratch, &mut a);
        q.forward_batch_into(&samples, &[3, 32, 32], &mut buf, &mut scratch, &mut b);
        assert_eq!(a.data(), b.data(), "warm buffers must not change the result");
    }
}
