//! Network layers with hand-derived forward and backward passes.
//!
//! Layers cache whatever the backward pass needs during `forward(…, train
//! = true)`; caches are transient and excluded from serialization, so a
//! deserialized network is immediately usable for inference and resumes
//! training after one forward pass.

use crate::init;
use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Reusable per-layer buffers for the allocation-free inference path
/// ([`LayerKind::infer_into`]).
///
/// The buffers grow to the largest size any layer needs and are then
/// reused verbatim, so repeated inference through the same network
/// performs no heap allocation after the first call.
#[derive(Debug, Clone)]
pub struct InferScratch {
    /// im2col patch matrix for [`Conv2d`].
    cols: Tensor,
    /// Per-sample convolution output (`[out_ch, oh·ow]`).
    conv_y: Tensor,
}

impl InferScratch {
    /// Creates empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        InferScratch {
            cols: Tensor::zeros(vec![0]),
            conv_y: Tensor::zeros(vec![0]),
        }
    }
}

impl Default for InferScratch {
    fn default() -> Self {
        InferScratch::new()
    }
}

/// A sequential network layer.
///
/// The enum (rather than a trait object) keeps layers `Serialize`-able and
/// lets [`crate::Network`] iterate parameters without dynamic downcasts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerKind {
    /// Fully-connected layer.
    Dense(Dense),
    /// 2-D convolution (im2col).
    Conv2d(Conv2d),
    /// 2-D max pooling.
    MaxPool2d(MaxPool2d),
    /// Rectified linear activation.
    ReLU(ReLU),
    /// Collapses `[n, c, h, w]` into `[n, c·h·w]`.
    Flatten(Flatten),
    /// Inverted dropout (identity at inference).
    Dropout(Dropout),
}

impl LayerKind {
    /// A fully-connected layer `in_dim → out_dim` (He-initialized).
    pub fn dense(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        LayerKind::Dense(Dense::new(in_dim, out_dim, seed))
    }

    /// A `kernel×kernel` convolution with stride 1 and "same" padding.
    pub fn conv2d(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> Self {
        LayerKind::Conv2d(Conv2d::new(in_ch, out_ch, kernel, 1, kernel / 2, seed))
    }

    /// A `size×size` max pool with stride `size`.
    pub fn maxpool2d(size: usize) -> Self {
        LayerKind::MaxPool2d(MaxPool2d::new(size))
    }

    /// A ReLU activation.
    pub fn relu() -> Self {
        LayerKind::ReLU(ReLU::default())
    }

    /// A flatten layer.
    pub fn flatten() -> Self {
        LayerKind::Flatten(Flatten::default())
    }

    /// An inverted-dropout layer with drop probability `p`, seeded for
    /// reproducible training.
    pub fn dropout(p: f64, seed: u64) -> Self {
        LayerKind::Dropout(Dropout::new(p, seed))
    }

    /// Forward pass. With `train = true` the layer caches activations for
    /// a subsequent [`LayerKind::backward`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            LayerKind::Dense(l) => l.forward(x, train),
            LayerKind::Conv2d(l) => l.forward(x, train),
            LayerKind::MaxPool2d(l) => l.forward(x, train),
            LayerKind::ReLU(l) => l.forward(x, train),
            LayerKind::Flatten(l) => l.forward(x, train),
            LayerKind::Dropout(l) => l.forward(x, train),
        }
    }

    /// Inference-only forward pass writing into `out`, reusing `scratch`
    /// buffers instead of allocating. Produces results bit-identical to
    /// `forward(x, false)` while caching nothing.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`LayerKind::forward`].
    pub fn infer_into(&self, x: &Tensor, out: &mut Tensor, scratch: &mut InferScratch) {
        match self {
            LayerKind::Dense(l) => l.infer_into(x, out),
            LayerKind::Conv2d(l) => l.infer_into(x, out, scratch),
            LayerKind::MaxPool2d(l) => l.infer_into(x, out),
            LayerKind::ReLU(_) => {
                out.copy_from(x);
                for v in out.data_mut() {
                    *v = v.max(0.0);
                }
            }
            LayerKind::Flatten(_) => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                out.resize(&[n, rest]);
                out.data_mut().copy_from_slice(x.data());
            }
            LayerKind::Dropout(_) => out.copy_from(x),
        }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            LayerKind::Dense(l) => l.backward(grad),
            LayerKind::Conv2d(l) => l.backward(grad),
            LayerKind::MaxPool2d(l) => l.backward(grad),
            LayerKind::ReLU(l) => l.backward(grad),
            LayerKind::Flatten(l) => l.backward(grad),
            LayerKind::Dropout(l) => l.backward(grad),
        }
    }

    /// Mutable (parameter, gradient) pairs, in a stable order.
    pub fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        match self {
            LayerKind::Dense(l) => vec![(&mut l.weight, &mut l.grad_weight), (&mut l.bias, &mut l.grad_bias)],
            LayerKind::Conv2d(l) => vec![(&mut l.weight, &mut l.grad_weight), (&mut l.bias, &mut l.grad_bias)],
            _ => Vec::new(),
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for (_, g) in self.params_grads() {
            g.scale(0.0);
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&mut self) -> usize {
        self.params_grads().iter().map(|(p, _)| p.len()).sum()
    }
}

/// Fully-connected layer: `y = x·Wᵀ + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    #[serde(skip, default = "Tensor::empty_grad")]
    grad_weight: Tensor,
    #[serde(skip, default = "Tensor::empty_grad")]
    grad_bias: Tensor,
    #[serde(skip)]
    cache_input: Option<Tensor>,
}

impl Tensor {
    fn empty_grad() -> Tensor {
        Tensor::zeros(vec![0])
    }
}

impl Dense {
    /// The `[out_dim, in_dim]` weight matrix (read-only; the quantizer
    /// snapshots it).
    pub(crate) fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The `[out_dim]` bias vector.
    pub(crate) fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Creates a He-initialized dense layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Dense {
            weight: init::he_uniform(vec![out_dim, in_dim], in_dim, seed),
            bias: Tensor::zeros(vec![out_dim]),
            grad_weight: Tensor::zeros(vec![out_dim, in_dim]),
            grad_bias: Tensor::zeros(vec![out_dim]),
            cache_input: None,
        }
    }

    fn ensure_grads(&mut self) {
        if self.grad_weight.shape() != self.weight.shape() {
            self.grad_weight = Tensor::zeros(self.weight.shape().to_vec());
        }
        if self.grad_bias.shape() != self.bias.shape() {
            self.grad_bias = Tensor::zeros(self.bias.shape().to_vec());
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.ensure_grads();
        let mut y = x.matmul_nt(&self.weight);
        let out_dim = self.bias.len();
        for row in y.data_mut().chunks_mut(out_dim) {
            for (v, b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        if train {
            self.cache_input = Some(x.clone());
        }
        y
    }

    fn infer_into(&self, x: &Tensor, out: &mut Tensor) {
        x.matmul_nt_into(&self.weight, out);
        let out_dim = self.bias.len();
        for row in out.data_mut().chunks_mut(out_dim) {
            for (v, b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .as_ref()
            .expect("Dense::backward without a training forward pass");
        // dW = gradᵀ · x, db = column sums of grad, dx = grad · W
        self.grad_weight.add_assign(&grad.matmul_tn(x));
        let out_dim = self.bias.len();
        {
            let gb = self.grad_bias.data_mut();
            for row in grad.data().chunks(out_dim) {
                for (g, v) in gb.iter_mut().zip(row) {
                    *g += v;
                }
            }
        }
        grad.matmul(&self.weight)
    }
}

/// 2-D convolution implemented with im2col.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[out_ch, in_ch·k·k]`.
    weight: Tensor,
    bias: Tensor,
    #[serde(skip, default = "Tensor::empty_grad")]
    grad_weight: Tensor,
    #[serde(skip, default = "Tensor::empty_grad")]
    grad_bias: Tensor,
    #[serde(skip)]
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    cols: Vec<Tensor>,
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a He-initialized convolution layer.
    ///
    /// # Panics
    ///
    /// Panics for a zero kernel or stride.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_ch * kernel * kernel;
        Conv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
            weight: init::he_uniform(vec![out_ch, fan_in], fan_in, seed),
            bias: Tensor::zeros(vec![out_ch]),
            grad_weight: Tensor::zeros(vec![out_ch, fan_in]),
            grad_bias: Tensor::zeros(vec![out_ch]),
            cache: None,
        }
    }

    pub(crate) fn out_dim(&self, d: usize) -> usize {
        (d + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// The `[out_ch, in_ch·k·k]` weight matrix.
    pub(crate) fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The `[out_ch]` bias vector.
    pub(crate) fn bias(&self) -> &Tensor {
        &self.bias
    }

    pub(crate) fn in_ch(&self) -> usize {
        self.in_ch
    }

    pub(crate) fn kernel(&self) -> usize {
        self.kernel
    }

    pub(crate) fn stride(&self) -> usize {
        self.stride
    }

    pub(crate) fn padding(&self) -> usize {
        self.padding
    }

    fn ensure_grads(&mut self) {
        if self.grad_weight.shape() != self.weight.shape() {
            self.grad_weight = Tensor::zeros(self.weight.shape().to_vec());
        }
        if self.grad_bias.shape() != self.bias.shape() {
            self.grad_bias = Tensor::zeros(self.bias.shape().to_vec());
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.ensure_grads();
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_ch, "Conv2d channel mismatch");
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let mut out = Tensor::zeros(vec![n, self.out_ch, oh, ow]);
        let mut cols_cache = Vec::with_capacity(if train { n } else { 0 });
        let sample_len = c * h * w;
        let out_sample_len = self.out_ch * oh * ow;
        for i in 0..n {
            let sample = &x.data()[i * sample_len..(i + 1) * sample_len];
            let cols = self.im2col(sample, h, w, oh, ow);
            let mut y = self.weight.matmul(&cols); // [out_ch, oh·ow]
            for (ch, b) in self.bias.data().iter().enumerate() {
                let row = &mut y.data_mut()[ch * oh * ow..(ch + 1) * oh * ow];
                for v in row {
                    *v += b;
                }
            }
            out.data_mut()[i * out_sample_len..(i + 1) * out_sample_len]
                .copy_from_slice(y.data());
            if train {
                cols_cache.push(cols);
            }
        }
        if train {
            self.cache = Some(ConvCache {
                cols: cols_cache,
                in_shape: shape.to_vec(),
                out_hw: (oh, ow),
            });
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward without a training forward pass");
        let (n, _c, h, w) = (
            cache.in_shape[0],
            cache.in_shape[1],
            cache.in_shape[2],
            cache.in_shape[3],
        );
        let (oh, ow) = cache.out_hw;
        let out_sample_len = self.out_ch * oh * ow;
        let mut dx = Tensor::zeros(cache.in_shape.clone());
        let in_sample_len = dx.len() / n;
        for i in 0..n {
            let g = Tensor::from_vec(
                vec![self.out_ch, oh * ow],
                grad.data()[i * out_sample_len..(i + 1) * out_sample_len].to_vec(),
            )
            .expect("gradient slice matches conv output");
            // dW += g · colsᵀ
            self.grad_weight.add_assign(&g.matmul_nt(&cache.cols[i]));
            // db += row sums of g
            {
                let gb = self.grad_bias.data_mut();
                for (ch, gv) in gb.iter_mut().enumerate() {
                    let row = &g.data()[ch * oh * ow..(ch + 1) * oh * ow];
                    *gv += row.iter().sum::<f32>();
                }
            }
            // dcols = Wᵀ · g, then scatter back (col2im)
            let dcols = self.weight.matmul_tn(&g);
            let dst = &mut dx.data_mut()[i * in_sample_len..(i + 1) * in_sample_len];
            self.col2im(&dcols, dst, h, w, oh, ow);
        }
        self.cache = None;
        dx
    }

    fn infer_into(&self, x: &Tensor, out: &mut Tensor, scratch: &mut InferScratch) {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_ch, "Conv2d channel mismatch");
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        out.resize(&[n, self.out_ch, oh, ow]);
        let sample_len = c * h * w;
        let out_sample_len = self.out_ch * oh * ow;
        for i in 0..n {
            let sample = &x.data()[i * sample_len..(i + 1) * sample_len];
            self.im2col_into(sample, h, w, oh, ow, &mut scratch.cols);
            self.weight.matmul_into(&scratch.cols, &mut scratch.conv_y);
            for (ch, b) in self.bias.data().iter().enumerate() {
                let row = &mut scratch.conv_y.data_mut()[ch * oh * ow..(ch + 1) * oh * ow];
                for v in row {
                    *v += b;
                }
            }
            out.data_mut()[i * out_sample_len..(i + 1) * out_sample_len]
                .copy_from_slice(scratch.conv_y.data());
        }
    }

    fn im2col(&self, sample: &[f32], h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let mut cols = Tensor::zeros(vec![0]);
        self.im2col_into(sample, h, w, oh, ow, &mut cols);
        cols
    }

    fn im2col_into(
        &self,
        sample: &[f32],
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        out: &mut Tensor,
    ) {
        let k = self.kernel;
        let rows = self.in_ch * k * k;
        out.resize(&[rows, oh * ow]);
        // Padded positions are skipped below, so the buffer must start
        // zeroed on every use (it is reused across calls).
        out.data_mut().fill(0.0);
        let cols = out.data_mut();
        for c in 0..self.in_ch {
            let plane = &sample[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    let dst = &mut cols[row * oh * ow..(row + 1) * oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                        if self.stride == 1 {
                            // At stride 1 the in-bounds `ox` range maps to a
                            // contiguous span of the input row: one memcpy
                            // per (row, oy) instead of ow bounds checks.
                            // Same bits, pure data movement.
                            let shift = kx as isize - self.padding as isize;
                            let ox0 = (-shift).max(0) as usize;
                            let ox1 = ow.min((w as isize - shift).max(0) as usize);
                            if ox0 < ox1 {
                                let ix0 = (ox0 as isize + shift) as usize;
                                dst_row[ox0..ox1]
                                    .copy_from_slice(&src_row[ix0..ix0 + (ox1 - ox0)]);
                            }
                        } else {
                            for (ox, d) in dst_row.iter_mut().enumerate() {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                *d = src_row[ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }

    fn col2im(&self, dcols: &Tensor, dst: &mut [f32], h: usize, w: usize, oh: usize, ow: usize) {
        let k = self.kernel;
        for c in 0..self.in_ch {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    let src = &dcols.data()[row * oh * ow..(row + 1) * oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst[c * h * w + iy as usize * w + ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Max pooling over `size×size` windows with stride `size`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    size: usize,
    #[serde(skip)]
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics for a zero window size.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        MaxPool2d { size, cache: None }
    }

    pub(crate) fn size(&self) -> usize {
        self.size
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let s = self.size;
        let (oh, ow) = (h / s, w / s);
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let mut argmax = vec![0usize; out.len()];
        let data = x.data();
        let out_data = out.data_mut();
        for i in 0..n {
            for ch in 0..c {
                let plane = (i * c + ch) * h * w;
                let out_plane = (i * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..s {
                            for dx in 0..s {
                                let idx = plane + (oy * s + dy) * w + (ox * s + dx);
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out_data[out_plane + oy * ow + ox] = best;
                        argmax[out_plane + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.cache = Some(PoolCache {
                argmax,
                in_shape: shape.to_vec(),
            });
        }
        out
    }

    fn infer_into(&self, x: &Tensor, out: &mut Tensor) {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let s = self.size;
        let (oh, ow) = (h / s, w / s);
        out.resize(&[n, c, oh, ow]);
        let data = x.data();
        let out_data = out.data_mut();
        for i in 0..n {
            for ch in 0..c {
                let plane = (i * c + ch) * h * w;
                let out_plane = (i * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for dy in 0..s {
                            for dx in 0..s {
                                let idx = plane + (oy * s + dy) * w + (ox * s + dx);
                                if data[idx] > best {
                                    best = data[idx];
                                }
                            }
                        }
                        out_data[out_plane + oy * ow + ox] = best;
                    }
                }
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("MaxPool2d::backward without a training forward pass");
        let mut dx = Tensor::zeros(cache.in_shape);
        let dxd = dx.data_mut();
        for (g, &idx) in grad.data().iter().zip(&cache.argmax) {
            dxd[idx] += g;
        }
        dx
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("ReLU::backward without a training forward pass");
        let data = grad
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad.shape().to_vec(), data).expect("mask length matches")
    }
}

/// Flattens `[n, …]` into `[n, prod(…)]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        x.reshaped(vec![n, rest])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self
            .in_shape
            .take()
            .expect("Flatten::backward without a training forward pass");
        grad.reshaped(shape)
    }
}

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so inference
/// (which applies nothing) sees the same expected activation.
///
/// The mask stream is seeded and advances per training forward pass, so
/// training runs remain reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    p: f64,
    seed: u64,
    #[serde(skip)]
    calls: u64,
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout {
            p,
            seed,
            calls: 0,
            mask: None,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![true; x.len()]);
            }
            return x.clone();
        }
        self.calls += 1;
        // splitmix64 stream keyed by (seed, call index, element index)
        let base = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(self.calls);
        let keep_scale = (1.0 / (1.0 - self.p)) as f32;
        let mut mask = Vec::with_capacity(x.len());
        let data = x
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut z = base.wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                z = (z ^ (z >> 30)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                let keep = (z >> 11) as f64 / (1u64 << 53) as f64 >= self.p;
                mask.push(keep);
                if keep {
                    v * keep_scale
                } else {
                    0.0
                }
            })
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(x.shape().to_vec(), data).expect("dropout preserves shape")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Dropout::backward without a training forward pass");
        let keep_scale = (1.0 / (1.0 - self.p)) as f32;
        let data = grad
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &k)| if k { g * keep_scale } else { 0.0 })
            .collect();
        Tensor::from_vec(grad.shape().to_vec(), data).expect("mask length matches")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, 1);
        // overwrite weights with a known matrix
        d.weight = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        d.bias = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1., 1.]).unwrap();
        let y = d.forward(&x, false);
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn dense_backward_shapes_and_bias_grad() {
        let mut d = Dense::new(3, 2, 1);
        let x = Tensor::from_vec(vec![4, 3], vec![0.1; 12]).unwrap();
        let _ = d.forward(&x, true);
        let g = Tensor::full(vec![4, 2], 1.0);
        let dx = d.backward(&g);
        assert_eq!(dx.shape(), &[4, 3]);
        // bias grad = column sums of g = 4 each
        assert_eq!(d.grad_bias.data(), &[4.0, 4.0]);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut r = ReLU::default();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 2., -3., 4.]).unwrap();
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = Tensor::full(vec![1, 4], 1.0);
        let dx = r.backward(&g);
        assert_eq!(dx.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut p = MaxPool2d::new(2);
        // one 4x4 plane
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![1, 1, 4, 4], vec![
            1., 2., 5., 6.,
            3., 4., 7., 8.,
            0., 0., 1., 0.,
            0., 9., 0., 1.,
        ]).unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 9., 1.]);
        let g = Tensor::full(vec![1, 1, 2, 2], 1.0);
        let dx = p.backward(&g);
        // gradient lands exactly on each window's maximum
        assert_eq!(dx.data()[5], 1.0); // value 4
        assert_eq!(dx.data()[7], 1.0); // value 8
        assert_eq!(dx.data()[13], 1.0); // value 9
        assert_eq!(dx.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn conv_same_padding_preserves_dims() {
        let mut c = Conv2d::new(2, 4, 3, 1, 1, 3);
        let x = Tensor::zeros(vec![2, 2, 8, 8]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        // one input channel, one output channel, 3x3 kernel that is a
        // delta at the center => convolution is identity.
        let mut c = Conv2d::new(1, 1, 3, 1, 1, 5);
        c.weight = Tensor::from_vec(vec![1, 9], vec![0., 0., 0., 0., 1., 0., 0., 0., 0.]).unwrap();
        c.bias = Tensor::zeros(vec![1]);
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut c = Conv2d::new(1, 2, 3, 1, 1, 9);
        let x = Tensor::from_vec(vec![1, 1, 4, 4], (0..16).map(|v| v as f32 * 0.1).collect())
            .unwrap();
        // scalar loss = sum(conv(x)); grad wrt output is ones
        let y = c.forward(&x, true);
        let g = Tensor::full(y.shape().to_vec(), 1.0);
        let dx = c.backward(&g);
        // finite difference on a few input elements
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let f = |t: &Tensor, cc: &mut Conv2d| cc.forward(t, false).sum();
            let num = (f(&xp, &mut c) - f(&xm, &mut c)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "element {i}: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::default();
        let x = Tensor::zeros(vec![2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(&Tensor::zeros(vec![2, 48]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = LayerKind::dense(2, 2, 1);
        let x = Tensor::full(vec![1, 2], 1.0);
        let _ = l.forward(&x, true);
        let _ = l.backward(&Tensor::full(vec![1, 2], 1.0));
        assert!(l.params_grads()[0].1.data().iter().any(|&v| v != 0.0));
        l.zero_grad();
        assert!(l.params_grads().iter().all(|(_, g)| g.data().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn num_params_counts() {
        let mut l = LayerKind::dense(10, 5, 1);
        assert_eq!(l.num_params(), 55);
        let mut c = LayerKind::conv2d(2, 4, 3, 1);
        assert_eq!(c.num_params(), 4 * 2 * 9 + 4);
        assert_eq!(LayerKind::relu().num_params(), 0);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(vec![4, 4], 2.0);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_training_zeroes_and_scales() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(vec![1, 1000], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 1000, "values are either dropped or scaled");
        assert!((300..700).contains(&zeros), "drop rate ~50%, got {zeros}");
        // expectation preserved within sampling error
        let mean: f32 = y.sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn dropout_backward_matches_mask() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::full(vec![1, 64], 1.0);
        let y = d.forward(&x, true);
        let g = Tensor::full(vec![1, 64], 1.0);
        let dx = d.backward(&g);
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            // gradient flows exactly where the activation survived
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    fn dropout_zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::full(vec![2, 3], 1.5);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn serde_skips_caches() {
        let mut l = LayerKind::dense(2, 2, 1);
        let x = Tensor::full(vec![1, 2], 1.0);
        let _ = l.forward(&x, true);
        let json = serde_json::to_string(&l).unwrap();
        let mut back: LayerKind = serde_json::from_str(&json).unwrap();
        // weights survive; deserialized layer runs inference immediately
        let y1 = l.forward(&x, false);
        let y2 = back.forward(&x, false);
        assert_eq!(y1.data(), y2.data());
    }
}
