//! Optimizers: SGD with momentum, and Adam.

use crate::Network;

/// A first-order optimizer stepping a [`Network`]'s parameters using the
/// gradients accumulated by the last backward pass(es).
///
/// Implementations keep per-parameter state (momentum / moment buffers)
/// keyed by the network's stable parameter order, so an optimizer must be
/// used with a single network for its lifetime.
pub trait Optimizer {
    /// Applies one update step; does **not** clear gradients (call
    /// [`Network::zero_grad`] afterwards).
    fn step(&mut self, net: &mut Network);
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use icoil_nn::optim::{Optimizer, Sgd};
/// use icoil_nn::{layer::LayerKind, loss, Network, Tensor};
///
/// let mut net = Network::new(vec![LayerKind::dense(1, 1, 0)]);
/// let x = Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap();
/// let mut opt = Sgd::new(0.1, 0.0);
/// let before = net.forward(&x, false).data()[0];
/// let logits = net.forward(&x, true);
/// net.backward(&Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap());
/// opt.step(&mut net);
/// let after = net.forward(&x, false).data()[0];
/// assert!(after < before); // moved against the gradient
/// # let _ = logits;
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and momentum
    /// coefficient `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate or momentum outside
    /// `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        let mut params = net.params_grads();
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            for ((pv, gv), vv) in p.data_mut().iter_mut().zip(g.data()).zip(v.iter_mut()) {
                *vv = self.momentum * *vv - self.lr * gv;
                *pv += *vv;
            }
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network) {
        let mut params = net.params_grads();
        if self.m.len() != params.len() {
            self.m = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for (((pv, gv), mv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// A step learning-rate schedule: multiplies the learning rate by
/// `gamma` every `period` epochs.
///
/// # Example
///
/// ```
/// use icoil_nn::optim::StepLr;
///
/// let schedule = StepLr::new(1e-2, 10, 0.5);
/// assert_eq!(schedule.lr_at(0), 1e-2);
/// assert_eq!(schedule.lr_at(9), 1e-2);
/// assert_eq!(schedule.lr_at(10), 5e-3);
/// assert_eq!(schedule.lr_at(25), 2.5e-3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base: f32,
    period: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive base rate, zero period, or a decay
    /// factor outside `(0, 1]`.
    pub fn new(base: f32, period: usize, gamma: f32) -> Self {
        assert!(base > 0.0, "base learning rate must be positive");
        assert!(period > 0, "decay period must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepLr {
            base,
            period,
            gamma,
        }
    }

    /// The learning rate for a given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.period) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::{loss, Tensor};

    fn quadratic_problem() -> (Network, Tensor, Vec<usize>) {
        // logistic regression on linearly separable points
        let x = Tensor::from_vec(
            vec![4, 2],
            vec![2.0, 0.1, 1.5, -0.2, -2.0, 0.3, -1.2, -0.1],
        )
        .unwrap();
        let y = vec![0usize, 0, 1, 1];
        let net = Network::new(vec![LayerKind::dense(2, 2, 5)]);
        (net, x, y)
    }

    fn train<O: Optimizer>(mut net: Network, x: &Tensor, y: &[usize], opt: &mut O, iters: usize) -> f32 {
        for _ in 0..iters {
            let logits = net.forward(x, true);
            let (_, grad) = loss::cross_entropy(&logits, y);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
        }
        loss::cross_entropy(&net.forward(x, false), y).0
    }

    #[test]
    fn sgd_converges() {
        let (net, x, y) = quadratic_problem();
        let final_loss = train(net, &x, &y, &mut Sgd::new(0.5, 0.0), 200);
        assert!(final_loss < 0.05, "final loss {final_loss}");
    }

    #[test]
    fn momentum_accelerates() {
        let (net, x, y) = quadratic_problem();
        let plain = train(net.clone(), &x, &y, &mut Sgd::new(0.05, 0.0), 50);
        let momo = train(net, &x, &y, &mut Sgd::new(0.05, 0.9), 50);
        assert!(momo < plain, "momentum {momo} vs plain {plain}");
    }

    #[test]
    fn adam_converges() {
        let (net, x, y) = quadratic_problem();
        let final_loss = train(net, &x, &y, &mut Adam::new(0.05), 200);
        assert!(final_loss < 0.05, "final loss {final_loss}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    fn step_lr_schedule_decays() {
        let sch = StepLr::new(0.1, 5, 0.1);
        assert_eq!(sch.lr_at(4), 0.1);
        assert!((sch.lr_at(5) - 0.01).abs() < 1e-9);
        assert!((sch.lr_at(14) - 0.001).abs() < 1e-8);
        // schedules drive set_lr on either optimizer
        let mut sgd = Sgd::new(sch.lr_at(0), 0.0);
        sgd.set_lr(sch.lr_at(5));
        let mut adam = Adam::new(sch.lr_at(0));
        adam.set_lr(sch.lr_at(5));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        let _ = StepLr::new(0.1, 0, 0.5);
    }

    #[test]
    fn step_without_backward_is_noop() {
        let (mut net, x, _) = quadratic_problem();
        let before = net.forward(&x, false);
        let mut opt = Adam::new(0.1);
        net.zero_grad();
        opt.step(&mut net);
        let after = net.forward(&x, false);
        assert_eq!(before.data(), after.data());
    }
}
