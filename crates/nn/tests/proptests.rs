//! Property-based tests for the neural-network crate.

use icoil_nn::layer::LayerKind;
use icoil_nn::{init, loss, Network, Tensor};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        prop::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |data| Tensor::from_vec(vec![m, n], data).unwrap())
    })
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions(logits in arb_matrix(8)) {
        let p = loss::softmax(&logits);
        let (n, c) = (p.shape()[0], p.shape()[1]);
        for i in 0..n {
            let row = &p.data()[i * c..(i + 1) * c];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(logits in arb_matrix(8)) {
        let p = loss::softmax(&logits);
        prop_assert_eq!(p.argmax_rows(), logits.argmax_rows());
    }

    #[test]
    fn entropy_nonnegative_and_bounded(
        raw in prop::collection::vec(0.001f64..1.0, 2..16),
    ) {
        let sum: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|v| v / sum).collect();
        let h = loss::entropy(&probs);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (probs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero(logits in arb_matrix(6)) {
        let n = logits.shape()[0];
        let c = logits.shape()[1];
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let (_, grad) = loss::cross_entropy(&logits, &labels);
        for i in 0..n {
            let s: f32 = grad.data()[i * c..(i + 1) * c].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(5),
        seed in 0u64..1000,
    ) {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let b = init::uniform(vec![k, 3], -1.0, 1.0, seed);
        let c = init::uniform(vec![k, 3], -1.0, 1.0, seed.wrapping_add(1));
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        let _ = m;
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn dense_backward_matches_finite_difference(seed in 0u64..100) {
        // no ReLU here: a pre-activation crossing zero within ±ε makes
        // the *numeric* gradient invalid at the kink (the analytic one is
        // fine); kink-free layers give a clean finite-difference oracle.
        // ReLU gradients are covered by directed unit tests.
        let mut net = Network::new(vec![
            LayerKind::dense(3, 4, seed),
            LayerKind::dense(4, 2, seed.wrapping_add(1)),
        ]);
        let x = init::uniform(vec![2, 3], -1.0, 1.0, seed.wrapping_add(2));
        let labels = [0usize, 1];
        let logits = net.forward(&x, true);
        let (_, grad) = loss::cross_entropy(&logits, &labels);
        net.backward(&grad);
        let analytic: Vec<Vec<f32>> = net
            .params_grads()
            .iter()
            .map(|(_, g)| g.data().to_vec())
            .collect();
        let eps = 1e-2f32;
        for pi in 0..analytic.len() {
            let k = 0;
            {
                let mut pg = net.params_grads();
                pg[pi].0.data_mut()[k] += eps;
            }
            let fp = loss::cross_entropy(&net.forward(&x, false), &labels).0;
            {
                let mut pg = net.params_grads();
                pg[pi].0.data_mut()[k] -= 2.0 * eps;
            }
            let fm = loss::cross_entropy(&net.forward(&x, false), &labels).0;
            {
                let mut pg = net.params_grads();
                pg[pi].0.data_mut()[k] += eps;
            }
            let num = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (num - analytic[pi][k]).abs() < 2e-2,
                "param {}: numeric {} vs analytic {}", pi, num, analytic[pi][k]
            );
        }
    }
}
