//! Property-based tests for the int8 quantization lane: quantizer
//! round-trip and saturation contracts, exact i32 accumulation at every
//! reduction length the iCOIL CNN uses, and calibration determinism
//! across calibration-set order.

use icoil_nn::quant::{dequantize_weight, quantize_weight_row};
use icoil_nn::simd::{self, KernelBackend};
use icoil_nn::{ActQuant, Network, QuantizedNetwork, Tensor};
use proptest::prelude::*;

/// The GEMM reduction lengths (`k_pad`, already rounded up to a multiple
/// of 32) of every conv and dense layer in the iCOIL IL architecture at
/// the deployed 64×64 BEV input: conv stack 27→32, 72→96, 144→160, then
/// dense 2048/128/64/32.
const ICOIL_K_PADS: [usize; 6] = [32, 64, 96, 128, 160, 2048];

fn bev_like_frames(count: usize, c: usize, hw: usize, seed: u64) -> Vec<Tensor> {
    (0..count)
        .map(|i| {
            let data: Vec<f32> = (0..c * hw * hw)
                .map(|j| {
                    let z = (seed as usize + i * 7919 + j * 37) % 101;
                    if j < (c - 1) * hw * hw {
                        (z as f32) / 100.0
                    } else {
                        (z as f32) / 50.0 - 1.0
                    }
                })
                .collect();
            Tensor::from_vec(vec![c, hw, hw], data).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn act_quant_round_trips_within_half_step(
        amin in -4.0f32..2.0,
        span in 0.01f32..4.0,
        t in 0.0f32..1.0,
    ) {
        let amax = amin + span;
        let q = ActQuant::from_range(amin, amax);
        prop_assert!(q.scale > 0.0);
        // any value inside the calibrated range round-trips within half
        // a quantization step (plus f32 rounding slack)
        let v = amin + t * span;
        let back = q.dequantize(q.quantize(v));
        prop_assert!(
            (v - back).abs() <= q.scale * 0.5 * (1.0 + 1e-4) + 1e-6,
            "{v} -> {back} (scale {})", q.scale
        );
    }

    #[test]
    fn act_quant_saturates_at_the_code_range_ends(
        amin in -4.0f32..2.0,
        span in 0.01f32..4.0,
        overshoot in 1.0f32..100.0,
    ) {
        let amax = amin + span;
        let q = ActQuant::from_range(amin, amax);
        // far out of range on either side clamps to the end codes —
        // codes can never leave [0, 127], the maddubs contract
        prop_assert_eq!(q.quantize(amax.max(0.0) + overshoot * q.scale * 200.0), 127);
        prop_assert_eq!(q.quantize(amin.min(0.0) - overshoot * q.scale * 200.0), 0);
        // and 0.0 is always exactly representable
        prop_assert_eq!(q.dequantize(q.quantize(0.0)), 0.0);
    }

    #[test]
    fn weight_rows_round_trip_and_saturate(
        row in prop::collection::vec(-8.0f32..8.0, 1..64),
        spike_at in 0usize..64,
        spike in 8.0f32..1e6,
    ) {
        let (codes, scale) = quantize_weight_row(&row);
        prop_assert!(scale > 0.0);
        for (&w, &c) in row.iter().zip(&codes) {
            prop_assert!(
                (w - dequantize_weight(c, scale)).abs()
                    <= scale * 0.5 * (1.0 + 1e-4) + 1e-6,
                "weight {w} code {c} scale {scale}"
            );
        }
        if row.iter().any(|&w| w != 0.0) {
            // the max-magnitude element lands exactly on ±127
            prop_assert_eq!(codes.iter().map(|&c| i32::from(c).abs()).max(), Some(127));
        }
        // a huge outlier saturates at ±127 rather than widening i8
        let mut spiked = row.clone();
        let i = spike_at % spiked.len();
        spiked[i] = if i % 2 == 0 { spike } else { -spike };
        let (codes, _) = quantize_weight_row(&spiked);
        prop_assert_eq!(i32::from(codes[i]).abs(), 127);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn i32_accumulators_are_exact_at_every_icoil_reduction_length(
        k_idx in 0usize..ICOIL_K_PADS.len(),
        a_fill in 0u32..128,
        b_fill in -127i32..128,
        jitter in any::<u64>(),
    ) {
        let a_fill = a_fill as u8;
        let b_fill = b_fill as i8;
        let k = ICOIL_K_PADS[k_idx];
        // worst case first: |k·127·127| must fit an i32 with room to spare
        prop_assert!((k as i64) * 127 * 127 < i64::from(i32::MAX));
        let (m, n) = (3usize, 5usize);
        let a: Vec<u8> = (0..m * k)
            .map(|i| {
                let z = (jitter as usize).wrapping_add(i * 31) % 129;
                if z == 128 { a_fill } else { (z % 128) as u8 }
            })
            .collect();
        let b: Vec<i8> = (0..n * k)
            .map(|i| {
                let z = (jitter as usize).wrapping_add(i * 17) % 256;
                if z == 255 { b_fill } else { (z as i32 - 127) as i8 }
            })
            .collect();
        let mut out = vec![0i32; m * n];
        simd::gemm_nt_i8(&a, m, k, &b, n, &mut out);
        // exact i64 reference: every accumulator must match bit for bit
        // (no silent wraparound anywhere in the reduction)
        for r in 0..m {
            for c in 0..n {
                let want: i64 = (0..k)
                    .map(|j| i64::from(a[r * k + j]) * i64::from(b[c * k + j]))
                    .sum();
                prop_assert_eq!(i64::from(out[r * n + c]), want, "acc[{},{}] k={}", r, c, k);
            }
        }
        // and the scalar reference agrees with whatever was dispatched
        let mut scalar = vec![0i32; m * n];
        simd::with_backend(KernelBackend::Scalar, || {
            simd::gemm_nt_i8(&a, m, k, &b, n, &mut scalar);
        });
        prop_assert_eq!(&out, &scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn calibration_is_deterministic_across_input_order(
        rotate in 0usize..4,
        reverse in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let net = Network::il_architecture((3, 16, 16), 5, seed);
        let frames = bev_like_frames(4, 3, 16, seed);
        let baseline = QuantizedNetwork::calibrate(&net, &frames);
        let mut shuffled = frames.clone();
        shuffled.rotate_left(rotate);
        if reverse {
            shuffled.reverse();
        }
        let permuted = QuantizedNetwork::calibrate(&net, &shuffled);
        // the whole struct — weights, scales, error bound, and the
        // sorted per-logit error list — is order-independent
        prop_assert_eq!(baseline, permuted);
    }
}
