//! Proves the inference hot path is allocation-free after warm-up.
//!
//! A counting global allocator wraps the system allocator; after two
//! warm-up calls size the [`InferBuffers`], repeated inference through
//! the full IL architecture must perform zero heap allocations.

use icoil_nn::{init, InferBuffers, Network};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn il_inference_is_allocation_free_after_warmup() {
    // The paper's IL architecture at the BEV input size used in-sim.
    let net = Network::il_architecture((2, 32, 32), 21, 0);
    let x = init::uniform(vec![1, 2, 32, 32], 0.0, 1.0, 1);
    let mut buf = InferBuffers::new();

    // Warm-up: first call sizes every buffer, second call confirms the
    // sizes are stable before counting starts.
    let _ = net.infer_proba(&x, &mut buf);
    let _ = net.infer_proba(&x, &mut buf);

    // The counter is process-wide and the libtest controller thread can
    // allocate concurrently (e.g. its slow-test watchdog under CPU
    // load), so measure several 10-frame windows and require one clean
    // window: a genuine per-frame allocation in the hot path taints
    // every window, harness noise does not.
    let mut checksum = 0.0f32;
    let mut cleanest = usize::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..10 {
            let p = net.infer_proba(&x, &mut buf);
            checksum += p.data()[0];
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert!(checksum.is_finite());
    assert_eq!(
        cleanest, 0,
        "inference allocated at least {cleanest} times in every 10-frame window"
    );
}
