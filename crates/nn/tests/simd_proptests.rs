//! Property-based differential tests for the SIMD kernel layer:
//! scalar-vs-dispatched agreement at deliberately awkward shapes (tail
//! lanes, zero-size edges) and matching NaN propagation. On machines
//! without AVX2 (or under `ICOIL_FORCE_SCALAR=1`) both sides run the
//! scalar path and the properties hold trivially.

use icoil_nn::simd::{self, KernelBackend};
use icoil_nn::Tensor;
use proptest::prelude::*;

/// Relative tolerance for the `"ulp"`-mode kernels: FMA contraction and
/// lane-split reductions reorder roundings but stay within a few ULP per
/// accumulation step.
fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0)
}

fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    // spans the lane boundary cases: < 8, exactly 8/16, and ragged tails
    (1usize..=19, 1usize..=19, 1usize..=35)
}

proptest! {
    #[test]
    fn matmul_backends_agree_at_awkward_shapes(
        (m, k, n) in arb_dims(),
        vals in prop::collection::vec(-4.0f32..4.0, 19 * 19 + 19 * 35),
    ) {
        let a = Tensor::from_vec(vec![m, k], vals[..m * k].to_vec()).unwrap();
        let b = Tensor::from_vec(vec![k, n], vals[m * k..m * k + k * n].to_vec()).unwrap();
        let scalar = simd::with_backend(KernelBackend::Scalar, || a.matmul(&b));
        let simd_out = simd::with_backend(simd::detected(), || a.matmul(&b));
        for (i, (x, y)) in scalar.data().iter().zip(simd_out.data()).enumerate() {
            prop_assert!(close(*x, *y), "matmul[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn matmul_nt_backends_agree_at_awkward_shapes(
        (m, k, n) in arb_dims(),
        vals in prop::collection::vec(-4.0f32..4.0, 19 * 19 + 19 * 35),
    ) {
        let a = Tensor::from_vec(vec![m, k], vals[..m * k].to_vec()).unwrap();
        let b = Tensor::from_vec(vec![n, k], vals[m * k..m * k + n * k].to_vec()).unwrap();
        let scalar = simd::with_backend(KernelBackend::Scalar, || a.matmul_nt(&b));
        let simd_out = simd::with_backend(simd::detected(), || a.matmul_nt(&b));
        for (i, (x, y)) in scalar.data().iter().zip(simd_out.data()).enumerate() {
            prop_assert!(close(*x, *y), "matmul_nt[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn nan_and_inf_propagation_matches_scalar(
        (m, k, n) in (1usize..=6, 1usize..=17, 1usize..=17),
        poison_at in 0usize..(6 * 17),
        use_inf in any::<bool>(),
    ) {
        // poison one `a` entry; both backends must produce the same
        // non-finite pattern (the zero-skip means a poisoned column of a
        // *zero* row would be skipped identically on both paths)
        let mut a_data: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.21).sin()).collect();
        a_data[poison_at % (m * k)] = if use_inf { f32::INFINITY } else { f32::NAN };
        let a = Tensor::from_vec(vec![m, k], a_data).unwrap();
        let b_data: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.13).cos()).collect();
        let b = Tensor::from_vec(vec![k, n], b_data).unwrap();
        let scalar = simd::with_backend(KernelBackend::Scalar, || a.matmul(&b));
        let simd_out = simd::with_backend(simd::detected(), || a.matmul(&b));
        for (i, (x, y)) in scalar.data().iter().zip(simd_out.data()).enumerate() {
            prop_assert_eq!(
                x.is_finite(),
                y.is_finite(),
                "finiteness[{}]: {} vs {}", i, x, y
            );
            prop_assert_eq!(x.is_nan(), y.is_nan(), "NaN[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn zero_size_edges_are_consistent(k in 0usize..9, n in 0usize..9) {
        // empty row / empty inner dimension: both backends must agree
        // exactly (empty sums are 0.0, never garbage)
        let a = Tensor::zeros(vec![0, k]);
        let b = Tensor::zeros(vec![k, n]);
        let c = a.matmul(&b);
        prop_assert_eq!(c.shape(), &[0, n]);
        let a1 = Tensor::full(vec![2, k], 1.5);
        let bt = Tensor::full(vec![n, k], -0.5);
        let scalar = simd::with_backend(KernelBackend::Scalar, || a1.matmul_nt(&bt));
        let simd_out = simd::with_backend(simd::detected(), || a1.matmul_nt(&bt));
        prop_assert_eq!(scalar.shape(), &[2, n]);
        for (x, y) in scalar.data().iter().zip(simd_out.data()) {
            prop_assert!(close(*x, *y));
        }
    }
}
