//! Reference-waypoint generation `{s*}` along the planned path.

use crate::config::CoConfig;
use crate::mpc::RefState;
use icoil_geom::{angle_diff, Vec2};
use icoil_planner::PlannedPath;

/// Arc-length table over a planned path, used to walk the reference
/// forward at the MPC rate.
#[derive(Debug, Clone)]
pub struct PathWalker {
    cumulative: Vec<f64>,
    cusps: Vec<f64>,
    total: f64,
}

impl PathWalker {
    /// Builds the arc-length table for a path.
    ///
    /// # Panics
    ///
    /// Panics for a path with fewer than 2 poses.
    pub fn new(path: &PlannedPath) -> Self {
        assert!(path.poses.len() >= 2, "path needs at least two poses");
        let mut cumulative = Vec::with_capacity(path.poses.len());
        let mut acc = 0.0;
        for (i, p) in path.poses.iter().enumerate() {
            if i > 0 {
                acc += p.position().distance(path.poses[i - 1].position());
            }
            cumulative.push(acc);
        }
        // gear-change arc positions (cusps) plus the terminal point
        let mut cusps = Vec::new();
        for ((prev, next), cum) in path
            .directions
            .iter()
            .zip(&path.directions[1..])
            .zip(&cumulative[1..])
        {
            if next != prev {
                cusps.push(*cum);
            }
        }
        cusps.push(acc);
        PathWalker {
            cumulative,
            cusps,
            total: acc,
        }
    }

    /// Total path length.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Index of the pose at arc length `s` (clamped).
    pub fn index_at(&self, s: f64) -> usize {
        let s = s.clamp(0.0, self.total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }

    /// Arc length of the pose with index `i`.
    pub fn s_of(&self, i: usize) -> f64 {
        self.cumulative[i.min(self.cumulative.len() - 1)]
    }

    /// Distance from `s` to the next cusp (gear change) or path end.
    pub fn distance_to_stop(&self, s: f64) -> f64 {
        for &c in &self.cusps {
            if c > s + 1e-9 {
                return c - s;
            }
        }
        0.0
    }

    /// Arc length of the path pose closest to `position`, restricted to
    /// the window `[s_lo, s_hi]`.
    ///
    /// Restricting the search keeps progress monotone across gear-change
    /// cusps, where poses from both branches overlap spatially and an
    /// unrestricted nearest-pose search would flip-flop between them.
    pub fn nearest_s_in_window(
        &self,
        path: &PlannedPath,
        position: Vec2,
        s_lo: f64,
        s_hi: f64,
    ) -> f64 {
        let lo = self.index_at(s_lo.max(0.0));
        let hi = self.index_at(s_hi.min(self.total));
        let mut best_i = lo;
        let mut best_d = f64::INFINITY;
        for i in lo..=hi.max(lo) {
            let d = path.poses[i].position().distance_sq(position);
            if d < best_d {
                best_d = d;
                best_i = i;
            }
        }
        self.cumulative[best_i]
    }
}

/// Builds the `H` reference states for the MPC starting at arc length
/// `s_start` along the path.
///
/// Reference speed ramps down approaching cusps and the goal; headings
/// are unwrapped relative to the current heading so the MPC's θ tracking
/// error never jumps by 2π.
pub fn build_reference_at(
    path: &PlannedPath,
    walker: &PathWalker,
    s_start: f64,
    heading: f64,
    config: &CoConfig,
) -> Vec<RefState> {
    let mut s = s_start.clamp(0.0, walker.total());
    let mut reference = Vec::with_capacity(config.horizon);
    let mut prev_theta = heading;
    for _ in 0..config.horizon {
        let d_stop = walker.distance_to_stop(s);
        let v_mag = speed_profile(d_stop, config.v_cruise);
        let idx = walker.index_at(s);
        let dir = path.directions[idx.min(path.directions.len() - 1)];
        // advance along the path by the distance covered in one MPC step
        s = (s + v_mag * config.mpc_dt).min(walker.total());
        let idx_next = walker.index_at(s);
        let pose = path.poses[idx_next.min(path.poses.len() - 1)];
        // unwrap heading w.r.t. the previous reference heading
        let theta = prev_theta + angle_diff(pose.theta, prev_theta);
        prev_theta = theta;
        let d_stop_next = walker.distance_to_stop(s);
        let v_ref = dir * speed_profile(d_stop_next, config.v_cruise);
        reference.push(RefState {
            x: pose.x,
            y: pose.y,
            theta,
            v: v_ref,
        });
    }
    reference
}

/// Convenience wrapper: builds the reference starting at the path pose
/// nearest to `position` (no progress memory — single-shot uses only;
/// the controller tracks progress explicitly via
/// [`build_reference_at`]).
pub fn build_reference(
    path: &PlannedPath,
    walker: &PathWalker,
    position: Vec2,
    heading: f64,
    config: &CoConfig,
) -> Vec<RefState> {
    let s0 = walker.s_of(path.nearest_index(position));
    build_reference_at(path, walker, s0, heading, config)
}

/// Speed magnitude given the remaining distance to the next stop point.
fn speed_profile(distance_to_stop: f64, v_cruise: f64) -> f64 {
    (0.15 + 0.7 * distance_to_stop).min(v_cruise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;

    fn straight_path(n: usize, spacing: f64) -> PlannedPath {
        PlannedPath {
            poses: (0..n)
                .map(|i| Pose2::new(i as f64 * spacing, 0.0, 0.0))
                .collect(),
            directions: vec![1.0; n],
        }
    }

    #[test]
    fn walker_total_and_lookup() {
        let p = straight_path(11, 1.0);
        let w = PathWalker::new(&p);
        assert!((w.total() - 10.0).abs() < 1e-12);
        assert_eq!(w.index_at(0.0), 0);
        assert_eq!(w.index_at(5.5), 5);
        assert_eq!(w.index_at(100.0), 10);
    }

    #[test]
    fn distance_to_stop_is_path_end_without_cusps() {
        let p = straight_path(11, 1.0);
        let w = PathWalker::new(&p);
        assert!((w.distance_to_stop(4.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cusp_detection() {
        let mut p = straight_path(11, 1.0);
        // gear change at index 5
        for d in p.directions.iter_mut().skip(5) {
            *d = -1.0;
        }
        let w = PathWalker::new(&p);
        assert!((w.distance_to_stop(2.0) - 3.0).abs() < 1e-12);
        assert!((w.distance_to_stop(6.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reference_progresses_and_slows_at_end() {
        let p = straight_path(21, 0.5);
        let w = PathWalker::new(&p);
        let config = CoConfig::default();
        let r = build_reference(&p, &w, Vec2::new(0.0, 0.1), 0.0, &config);
        assert_eq!(r.len(), config.horizon);
        // x must be non-decreasing along the reference
        for pair in r.windows(2) {
            assert!(pair[1].x >= pair[0].x - 1e-9);
        }
        // reference speed near the end is lower than at the start
        let r_end = build_reference(&p, &w, Vec2::new(9.5, 0.0), 0.0, &config);
        assert!(r_end[0].v.abs() < r[0].v.abs());
    }

    #[test]
    fn reverse_segment_gets_negative_reference_speed() {
        let p = PlannedPath {
            poses: (0..11)
                .map(|i| Pose2::new(5.0 - i as f64 * 0.5, 0.0, 0.0))
                .collect(),
            directions: vec![-1.0; 11],
        };
        let w = PathWalker::new(&p);
        let r = build_reference(&p, &w, Vec2::new(5.0, 0.0), 0.0, &CoConfig::default());
        assert!(r.iter().all(|s| s.v <= 0.0));
    }

    #[test]
    fn heading_unwrap_no_jump() {
        // path crossing the ±π heading cut
        let p = PlannedPath {
            poses: (0..20)
                .map(|i| {
                    let th = 3.0 + i as f64 * 0.05; // wraps past π
                    Pose2::new(i as f64 * 0.3, 0.0, th)
                })
                .collect(),
            directions: vec![1.0; 20],
        };
        let w = PathWalker::new(&p);
        let r = build_reference(&p, &w, Vec2::new(0.0, 0.0), 3.0, &CoConfig::default());
        for pair in r.windows(2) {
            assert!((pair[1].theta - pair[0].theta).abs() < 0.5, "theta jump");
        }
    }
}
