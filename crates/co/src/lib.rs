//! The constrained-optimization (CO) module `f_CO` of iCOIL (§IV-B).
//!
//! Per frame, the CO module:
//!
//! 1. maintains a global reference path to the parking bay (hybrid A*
//!    over the detected static boxes, re-planned when the vehicle strays
//!    or the path gets blocked);
//! 2. samples reference waypoints `{s*}` ahead of the vehicle along that
//!    path, with a speed profile that slows into cusps and the goal;
//! 3. solves the finite-horizon constrained optimization problem (6):
//!    minimize the waypoint-tracking cost (4) subject to action bounds
//!    and linearized collision-avoidance constraints (5), by sequential
//!    convexification — each convex subproblem is a QP handed to
//!    `icoil-solver` (the CVXPY stand-in);
//! 4. converts the first optimal control into a CARLA-style
//!    throttle/brake/steer/reverse [`Action`].
//!
//! [`Action`]: icoil_vehicle::Action
//!
//! # Example
//!
//! ```
//! use icoil_co::{CoConfig, CoController};
//! use icoil_world::{Difficulty, ScenarioConfig, World};
//! use icoil_world::episode::Observation;
//!
//! let scenario = ScenarioConfig::new(Difficulty::Easy, 2).build();
//! let mut world = World::new(scenario);
//! let mut co = CoController::new(CoConfig::default(), *world.vehicle_params());
//! let out = co.control(&Observation::new(&world), &world.obstacle_footprints());
//! assert!(out.action.validate().is_ok());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod controller;
pub mod mpc;
pub mod reference;
pub mod tracker;

pub use config::CoConfig;
pub use controller::{control_batch, CoController, CoOutput, CoSnapshot, SolveRecord};
pub use mpc::{
    build_mpc_qp, solve_mpc, solve_mpc_batch, solve_mpc_warm, MpcBatchJob, MpcMemory,
    MpcMemorySnapshot, MpcSolution, MpcStatus, RefState, MPC_QP_MAX_ITERS, MPC_REPLAN_VIOLATION,
};
pub use tracker::{BoxTracker, MovingObstacle};
