//! Frame-to-frame bounding-box tracking and velocity estimation.
//!
//! The MPC's collision constraint (5) is time-indexed: it needs the
//! obstacle position at *future* steps `o_{h+1,k}`. Detections are
//! per-frame boxes with no identity, so the controller tracks them by
//! nearest-center association and estimates velocities with exponential
//! smoothing (robust to the hard level's box jitter).

use icoil_geom::{Obb, Vec2};
use serde::{Deserialize, Serialize};

/// A tracked obstacle: current box plus smoothed velocity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovingObstacle {
    /// The detected box (as observed this frame).
    pub obb: Obb,
    /// Smoothed velocity estimate (m/s).
    pub velocity: Vec2,
}

impl MovingObstacle {
    /// A stationary obstacle.
    pub fn fixed(obb: Obb) -> Self {
        MovingObstacle {
            obb,
            velocity: Vec2::ZERO,
        }
    }

    /// The box extrapolated `dt` seconds ahead under constant velocity.
    pub fn predicted(&self, dt: f64) -> Obb {
        let mut obb = self.obb;
        obb.center += self.velocity * dt;
        obb
    }

    /// Returns `true` when the speed estimate is below `tol` (treated as
    /// part of the static scene for global planning).
    pub fn is_static(&self, tol: f64) -> bool {
        self.velocity.norm() < tol
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Track {
    smoothed_center: Vec2,
    /// Ring of recent smoothed centers; velocity is measured over this
    /// baseline, which suppresses per-frame jitter far better than a
    /// one-frame finite difference.
    history: std::collections::VecDeque<Vec2>,
    velocity: Vec2,
    last_box: Obb,
    missed: usize,
}

const HISTORY: usize = 12;

/// Associates detections across frames and maintains velocity estimates.
///
/// Serializable so session checkpoints carry track identity, smoothed
/// centers, and velocity EMAs — restoring replays bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoxTracker {
    tracks: Vec<Track>,
    /// EMA factor for the center position (higher = snappier).
    alpha_pos: f64,
    /// EMA factor for the velocity.
    alpha_vel: f64,
    /// Maximum association distance (m).
    gate: f64,
}

impl Default for BoxTracker {
    fn default() -> Self {
        BoxTracker {
            tracks: Vec::new(),
            alpha_pos: 0.35,
            alpha_vel: 0.3,
            gate: 1.5,
        }
    }
}

impl BoxTracker {
    /// Creates a tracker with default smoothing.
    pub fn new() -> Self {
        BoxTracker::default()
    }

    /// Clears all tracks (new episode).
    pub fn reset(&mut self) {
        self.tracks.clear();
    }

    /// Ingests this frame's detections (`dt` seconds since the previous
    /// frame) and returns the tracked obstacles.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive `dt`.
    pub fn update(&mut self, boxes: &[Obb], dt: f64) -> Vec<MovingObstacle> {
        assert!(dt > 0.0, "tracker dt must be positive");
        let mut used = vec![false; self.tracks.len()];
        let mut out = Vec::with_capacity(boxes.len());
        let mut new_tracks: Vec<Track> = Vec::new();
        for obb in boxes {
            // nearest unused track within the gate
            let mut best: Option<(usize, f64)> = None;
            for (i, t) in self.tracks.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let d = t.smoothed_center.distance(obb.center);
                if d < self.gate && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            match best {
                Some((i, _)) => {
                    used[i] = true;
                    let t = &mut self.tracks[i];
                    let prev = t.smoothed_center;
                    t.smoothed_center = prev + (obb.center - prev) * self.alpha_pos;
                    t.history.push_back(t.smoothed_center);
                    if t.history.len() > HISTORY {
                        t.history.pop_front();
                    }
                    if t.history.len() >= 2 {
                        let span = (t.history.len() - 1) as f64 * dt;
                        let baseline_v = (*t.history.back().expect("non-empty")
                            - *t.history.front().expect("non-empty"))
                            / span;
                        t.velocity =
                            t.velocity + (baseline_v - t.velocity) * self.alpha_vel;
                    }
                    t.last_box = *obb;
                    t.missed = 0;
                    // constraints consume the smoothed center: raw
                    // hard-level jitter would wobble the MPC's collision
                    // boundary by ±15 cm every frame
                    let mut smoothed_box = *obb;
                    smoothed_box.center = t.smoothed_center;
                    out.push(MovingObstacle {
                        obb: smoothed_box,
                        velocity: t.velocity,
                    });
                }
                None => {
                    let mut history = std::collections::VecDeque::with_capacity(HISTORY + 1);
                    history.push_back(obb.center);
                    new_tracks.push(Track {
                        smoothed_center: obb.center,
                        history,
                        velocity: Vec2::ZERO,
                        last_box: *obb,
                        missed: 0,
                    });
                    out.push(MovingObstacle::fixed(*obb));
                }
            }
        }
        // age out unmatched tracks (missed detections / phantoms)
        for (i, t) in self.tracks.iter_mut().enumerate() {
            if !used[i] {
                t.missed += 1;
            }
        }
        self.tracks.retain(|t| t.missed <= 10);
        self.tracks.extend(new_tracks);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;

    fn box_at(x: f64, y: f64) -> Obb {
        Obb::from_pose(Pose2::new(x, y, 0.0), 2.0, 1.0)
    }

    #[test]
    fn static_box_gets_zero_velocity() {
        let mut t = BoxTracker::new();
        let mut last = Vec::new();
        for _ in 0..30 {
            last = t.update(&[box_at(5.0, 5.0)], 0.05);
        }
        assert_eq!(last.len(), 1);
        assert!(last[0].velocity.norm() < 1e-6);
        assert!(last[0].is_static(0.2));
    }

    #[test]
    fn moving_box_velocity_converges() {
        let mut t = BoxTracker::new();
        let mut last = Vec::new();
        for i in 0..60 {
            let x = 5.0 + 0.8 * i as f64 * 0.05; // 0.8 m/s along +x
            last = t.update(&[box_at(x, 2.0)], 0.05);
        }
        let v = last[0].velocity;
        assert!((v.x - 0.8).abs() < 0.15, "vx {}", v.x);
        assert!(v.y.abs() < 0.1);
        assert!(!last[0].is_static(0.2));
        // prediction moves the box forward
        let pred = last[0].predicted(1.0);
        assert!(pred.center.x > last[0].obb.center.x + 0.5);
    }

    #[test]
    fn two_boxes_tracked_independently() {
        let mut t = BoxTracker::new();
        let mut last = Vec::new();
        for i in 0..40 {
            let dx = 0.5 * i as f64 * 0.05;
            last = t.update(&[box_at(0.0 + dx, 0.0), box_at(10.0 - dx, 0.0)], 0.05);
        }
        assert_eq!(last.len(), 2);
        assert!(last[0].velocity.x > 0.2);
        assert!(last[1].velocity.x < -0.2);
    }

    #[test]
    fn jittered_static_box_stays_static() {
        // hard-level jitter: ±0.15 m around a fixed center
        let mut t = BoxTracker::new();
        let mut last = Vec::new();
        let jitter = [0.1, -0.12, 0.05, -0.02, 0.14, -0.09, 0.03, -0.13];
        for i in 0..80 {
            let j = jitter[i % jitter.len()];
            last = t.update(&[box_at(5.0 + j, 5.0 - j)], 0.05);
        }
        assert!(
            last[0].is_static(0.5),
            "jittered static box velocity {:?}",
            last[0].velocity
        );
    }

    #[test]
    fn missed_then_reacquired_track_survives() {
        let mut t = BoxTracker::new();
        for _ in 0..10 {
            t.update(&[box_at(3.0, 3.0)], 0.05);
        }
        // five frames with no detection (false negatives)
        for _ in 0..5 {
            let out = t.update(&[], 0.05);
            assert!(out.is_empty());
        }
        let out = t.update(&[box_at(3.0, 3.0)], 0.05);
        assert_eq!(out.len(), 1);
        assert!(out[0].velocity.norm() < 0.3, "track must not see a jump");
    }

    #[test]
    fn reset_clears_tracks() {
        let mut t = BoxTracker::new();
        t.update(&[box_at(0.0, 0.0)], 0.05);
        t.reset();
        // after reset, the same box is a brand-new (zero-velocity) track
        let out = t.update(&[box_at(5.0, 5.0)], 0.05);
        assert_eq!(out[0].velocity, Vec2::ZERO);
    }
}
