//! The finite-horizon constrained optimization (6) solved by sequential
//! convexification.
//!
//! States are `s = (x, y, θ, v)` and controls `u = (a, δ)` under the
//! Ackermann model of §IV-B. Each SCP iteration linearizes the dynamics
//! and the collision constraints around a nominal rollout and solves the
//! resulting QP with the ADMM solver.
//!
//! The QP is posed in the **simultaneous** (multiple-shooting) form: the
//! decision vector is `z = [u_0 … u_{H−1}, s_1 … s_H]` with the
//! linearized dynamics as equality rows, rather than condensing the
//! states onto the controls. Condensing makes the cost Hessian fully
//! dense (and costs an `O(H²)` sensitivity propagation per SCP pass);
//! the simultaneous form keeps every matrix block-banded along the
//! horizon, which is exactly the structure the solver's sparse KKT
//! backend exploits. Constraints are emitted directly as sparse
//! triplets with a *structural* pattern — every coefficient that can be
//! nonzero for some linearization point is present (as an explicit zero
//! if need be), so the KKT sparsity pattern, and with it the solver's
//! cached symbolic factorization, is stable across SCP passes and
//! frames.

use crate::config::CoConfig;
use crate::tracker::MovingObstacle;
use icoil_geom::Obb;
use icoil_solver::{
    solve_qp_batch, solve_qp_warm, Backend, QpBatchJob, QpDiagnostics, QpProblem, QpSettings,
    QpSolution, QpStatus, QpWarmStart, QpWorkspace, QpWorkspaceSnapshot, TripletBuilder,
};
use icoil_vehicle::{VehicleParams, VehicleState};
use serde::{Deserialize, Serialize};

/// One reference waypoint `s*` of the tracking cost (4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefState {
    /// Target x (meters).
    pub x: f64,
    /// Target y (meters).
    pub y: f64,
    /// Target heading (radians, unwrapped by the reference builder).
    pub theta: f64,
    /// Target signed speed (m/s).
    pub v: f64,
}

/// Termination status of an MPC solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpcStatus {
    /// The solve produced a usable plan.
    #[default]
    Ok,
    /// An inner QP hit non-recoverable numerics (NaN/∞-poisoned data).
    /// The controls are zeros and must not be driven; the controller
    /// degrades to its safe braking action.
    NumericalError,
}

/// Result of [`solve_mpc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcSolution {
    /// Optimal controls `(accel, steer)` over the horizon.
    pub controls: Vec<[f64; 2]>,
    /// Predicted states `(x, y, θ, v)` from the final nonlinear rollout,
    /// length `horizon + 1` (starts at the current state).
    pub predicted: Vec<[f64; 4]>,
    /// Final tracking cost (4) along the predicted trajectory.
    pub tracking_cost: f64,
    /// Total ADMM iterations across all SCP passes.
    pub qp_iterations: usize,
    /// Worst predicted collision-constraint violation (meters; 0 = safe).
    pub predicted_violation: f64,
    /// Whether the solve produced a usable plan.
    #[serde(default)]
    pub status: MpcStatus,
    /// SCP linearization passes performed (including a cold fallback's).
    #[serde(default)]
    pub scp_passes: u32,
    /// Whether the warm-start pathology fallback re-solved this frame
    /// cold (whichever plan was kept).
    #[serde(default)]
    pub cold_restarted: bool,
    /// Resolved KKT backend of the inner QP solves.
    #[serde(default)]
    pub backend: Backend,
    /// Factorization accounting summed over all inner QP solves.
    #[serde(default)]
    pub diagnostics: QpDiagnostics,
}

const NX: usize = 4;
const NU: usize = 2;

/// Index of control component `j` of step `h` in the decision vector.
#[inline]
fn ui(h: usize, j: usize) -> usize {
    h * NU + j
}

/// Index of state component `i` of step `h ∈ 1..=H` in the decision
/// vector (states follow the `H` control pairs).
#[inline]
fn si(h_len: usize, h: usize, i: usize) -> usize {
    h_len * NU + (h - 1) * NX + i
}

/// Structural pattern of the Ackermann state Jacobian `A` ([`linearize`]):
/// every entry that is nonzero for *some* linearization point. Emitting
/// the full pattern (explicit zeros at, e.g., `v = 0`) keeps the
/// constraint sparsity — and the solver's cached symbolic factorization —
/// stable across SCP passes.
const A_PATTERN: [[bool; NX]; NX] = [
    [true, false, true, true],
    [false, true, true, true],
    [false, false, true, true],
    [false, false, false, true],
];

/// Structural pattern of the control Jacobian `B` ([`linearize`]).
const B_PATTERN: [[bool; NU]; NX] = [
    [false, false],
    [false, false],
    [false, true],
    [true, false],
];

/// Per-SCP-pass ADMM iteration budget of the inner QP.
///
/// Public so conformance checks can tell a *converged* solve from one
/// that ran out of budget: a solve whose total [`MpcSolution::qp_iterations`]
/// reaches `scp_iterations * MPC_QP_MAX_ITERS` never converged in any pass.
pub const MPC_QP_MAX_ITERS: usize = 1500;

/// Predicted safety-margin penetration (meters) above which a
/// warm-started solve is not trusted without a second opinion.
///
/// SCP multi-modality means a warm seed can settle in a cheaper but
/// *less safe* basin than a cold solve of the same frame would find.
/// Whenever the warm plan predicts more than this much violation,
/// [`solve_mpc_warm`] re-solves the frame cold and keeps the safer
/// (then cheaper) of the two plans. Conformance checks reuse the
/// constant as their divergence slack so the contract and the fallback
/// trigger stay aligned.
pub const MPC_REPLAN_VIOLATION: f64 = 0.1;

/// Warm-start state carried across MPC frames and SCP iterations.
///
/// Receding-horizon MPC re-solves a nearly-identical problem every frame,
/// so three kinds of state are worth keeping:
///
/// * the previous frame's optimal controls, *shifted* one step forward
///   (and the last step repeated) as the next frame's SCP nominal — the
///   classic shift-and-extend initialization;
/// * the previous QP iterate, warm-starting ADMM both across SCP
///   iterations within a frame and across frames;
/// * the QP solver's [`QpWorkspace`] (cached Ruiz scaling, KKT
///   factorization — including the sparse backend's symbolic analysis,
///   which keys on the KKT pattern and survives every value change —
///   and adapted ρ).
///
/// A fresh (or [`reset`](MpcMemory::reset)) memory reproduces the cold
/// [`solve_mpc`] behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct MpcMemory {
    controls: Option<Vec<[f64; NU]>>,
    warm: Option<QpWarmStart>,
    workspace: QpWorkspace,
}

/// Serializable image of an [`MpcMemory`] for session checkpoints.
///
/// Carries exactly the state that influences subsequent solver iterates:
/// the shift-and-extend control seed, the QP warm-start vectors, and the
/// iterate-affecting workspace slice ([`QpWorkspaceSnapshot`]). Cached
/// factorizations are deliberately omitted — they are recomputed
/// bit-identically on the next solve.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpcMemorySnapshot {
    /// Previous frame's optimal controls (the SCP nominal seed).
    pub controls: Option<Vec<[f64; NU]>>,
    /// Previous QP iterate (primal/dual warm start).
    pub warm: Option<QpWarmStart>,
    /// Iterate-affecting solver workspace state (Ruiz scaling, adapted ρ).
    pub workspace: QpWorkspaceSnapshot,
}

impl MpcMemory {
    /// A fresh memory: the next solve starts cold.
    pub fn new() -> Self {
        MpcMemory::default()
    }

    /// Drops all carried state (controls, QP iterate, solver workspace).
    ///
    /// Call after discontinuities — a reference switch, a gear change in
    /// the maneuver plan, or a large state jump — where the previous
    /// solution stops being a useful prediction.
    pub fn reset(&mut self) {
        self.controls = None;
        self.warm = None;
        self.workspace.clear();
    }

    /// Whether a previous solution is being carried.
    pub fn is_warm(&self) -> bool {
        self.controls.is_some()
    }

    /// Captures the complete warm-start state for a session checkpoint:
    /// the previous controls, the QP iterate, and the iterate-affecting
    /// slice of the solver workspace. Restoring via
    /// [`MpcMemory::from_snapshot`] replays subsequent solves
    /// bit-identically to the uninterrupted memory.
    pub fn snapshot(&self) -> MpcMemorySnapshot {
        MpcMemorySnapshot {
            controls: self.controls.clone(),
            warm: self.warm.clone(),
            workspace: self.workspace.snapshot(),
        }
    }

    /// Rebuilds a memory from a checkpoint (see [`MpcMemory::snapshot`]).
    pub fn from_snapshot(snap: &MpcMemorySnapshot) -> Self {
        MpcMemory {
            controls: snap.controls.clone(),
            warm: snap.warm.clone(),
            workspace: QpWorkspace::from_snapshot(&snap.workspace),
        }
    }

    /// Shift-and-extend initialization: previous controls advanced one
    /// step, final step repeated. Falls back to zeros on a horizon
    /// mismatch or a cold memory.
    fn seeded_nominal(&self, h_len: usize) -> Vec<[f64; NU]> {
        match &self.controls {
            Some(prev) if prev.len() == h_len => {
                let mut u: Vec<[f64; NU]> = prev[1..].to_vec();
                u.push(*prev.last().expect("non-empty horizon"));
                u
            }
            _ => vec![[0.0; NU]; h_len],
        }
    }
}

/// Solves the MPC problem for the current state.
///
/// `obstacles` are the tracked boxes `z_i` with velocity estimates; the
/// collision constraint (5) is enforced against each obstacle's
/// constant-velocity *prediction* `o_{h+1,k}` at every horizon step,
/// exactly as the paper's time-indexed formulation requires.
///
/// # Panics
///
/// Panics when `reference` is empty or the config is invalid.
pub fn solve_mpc(
    state: &VehicleState,
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
) -> MpcSolution {
    solve_mpc_warm(state, reference, obstacles, params, config, &mut MpcMemory::new())
}

/// Solves the MPC problem, carrying warm-start state in `memory`.
///
/// Equivalent to [`solve_mpc`] when `memory` is fresh; on subsequent
/// frames the previous solution seeds the SCP nominal (shift-and-extend)
/// and the QP iterate, which typically cuts ADMM iterations severalfold
/// at identical solution tolerances.
///
/// # Panics
///
/// Panics when `reference` is empty or the config is invalid.
pub fn solve_mpc_warm(
    state: &VehicleState,
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
    memory: &mut MpcMemory,
) -> MpcSolution {
    let mut frame = ScpFrame::new(state, reference, obstacles, params, config, memory);
    for _scp in 0..frame.pass_budget() {
        if !frame.running() {
            break;
        }
        frame.solve_pass_solo();
    }
    frame.finish()
}

/// One MPC problem of a [`solve_mpc_batch`] call.
pub struct MpcBatchJob<'a> {
    /// Ego state of this frame.
    pub state: &'a VehicleState,
    /// Reference horizon (must be non-empty).
    pub reference: &'a [RefState],
    /// Tracked obstacles with velocity estimates.
    pub obstacles: &'a [MovingObstacle],
    /// Vehicle parameters.
    pub params: &'a VehicleParams,
    /// CO configuration (must be valid).
    pub config: &'a CoConfig,
    /// Warm-start memory carried across this session's frames.
    pub memory: &'a mut MpcMemory,
}

/// Solves several independent MPC problems, batching the inner QP solves.
///
/// The SCP passes run in lockstep across the jobs: each pass, every live
/// job linearizes around its own nominal and the resulting QPs are
/// grouped by structure (dimensions, `P`/`A` sparsity pattern, backend).
/// Groups of two or more solve as one block-diagonal program through the
/// solver's [`QpBatch`](icoil_solver::QpBatch) — one symbolic phase, one
/// numeric refactor pass, lockstep ADMM — while singletons take the
/// sequential path. Horizons of equal length produced by the same config
/// share their structure by construction, so a serve worker draining one
/// deadline queue batches essentially every frame.
///
/// Every per-job computation is the sequential code ([`ScpFrame`] and the
/// solver's batched-vs-sequential bit-equality contract), so the returned
/// solutions and the final memory states are bit-identical to calling
/// [`solve_mpc_warm`] once per job. The warm-start pathology fallback
/// (cold re-solve) runs solo per job, exactly as sequentially.
///
/// # Panics
///
/// Panics when any job's reference is empty or its config is invalid.
pub fn solve_mpc_batch(jobs: Vec<MpcBatchJob<'_>>) -> Vec<MpcSolution> {
    let settings = QpSettings {
        max_iters: MPC_QP_MAX_ITERS,
        eps_abs: 3e-4,
        ..QpSettings::default()
    };
    let mut frames: Vec<ScpFrame<'_>> = jobs
        .into_iter()
        .map(|j| ScpFrame::new(j.state, j.reference, j.obstacles, j.params, j.config, j.memory))
        .collect();
    let max_passes = frames.iter().map(|f| f.pass_budget()).max().unwrap_or(0);
    for pass in 0..max_passes {
        // each live frame linearizes around its own nominal
        struct PassJob<'f> {
            idx: usize,
            qp: QpProblem,
            warm: Option<&'f QpWarmStart>,
            workspace: &'f mut QpWorkspace,
        }
        let mut pass_jobs: Vec<PassJob<'_>> = Vec::new();
        for (idx, f) in frames.iter_mut().enumerate() {
            if !f.running() || pass >= f.pass_budget() {
                continue;
            }
            let qp = f.build_pass_qp();
            let mem = &mut *f.memory;
            pass_jobs.push(PassJob {
                idx,
                qp,
                warm: mem.warm.as_ref(),
                workspace: &mut mem.workspace,
            });
        }
        // group by the structural compatibility QpBatch requires
        let compatible = |a: &QpProblem, b: &QpProblem| {
            a.num_vars() == b.num_vars()
                && a.num_constraints() == b.num_constraints()
                && a.p().same_pattern(b.p())
                && a.a().same_pattern(b.a())
                && a.backend() == b.backend()
        };
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for j in 0..pass_jobs.len() {
            let pos = groups
                .iter()
                .position(|g| compatible(&pass_jobs[g[0]].qp, &pass_jobs[j].qp));
            match pos {
                Some(g) => groups[g].push(j),
                None => groups.push(vec![j]),
            }
        }
        let mut gid = vec![0usize; pass_jobs.len()];
        for (g, members) in groups.iter().enumerate() {
            for &j in members {
                gid[j] = g;
            }
        }
        let mut grouped: Vec<Vec<PassJob<'_>>> = (0..groups.len()).map(|_| Vec::new()).collect();
        for (j, pj) in pass_jobs.into_iter().enumerate() {
            grouped[gid[j]].push(pj);
        }
        // singletons take the sequential path; larger groups batch
        let mut sols: Vec<(usize, QpSolution)> = Vec::new();
        for mut group in grouped {
            if group.len() == 1 {
                let pj = group.pop().expect("non-empty group");
                let sol = solve_qp_warm(&pj.qp, &settings, pj.warm, pj.workspace);
                sols.push((pj.idx, sol));
            } else {
                let idxs: Vec<usize> = group.iter().map(|pj| pj.idx).collect();
                let qjobs: Vec<QpBatchJob<'_>> = group
                    .iter_mut()
                    .map(|pj| QpBatchJob {
                        problem: &pj.qp,
                        warm: pj.warm,
                        workspace: &mut *pj.workspace,
                    })
                    .collect();
                let group_sols =
                    solve_qp_batch(qjobs, &settings).expect("grouped QPs share their structure");
                sols.extend(idxs.into_iter().zip(group_sols));
            }
        }
        for (idx, sol) in sols {
            frames[idx].absorb(sol);
        }
    }
    frames.into_iter().map(|f| f.finish()).collect()
}

/// The per-frame SCP state shared by the sequential and batched solvers.
///
/// [`solve_mpc_warm`] drives one frame through
/// `new → (build_pass_qp → solve → absorb)* → finish`;
/// [`solve_mpc_batch`] drives many frames through the *same* methods in
/// lockstep, handing each pass's QPs to the batched solver. Both paths
/// run identical per-frame arithmetic, which is what makes the batch
/// bit-identical to sequential solves.
struct ScpFrame<'a> {
    state: &'a VehicleState,
    reference: &'a [RefState],
    obstacles: &'a [MovingObstacle],
    params: &'a VehicleParams,
    config: &'a CoConfig,
    memory: &'a mut MpcMemory,
    s0: [f64; NX],
    h_len: usize,
    dt: f64,
    was_warm: bool,
    settings: QpSettings,
    nominal_u: Vec<[f64; NU]>,
    qp_iters_total: usize,
    status: MpcStatus,
    scp_passes: u32,
    backend: Backend,
    diagnostics: QpDiagnostics,
}

impl<'a> ScpFrame<'a> {
    /// Frame setup: seeds the nominal (shift-and-extend) and the QP
    /// primal guess from the carried memory.
    ///
    /// # Panics
    ///
    /// Panics when `reference` is empty or the config is invalid.
    fn new(
        state: &'a VehicleState,
        reference: &'a [RefState],
        obstacles: &'a [MovingObstacle],
        params: &'a VehicleParams,
        config: &'a CoConfig,
        memory: &'a mut MpcMemory,
    ) -> Self {
        assert!(!reference.is_empty(), "reference horizon must be non-empty");
        config.validate().expect("valid CO config");
        let h_len = reference.len();
        let dt = config.mpc_dt;
        let s0 = [state.pose.x, state.pose.y, state.pose.theta, state.velocity];
        let was_warm = memory.is_warm();
        let settings = QpSettings {
            max_iters: MPC_QP_MAX_ITERS,
            eps_abs: 3e-4,
            ..QpSettings::default()
        };
        let nominal_u = memory.seeded_nominal(h_len);
        // the shifted controls (with their rollout states) are also the
        // best primal guess for the QP
        if memory.is_warm() {
            let x = pack_primal(&s0, &nominal_u, params, dt);
            match memory.warm.as_mut() {
                Some(w) => w.x = x,
                None => memory.warm = Some(QpWarmStart { x, y: Vec::new() }),
            }
        }
        ScpFrame {
            state,
            reference,
            obstacles,
            params,
            config,
            memory,
            s0,
            h_len,
            dt,
            was_warm,
            settings,
            nominal_u,
            qp_iters_total: 0,
            status: MpcStatus::Ok,
            scp_passes: 0,
            backend: Backend::Dense,
            diagnostics: QpDiagnostics::default(),
        }
    }

    /// Configured number of SCP passes.
    fn pass_budget(&self) -> usize {
        self.config.scp_iterations
    }

    /// Whether further passes are useful (no numerical failure yet).
    fn running(&self) -> bool {
        self.status == MpcStatus::Ok
    }

    /// The linearized QP of the next pass: nonlinear nominal rollout,
    /// then one QP assembled around it.
    fn build_pass_qp(&self) -> QpProblem {
        let nominal_s = rollout(&self.s0, &self.nominal_u, self.params, self.dt);
        assemble_qp(
            &self.nominal_u,
            &nominal_s,
            self.reference,
            self.obstacles,
            self.params,
            self.config,
        )
    }

    /// Builds, solves and absorbs one pass through the sequential QP path.
    fn solve_pass_solo(&mut self) {
        let qp = self.build_pass_qp();
        let mem = &mut *self.memory;
        let sol = solve_qp_warm(&qp, &self.settings, mem.warm.as_ref(), &mut mem.workspace);
        self.absorb(sol);
    }

    /// Folds one pass's QP solution into the frame: nominal update, warm
    /// iterate, accounting, and the numerical-failure bail-out.
    fn absorb(&mut self, sol: QpSolution) {
        self.qp_iters_total += sol.iterations;
        self.scp_passes += 1;
        self.backend = sol.backend;
        self.diagnostics.absorb(&sol.diagnostics);
        if sol.status == QpStatus::NumericalError {
            // NaN/∞-poisoned data: nothing from this frame is drivable or
            // worth carrying into the next one
            self.status = MpcStatus::NumericalError;
            self.memory.reset();
            self.nominal_u = vec![[0.0; NU]; self.h_len];
            return;
        }
        for (hh, u) in self.nominal_u.iter_mut().enumerate().take(self.h_len) {
            *u = [
                sol.x[ui(hh, 0)].clamp(-self.params.max_brake, self.params.max_accel),
                sol.x[ui(hh, 1)].clamp(-self.params.max_steer, self.params.max_steer),
            ];
        }
        // Carry the primal only: the dual belongs to *this* linearization's
        // constraint rows, and re-linearized collision rows next pass can
        // make a stale dual misleading enough to cost solution quality.
        self.memory.warm = Some(QpWarmStart {
            x: sol.x,
            y: Vec::new(),
        });
    }

    /// Final rollout, cost/violation accounting, and the warm-start
    /// pathology fallback (solo cold re-solve when warranted).
    fn finish(self) -> MpcSolution {
        let ScpFrame {
            state,
            reference,
            obstacles,
            params,
            config,
            memory,
            s0,
            h_len: _,
            dt,
            was_warm,
            settings,
            mut nominal_u,
            qp_iters_total,
            mut status,
            scp_passes,
            backend,
            diagnostics,
        } = self;
        if status == MpcStatus::Ok {
            memory.controls = Some(nominal_u.clone());
        }

        // final nonlinear rollout and diagnostics
        let predicted = rollout(&s0, &nominal_u, params, dt);
        let mut tracking_cost = 0.0;
        for (h, r) in reference.iter().enumerate() {
            let s = predicted[h + 1];
            let e = [s[0] - r.x, s[1] - r.y, s[2] - r.theta, s[3] - r.v];
            for (w, ev) in config.q_weights.iter().zip(&e) {
                tracking_cost += w * ev * ev;
            }
        }
        let circles = params.coverage_circles();
        let mut violation = 0.0f64;
        for (h, s) in predicted.iter().enumerate().skip(1) {
            for mo in obstacles {
                let obb = &mo.predicted(h as f64 * dt);
                for &(off, radius) in &circles {
                    let pc = icoil_geom::Vec2::new(
                        s[0] + off * s[2].cos(),
                        s[1] + off * s[2].sin(),
                    );
                    let d = obb.distance_to_point(pc);
                    violation = violation.max(radius + config.safety_margin - d);
                }
            }
        }

        // Belt-and-suspenders: a plan that is non-finite anywhere is not a
        // plan, whatever the inner QP statuses said.
        if status == MpcStatus::Ok
            && !(nominal_u.iter().flatten().all(|v| v.is_finite())
                && predicted.iter().flatten().all(|v| v.is_finite())
                && tracking_cost.is_finite())
        {
            status = MpcStatus::NumericalError;
            memory.reset();
            nominal_u.fill([0.0; NU]);
        }

        let warm_solution = MpcSolution {
            controls: nominal_u,
            predicted,
            tracking_cost,
            qp_iterations: qp_iters_total,
            predicted_violation: violation.max(0.0),
            status,
            scp_passes,
            cold_restarted: false,
            backend,
            diagnostics,
        };

        // Two warm-start pathologies call for a second opinion:
        //  * every SCP pass burned its full ADMM budget without converging —
        //    the seed may have stranded the solver in a bad basin (e.g.
        //    carried across a reference discontinuity the caller didn't
        //    reset for), leaving a near-garbage capped iterate; or the frame
        //    is genuinely hard and the warm iterate is the best available;
        //  * the converged warm plan predicts meaningful safety-margin
        //    penetration — SCP multi-modality can put the warm seed in a
        //    cheaper but less safe basin than a cold solve would find.
        // Telling a bad basin from a hard frame needs a reference, so
        // re-solve the frame cold and keep whichever solution is better —
        // safer first, cheaper on a tie — charging both solves' iterations
        // to the result for honest accounting.
        let capped = qp_iters_total >= config.scp_iterations * settings.max_iters;
        if was_warm
            && status == MpcStatus::Ok
            && (capped || warm_solution.predicted_violation > MPC_REPLAN_VIOLATION)
        {
            let warm_iterate = memory.warm.clone();
            memory.reset();
            let cold_solution = solve_mpc_warm(state, reference, obstacles, params, config, memory);
            // a failed cold solve reports predicted_violation 0.0 on its
            // zero-control sentinel — it must never look "safer" than the
            // warm plan it was meant to double-check
            let cold_better = cold_solution.status == MpcStatus::Ok
                && (cold_solution.predicted_violation < warm_solution.predicted_violation - 1e-9
                    || (cold_solution.predicted_violation
                        <= warm_solution.predicted_violation + 1e-9
                        && cold_solution.tracking_cost <= warm_solution.tracking_cost));
            if cold_better {
                let mut sol = cold_solution;
                sol.qp_iterations += warm_solution.qp_iterations;
                sol.scp_passes += warm_solution.scp_passes;
                sol.diagnostics.absorb(&warm_solution.diagnostics);
                sol.cold_restarted = true;
                return sol;
            }
            // the warm iterate stands: restore the memory the cold re-solve
            // overwrote (the workspace keeps the cold scaling — it is a
            // cache revalidated against the problem data on every solve)
            memory.controls = Some(warm_solution.controls.clone());
            memory.warm = warm_iterate;
            let mut sol = warm_solution;
            sol.qp_iterations += cold_solution.qp_iterations;
            sol.scp_passes += cold_solution.scp_passes;
            sol.diagnostics.absorb(&cold_solution.diagnostics);
            sol.cold_restarted = true;
            return sol;
        }

        warm_solution
    }
}

/// Packs controls and their nonlinear rollout into the simultaneous
/// decision vector `z = [u_0 … u_{H−1}, s_1 … s_H]`.
fn pack_primal(s0: &[f64; NX], controls: &[[f64; NU]], params: &VehicleParams, dt: f64) -> Vec<f64> {
    let h_len = controls.len();
    let states = rollout(s0, controls, params, dt);
    let mut z = vec![0.0f64; h_len * (NU + NX)];
    for (h, u) in controls.iter().enumerate() {
        for (j, &uj) in u.iter().enumerate() {
            z[ui(h, j)] = uj;
        }
    }
    for h in 1..=h_len {
        for i in 0..NX {
            z[si(h_len, h, i)] = states[h][i];
        }
    }
    z
}

/// Assembles the QP of one SCP pass around the nominal trajectory
/// `(nominal_u, nominal_s)` — `nominal_s` must be the rollout of
/// `nominal_u` from the current state (its entry 0).
///
/// Decision vector: `z = [u_0 … u_{H−1}, s_1 … s_H]`. Blocks:
///
/// * cost — tracking weights on the state variables and effort/rate
///   weights on the controls (block-diagonal `P`, pattern fixed per
///   config);
/// * dynamics — `s_{h+1} − A_h·s_h − B_h·u_h = f(s̄_h, ū_h) − A_h·s̄_h −
///   B_h·ū_h` as equality rows (`l = u`), with the *structural* Jacobian
///   patterns [`A_PATTERN`]/[`B_PATTERN`] emitted in full;
/// * bounds — single-entry rows for control boxes and velocity limits;
/// * collision — for each active (step, obstacle, coverage-circle)
///   triple, a 3-entry row on `(x, y, θ)` of `s_h` (the linearized
///   signed-distance constraint (5)).
fn assemble_qp(
    nominal_u: &[[f64; NU]],
    nominal_s: &[[f64; NX]],
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
) -> QpProblem {
    let h_len = reference.len();
    let nz = h_len * (NU + NX);
    let dt = config.mpc_dt;

    // --- quadratic cost: block-diagonal, pattern fixed per config ---
    let mut p = TripletBuilder::with_capacity(nz, nz, nz + 4 * NU * h_len);
    let mut q = vec![0.0f64; nz];
    for (h, r) in reference.iter().enumerate() {
        let target = [r.x, r.y, r.theta, r.v];
        for (i, &t) in target.iter().enumerate() {
            let w = config.q_weights[i];
            let idx = si(h_len, h + 1, i);
            p.push(idx, idx, 2.0 * w);
            q[idx] = -2.0 * w * t;
        }
    }
    for hh in 0..h_len {
        for j in 0..NU {
            p.push(ui(hh, j), ui(hh, j), 2.0 * config.r_weights[j]);
        }
    }
    // control-rate smoothing: Σ_h w_j (u_{h,j} − u_{h−1,j})²
    for hh in 1..h_len {
        for j in 0..NU {
            let w = config.r_rate[j];
            let a = ui(hh, j);
            let b = ui(hh - 1, j);
            p.push(a, a, 2.0 * w);
            p.push(b, b, 2.0 * w);
            p.push(a, b, -2.0 * w);
            p.push(b, a, -2.0 * w);
        }
    }

    // --- constraint rows, emitted as triplets ---
    let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(10 * NX * h_len);
    let mut lo: Vec<f64> = Vec::with_capacity((NX + NU + 1) * h_len);
    let mut hi: Vec<f64> = Vec::with_capacity((NX + NU + 1) * h_len);
    let mut row = 0usize;

    // dynamics equalities: s_{h+1} − A_h·s_h − B_h·u_h = rhs_h. The
    // nominal starts at the current state (s̄_0 = s_0 exactly), so the
    // first step has no state columns — s_1 relates to u_0 alone.
    for h in 0..h_len {
        let (a_lin, b_lin) = linearize(&nominal_s[h], &nominal_u[h], params, dt);
        let f_nom = step_model(&nominal_s[h], &nominal_u[h], params, dt);
        for i in 0..NX {
            entries.push((row, si(h_len, h + 1, i), 1.0));
            let mut rhs = f_nom[i];
            if h > 0 {
                for j in 0..NX {
                    if A_PATTERN[i][j] {
                        entries.push((row, si(h_len, h, j), -a_lin[i][j]));
                    }
                    rhs -= a_lin[i][j] * nominal_s[h][j];
                }
            }
            for j in 0..NU {
                if B_PATTERN[i][j] {
                    entries.push((row, ui(h, j), -b_lin[i][j]));
                }
                rhs -= b_lin[i][j] * nominal_u[h][j];
            }
            lo.push(rhs);
            hi.push(rhs);
            row += 1;
        }
    }
    // control boxes
    for hh in 0..h_len {
        entries.push((row, ui(hh, 0), 1.0));
        lo.push(-params.max_brake);
        hi.push(params.max_accel);
        row += 1;
        entries.push((row, ui(hh, 1), 1.0));
        lo.push(-params.max_steer);
        hi.push(params.max_steer);
        row += 1;
    }
    // velocity bounds: direct bounds on the state variables
    for h in 1..=h_len {
        entries.push((row, si(h_len, h, 3), 1.0));
        lo.push(-params.max_reverse_speed);
        hi.push(params.max_speed);
        row += 1;
    }
    // collision constraints: the shared coverage circles per pose
    let circles = params.coverage_circles();
    for (h, &sbar) in nominal_s.iter().enumerate().take(h_len + 1).skip(1) {
        for mo in obstacles {
            let t_ahead = h as f64 * dt;
            let inflation = if mo.velocity.norm() > 0.05 {
                config.prediction_inflation * t_ahead
            } else {
                0.0
            };
            let obb = &mo.predicted(t_ahead).inflated(inflation);
            // skip far-away obstacles (inactive constraints)
            if obb.distance_to_point(icoil_geom::Vec2::new(sbar[0], sbar[1])) > 8.0 {
                continue;
            }
            for &(off, radius) in &circles {
                let circle_radius = radius + config.safety_margin;
                let (ct, st) = (sbar[2].cos(), sbar[2].sin());
                let pc = icoil_geom::Vec2::new(sbar[0] + off * ct, sbar[1] + off * st);
                let (cp, n_hat) = boundary_point_and_normal(obb, pc);
                if n_hat == icoil_geom::Vec2::ZERO {
                    continue;
                }
                // n̂·pc(s_h) ≥ n̂·cp + R, linearized around s̄_h: the
                // circle center depends on (x, y, θ) of s_h only
                let coeff = [
                    n_hat.x,
                    n_hat.y,
                    -n_hat.x * off * st + n_hat.y * off * ct,
                ];
                for (i, &c) in coeff.iter().enumerate() {
                    entries.push((row, si(h_len, h, i), c));
                }
                let base = n_hat.dot(pc - cp);
                let nominal_term =
                    coeff[0] * sbar[0] + coeff[1] * sbar[1] + coeff[2] * sbar[2];
                lo.push(circle_radius - base + nominal_term);
                hi.push(1e9);
                row += 1;
            }
        }
    }

    let m = row;
    let mut a = TripletBuilder::with_capacity(m, nz, entries.len());
    for (r, c, v) in entries {
        a.push(r, c, v);
    }
    // bounds may cross when the nominal deeply violates a constraint;
    // relax the lower bound in that case (slack-like behaviour)
    for (l, h) in lo.iter_mut().zip(&hi) {
        if *l > *h {
            *l = *h;
        }
    }
    QpProblem::from_sparse(p.build(), q, a.build(), lo, hi)
        .expect("well-formed MPC QP")
        .with_backend(config.qp_backend)
}

/// Assembles (without solving) the QP of one SCP pass around the given
/// nominal controls — the exact problem [`solve_mpc`] hands to the ADMM
/// solver when seeded with those controls. Exposed for benchmarks and
/// conformance tooling that probe the KKT structure of the MPC problem.
///
/// # Panics
///
/// Panics when `nominal_u` and `reference` lengths differ, the reference
/// is empty, or the config is invalid.
pub fn build_mpc_qp(
    state: &VehicleState,
    nominal_u: &[[f64; 2]],
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
) -> QpProblem {
    assert!(!reference.is_empty(), "reference horizon must be non-empty");
    assert_eq!(nominal_u.len(), reference.len(), "one control per reference step");
    config.validate().expect("valid CO config");
    let s0 = [state.pose.x, state.pose.y, state.pose.theta, state.velocity];
    let nominal_s = rollout(&s0, nominal_u, params, config.mpc_dt);
    assemble_qp(nominal_u, &nominal_s, reference, obstacles, params, config)
}

/// Closest boundary point and outward unit normal of an OBB for a query
/// point. For points *inside* the box the nearest face is used, so the
/// linearized constraint pushes a penetrating nominal back out through
/// the closest face instead of deeper in.
fn boundary_point_and_normal(obb: &Obb, p: icoil_geom::Vec2) -> (icoil_geom::Vec2, icoil_geom::Vec2) {
    use icoil_geom::Vec2;
    let local = (p - obb.center).rotated(-obb.theta);
    let inside = local.x.abs() <= obb.half_length && local.y.abs() <= obb.half_width;
    let (cp_local, n_local) = if inside {
        // distance to each face; exit through the nearest one
        let dx_pos = obb.half_length - local.x;
        let dx_neg = local.x + obb.half_length;
        let dy_pos = obb.half_width - local.y;
        let dy_neg = local.y + obb.half_width;
        let min = dx_pos.min(dx_neg).min(dy_pos).min(dy_neg);
        if min == dx_pos {
            (Vec2::new(obb.half_length, local.y), Vec2::new(1.0, 0.0))
        } else if min == dx_neg {
            (Vec2::new(-obb.half_length, local.y), Vec2::new(-1.0, 0.0))
        } else if min == dy_pos {
            (Vec2::new(local.x, obb.half_width), Vec2::new(0.0, 1.0))
        } else {
            (Vec2::new(local.x, -obb.half_width), Vec2::new(0.0, -1.0))
        }
    } else {
        let cp = Vec2::new(
            local.x.clamp(-obb.half_length, obb.half_length),
            local.y.clamp(-obb.half_width, obb.half_width),
        );
        ((cp), (local - cp).normalized())
    };
    (
        obb.center + cp_local.rotated(obb.theta),
        n_local.rotated(obb.theta),
    )
}

/// Discrete Ackermann step used inside the MPC (simple Euler on v, exact
/// enough at `mpc_dt` because the controller re-solves every frame).
fn step_model(s: &[f64; NX], u: &[f64; NU], params: &VehicleParams, dt: f64) -> [f64; NX] {
    let v_next = (s[3] + u[0] * dt).clamp(-params.max_reverse_speed, params.max_speed);
    let steer = u[1].clamp(-params.max_steer, params.max_steer);
    let omega = s[3] * steer.tan() / params.wheelbase;
    [
        s[0] + s[3] * s[2].cos() * dt,
        s[1] + s[3] * s[2].sin() * dt,
        s[2] + omega * dt,
        v_next,
    ]
}

/// Jacobians `(A, B)` of [`step_model`] at `(s, u)`.
fn linearize(
    s: &[f64; NX],
    u: &[f64; NU],
    params: &VehicleParams,
    dt: f64,
) -> ([[f64; NX]; NX], [[f64; NU]; NX]) {
    let (sin_t, cos_t) = s[2].sin_cos();
    let steer = u[1].clamp(-params.max_steer, params.max_steer);
    let tan_d = steer.tan();
    let sec2 = 1.0 + tan_d * tan_d;
    let l = params.wheelbase;
    let a = [
        [1.0, 0.0, -s[3] * sin_t * dt, cos_t * dt],
        [0.0, 1.0, s[3] * cos_t * dt, sin_t * dt],
        [0.0, 0.0, 1.0, tan_d * dt / l],
        [0.0, 0.0, 0.0, 1.0],
    ];
    let b = [
        [0.0, 0.0],
        [0.0, 0.0],
        [0.0, s[3] * sec2 * dt / l],
        [dt, 0.0],
    ];
    (a, b)
}

/// Nonlinear rollout of the MPC model.
fn rollout(s0: &[f64; NX], controls: &[[f64; NU]], params: &VehicleParams, dt: f64) -> Vec<[f64; NX]> {
    let mut out = Vec::with_capacity(controls.len() + 1);
    out.push(*s0);
    let mut s = *s0;
    for u in controls {
        s = step_model(&s, u, params, dt);
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::{Pose2, Vec2};

    fn straight_reference(h: usize, v: f64, dt: f64) -> Vec<RefState> {
        (1..=h)
            .map(|i| RefState {
                x: v * dt * i as f64,
                y: 0.0,
                theta: 0.0,
                v,
            })
            .collect()
    }

    #[test]
    fn tracks_straight_reference() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        // first control accelerates forward with no steering
        assert!(sol.controls[0][0] > 0.2, "accel {}", sol.controls[0][0]);
        assert!(sol.controls[0][1].abs() < 0.1, "steer {}", sol.controls[0][1]);
        assert_eq!(sol.predicted.len(), config.horizon + 1);
    }

    #[test]
    fn steers_toward_lateral_offset() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        // reference displaced to the left (+y)
        let state = VehicleState::new(Pose2::default(), 1.0);
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: 1.0 * config.mpc_dt * i as f64,
                y: 1.0,
                theta: 0.0,
                v: 1.0,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert!(sol.controls[0][1] > 0.05, "must steer left, got {}", sol.controls[0][1]);
    }

    #[test]
    fn reverse_reference_produces_negative_accel() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: -0.8 * config.mpc_dt * i as f64,
                y: 0.0,
                theta: 0.0,
                v: -0.8,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert!(sol.controls[0][0] < -0.1, "accel {}", sol.controls[0][0]);
        assert!(sol.predicted.last().unwrap()[3] < 0.0);
    }

    #[test]
    fn respects_control_bounds() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        // absurd far reference to push the controls to their limits
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: 50.0 * i as f64,
                y: 50.0,
                theta: 1.5,
                v: params.max_speed,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        for u in &sol.controls {
            assert!(u[0] <= params.max_accel + 1e-6 && u[0] >= -params.max_brake - 1e-6);
            assert!(u[1].abs() <= params.max_steer + 1e-6);
        }
    }

    #[test]
    fn obstacle_ahead_deflects_or_slows() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 1.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let free = solve_mpc(&state, &reference, &[], &params, &config);
        // wall ahead, clear of the car at t = 0 but reached by the horizon
        let wall = Obb::from_pose(Pose2::new(6.0, 0.0, 0.0), 1.5, 6.0);
        let blocked = solve_mpc(&state, &reference, &[MovingObstacle::fixed(wall)], &params, &config);
        // with the wall the predicted end point stays short of it or dodges
        let end_free = free.predicted.last().unwrap();
        let end_blocked = blocked.predicted.last().unwrap();
        let progressed = end_blocked[0] < end_free[0] - 0.2;
        let dodged = end_blocked[1].abs() > 0.3;
        assert!(
            progressed || dodged,
            "free end {end_free:?} vs blocked end {end_blocked:?}"
        );
        assert!(blocked.predicted_violation < 0.35, "violation {}", blocked.predicted_violation);
    }

    #[test]
    fn prediction_matches_model_rollout() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::new(1.0, 2.0, 0.3), 0.5);
        let reference = straight_reference(config.horizon, 1.0, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        let manual = rollout(
            &[1.0, 2.0, 0.3, 0.5],
            &sol.controls,
            &params,
            config.mpc_dt,
        );
        assert_eq!(sol.predicted, manual);
    }

    #[test]
    fn tracking_cost_decreases_with_scp_iterations() {
        let params = VehicleParams::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let one = CoConfig {
            scp_iterations: 1,
            ..CoConfig::default()
        };
        let three = CoConfig {
            scp_iterations: 3,
            ..CoConfig::default()
        };
        // curved reference requires re-linearization to track well
        let reference: Vec<RefState> = (1..=one.horizon)
            .map(|i| {
                let t = i as f64 * one.mpc_dt;
                RefState {
                    x: 1.5 * t,
                    y: 0.3 * t * t,
                    theta: (0.6 * t).atan(),
                    v: 1.5,
                }
            })
            .collect();
        let c1 = solve_mpc(&state, &reference, &[], &params, &one).tracking_cost;
        let c3 = solve_mpc(&state, &reference, &[], &params, &three).tracking_cost;
        assert!(c3 <= c1 * 1.05, "SCP should not hurt: {c1} -> {c3}");
    }

    #[test]
    fn predicted_mover_is_anticipated() {
        // A mover approaching the ego's lane from the left: its *current*
        // box never blocks the straight reference, but its prediction
        // crosses it mid-horizon. With prediction the plan must differ
        // (slow down or dodge) from the frozen-obstacle plan.
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 1.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mover_box = Obb::from_pose(Pose2::new(6.0, 4.0, -std::f64::consts::FRAC_PI_2), 2.0, 2.0);
        let frozen = solve_mpc(
            &state,
            &reference,
            &[MovingObstacle::fixed(mover_box)],
            &params,
            &config,
        );
        let moving = solve_mpc(
            &state,
            &reference,
            &[MovingObstacle { obb: mover_box, velocity: Vec2::new(0.0, -2.0) }],
            &params,
            &config,
        );
        // frozen: box sits 4 m to the left, never in the way → full speed
        let end_frozen = frozen.predicted.last().unwrap();
        let end_moving = moving.predicted.last().unwrap();
        assert!(
            end_moving[0] < end_frozen[0] - 0.2 || end_moving[1].abs() > 0.3,
            "prediction must alter the plan: frozen {end_frozen:?} vs moving {end_moving:?}"
        );
        assert!(moving.predicted_violation < 0.3, "violation {}", moving.predicted_violation);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_panics() {
        let params = VehicleParams::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let _ = solve_mpc(&state, &[], &[], &params, &CoConfig::default());
    }

    #[test]
    fn fresh_memory_reproduces_cold_solve() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let cold = solve_mpc(&state, &reference, &[], &params, &config);
        let warm = solve_mpc_warm(
            &state,
            &reference,
            &[],
            &params,
            &config,
            &mut MpcMemory::new(),
        );
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_frames_cut_admm_iterations() {
        // simulate a receding-horizon run: apply the first control, step
        // the model, re-solve. Warm memory must spend fewer total ADMM
        // iterations than per-frame cold solves, with matching controls.
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let dt = config.mpc_dt;
        let mut memory = MpcMemory::new();

        let mut s_warm = [0.0, 0.0, 0.0, 0.5];
        let mut s_cold = s_warm;
        let mut warm_iters = 0usize;
        let mut cold_iters = 0usize;
        for frame in 0..6 {
            let reference: Vec<RefState> = (1..=config.horizon)
                .map(|i| RefState {
                    x: s_warm[0] + 1.5 * dt * i as f64,
                    y: 0.0,
                    theta: 0.0,
                    v: 1.5,
                })
                .collect();
            let warm_state =
                VehicleState::new(Pose2::new(s_warm[0], s_warm[1], s_warm[2]), s_warm[3]);
            let warm = solve_mpc_warm(&warm_state, &reference, &[], &params, &config, &mut memory);
            let cold_state =
                VehicleState::new(Pose2::new(s_cold[0], s_cold[1], s_cold[2]), s_cold[3]);
            let cold = solve_mpc(&cold_state, &reference, &[], &params, &config);
            if frame > 0 {
                warm_iters += warm.qp_iterations;
                cold_iters += cold.qp_iterations;
                // both land on essentially the same control
                assert!(
                    (warm.controls[0][0] - cold.controls[0][0]).abs() < 0.05
                        && (warm.controls[0][1] - cold.controls[0][1]).abs() < 0.05,
                    "frame {frame}: warm {:?} vs cold {:?}",
                    warm.controls[0],
                    cold.controls[0]
                );
            }
            s_warm = step_model(&s_warm, &warm.controls[0], &params, dt);
            s_cold = step_model(&s_cold, &cold.controls[0], &params, dt);
        }
        assert!(memory.is_warm());
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} vs cold {cold_iters} total ADMM iterations"
        );
    }

    #[test]
    fn memory_reset_restores_cold_behaviour() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mut memory = MpcMemory::new();
        let first = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut memory);
        assert!(memory.is_warm());
        memory.reset();
        assert!(!memory.is_warm());
        let again = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut memory);
        assert_eq!(first, again);
    }

    #[test]
    fn nan_reference_degrades_to_a_status_not_a_panic() {
        // Regression: a NaN reference poisons the QP cost, which used to
        // escalate the KKT regularization until an assert fired. The MPC
        // must instead report NumericalError with zero-control sentinels
        // and a reset memory.
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 1.0);
        let mut reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        reference[3].x = f64::NAN;
        let mut memory = MpcMemory::new();
        let sol = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut memory);
        assert_eq!(sol.status, MpcStatus::NumericalError);
        assert!(sol.controls.iter().flatten().all(|v| *v == 0.0));
        assert!(!memory.is_warm(), "failure must reset the memory");
        assert!(sol.scp_passes >= 1);

        // the same memory must serve the next (healthy) frame cold and
        // reproduce the cold solution exactly
        let good_ref = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let recovered = solve_mpc_warm(&state, &good_ref, &[], &params, &config, &mut memory);
        assert_eq!(recovered.status, MpcStatus::Ok);
        assert_eq!(recovered, solve_mpc(&state, &good_ref, &[], &params, &config));
    }

    #[test]
    fn nan_state_degrades_to_a_status_not_a_panic() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::new(f64::NAN, 0.0, 0.0), 1.0);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert_eq!(sol.status, MpcStatus::NumericalError);
        assert!(sol.controls.iter().flatten().all(|v| *v == 0.0));
    }

    #[test]
    fn batched_solves_are_bit_identical_to_sequential() {
        // four sessions at distinct states tracking shifted references:
        // same config → same QP structure → one batched group per pass
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let dt = config.mpc_dt;
        let states: Vec<VehicleState> = (0..4)
            .map(|i| {
                VehicleState::new(
                    Pose2::new(0.3 * i as f64, 0.1 * i as f64, 0.05 * i as f64),
                    0.4 + 0.2 * i as f64,
                )
            })
            .collect();
        let refs: Vec<Vec<RefState>> = states
            .iter()
            .map(|s| {
                (1..=config.horizon)
                    .map(|i| RefState {
                        x: s.pose.x + 1.5 * dt * i as f64,
                        y: s.pose.y,
                        theta: s.pose.theta,
                        v: 1.5,
                    })
                    .collect()
            })
            .collect();

        let mut seq_mem: Vec<MpcMemory> = (0..4).map(|_| MpcMemory::new()).collect();
        let mut bat_mem: Vec<MpcMemory> = (0..4).map(|_| MpcMemory::new()).collect();
        // two rounds: cold, then warm with carried memories
        for round in 0..2 {
            let seq: Vec<MpcSolution> = states
                .iter()
                .zip(&refs)
                .zip(&mut seq_mem)
                .map(|((s, r), mem)| solve_mpc_warm(s, r, &[], &params, &config, mem))
                .collect();
            let jobs: Vec<MpcBatchJob<'_>> = states
                .iter()
                .zip(&refs)
                .zip(&mut bat_mem)
                .map(|((s, r), mem)| MpcBatchJob {
                    state: s,
                    reference: r,
                    obstacles: &[],
                    params: &params,
                    config: &config,
                    memory: mem,
                })
                .collect();
            let bat = solve_mpc_batch(jobs);
            assert_eq!(seq, bat, "round {round}");
        }
        for (s, b) in seq_mem.iter().zip(&bat_mem) {
            assert_eq!(s.is_warm(), b.is_warm());
            assert_eq!(s.controls, b.controls);
        }
    }

    #[test]
    fn batch_width_one_equals_solo_solve() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mut m1 = MpcMemory::new();
        let mut m2 = MpcMemory::new();
        let solo = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut m1);
        let batched = solve_mpc_batch(vec![MpcBatchJob {
            state: &state,
            reference: &reference,
            obstacles: &[],
            params: &params,
            config: &config,
            memory: &mut m2,
        }])
        .remove(0);
        assert_eq!(solo, batched);
    }

    #[test]
    fn batch_isolates_a_poisoned_session() {
        // one NaN-poisoned job must fail alone without corrupting its
        // batchmates, each of which must match its sequential solve
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let good = VehicleState::new(Pose2::default(), 1.0);
        let bad = VehicleState::new(Pose2::new(f64::NAN, 0.0, 0.0), 1.0);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mut mems: Vec<MpcMemory> = (0..3).map(|_| MpcMemory::new()).collect();
        let states = [&good, &bad, &good];
        let jobs: Vec<MpcBatchJob<'_>> = states
            .iter()
            .zip(&mut mems)
            .map(|(s, mem)| MpcBatchJob {
                state: s,
                reference: &reference,
                obstacles: &[],
                params: &params,
                config: &config,
                memory: mem,
            })
            .collect();
        let sols = solve_mpc_batch(jobs);
        assert_eq!(sols[1].status, MpcStatus::NumericalError);
        assert!(sols[1].controls.iter().flatten().all(|v| *v == 0.0));
        let solo = solve_mpc(&good, &reference, &[], &params, &config);
        assert_eq!(sols[0], solo);
        assert_eq!(sols[2], solo);
        assert!(!mems[1].is_warm(), "failed job resets its memory");
    }

    #[test]
    fn solutions_carry_solver_accounting() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert_eq!(sol.status, MpcStatus::Ok);
        assert_eq!(sol.scp_passes as usize, config.scp_iterations);
        assert!(!sol.cold_restarted);
        assert!(sol.diagnostics.factorizations >= 1);
        assert!(
            sol.backend == Backend::Dense || sol.backend == Backend::Sparse,
            "backend must be resolved, got {:?}",
            sol.backend
        );
    }
}
