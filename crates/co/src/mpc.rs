//! The finite-horizon constrained optimization (6) solved by sequential
//! convexification.
//!
//! States are `s = (x, y, θ, v)` and controls `u = (a, δ)` under the
//! Ackermann model of §IV-B. Each SCP iteration linearizes the dynamics
//! and the collision constraints around a nominal rollout, condenses the
//! states onto the control vector (single shooting), and solves the
//! resulting QP with the ADMM solver.

use crate::config::CoConfig;
use crate::tracker::MovingObstacle;
use icoil_geom::Obb;
use icoil_solver::{solve_qp_warm, Mat, QpProblem, QpSettings, QpWarmStart, QpWorkspace};
use icoil_vehicle::{VehicleParams, VehicleState};
use serde::{Deserialize, Serialize};

/// One reference waypoint `s*` of the tracking cost (4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefState {
    /// Target x (meters).
    pub x: f64,
    /// Target y (meters).
    pub y: f64,
    /// Target heading (radians, unwrapped by the reference builder).
    pub theta: f64,
    /// Target signed speed (m/s).
    pub v: f64,
}

/// Result of [`solve_mpc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcSolution {
    /// Optimal controls `(accel, steer)` over the horizon.
    pub controls: Vec<[f64; 2]>,
    /// Predicted states `(x, y, θ, v)` from the final nonlinear rollout,
    /// length `horizon + 1` (starts at the current state).
    pub predicted: Vec<[f64; 4]>,
    /// Final tracking cost (4) along the predicted trajectory.
    pub tracking_cost: f64,
    /// Total ADMM iterations across all SCP passes.
    pub qp_iterations: usize,
    /// Worst predicted collision-constraint violation (meters; 0 = safe).
    pub predicted_violation: f64,
}

const NX: usize = 4;
const NU: usize = 2;

/// Per-SCP-pass ADMM iteration budget of the inner QP.
///
/// Public so conformance checks can tell a *converged* solve from one
/// that ran out of budget: a solve whose total [`MpcSolution::qp_iterations`]
/// reaches `scp_iterations * MPC_QP_MAX_ITERS` never converged in any pass.
pub const MPC_QP_MAX_ITERS: usize = 1500;

/// Predicted safety-margin penetration (meters) above which a
/// warm-started solve is not trusted without a second opinion.
///
/// SCP multi-modality means a warm seed can settle in a cheaper but
/// *less safe* basin than a cold solve of the same frame would find.
/// Whenever the warm plan predicts more than this much violation,
/// [`solve_mpc_warm`] re-solves the frame cold and keeps the safer
/// (then cheaper) of the two plans. Conformance checks reuse the
/// constant as their divergence slack so the contract and the fallback
/// trigger stay aligned.
pub const MPC_REPLAN_VIOLATION: f64 = 0.1;

/// Warm-start state carried across MPC frames and SCP iterations.
///
/// Receding-horizon MPC re-solves a nearly-identical problem every frame,
/// so three kinds of state are worth keeping:
///
/// * the previous frame's optimal controls, *shifted* one step forward
///   (and the last step repeated) as the next frame's SCP nominal — the
///   classic shift-and-extend initialization;
/// * the previous QP iterate, warm-starting ADMM both across SCP
///   iterations within a frame and across frames;
/// * the QP solver's [`QpWorkspace`] (cached Ruiz scaling, Cholesky
///   factor, adapted ρ).
///
/// A fresh (or [`reset`](MpcMemory::reset)) memory reproduces the cold
/// [`solve_mpc`] behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct MpcMemory {
    controls: Option<Vec<[f64; NU]>>,
    warm: Option<QpWarmStart>,
    workspace: QpWorkspace,
}

impl MpcMemory {
    /// A fresh memory: the next solve starts cold.
    pub fn new() -> Self {
        MpcMemory::default()
    }

    /// Drops all carried state (controls, QP iterate, solver workspace).
    ///
    /// Call after discontinuities — a reference switch, a gear change in
    /// the maneuver plan, or a large state jump — where the previous
    /// solution stops being a useful prediction.
    pub fn reset(&mut self) {
        self.controls = None;
        self.warm = None;
        self.workspace.clear();
    }

    /// Whether a previous solution is being carried.
    pub fn is_warm(&self) -> bool {
        self.controls.is_some()
    }

    /// Shift-and-extend initialization: previous controls advanced one
    /// step, final step repeated. Falls back to zeros on a horizon
    /// mismatch or a cold memory.
    fn seeded_nominal(&self, h_len: usize) -> Vec<[f64; NU]> {
        match &self.controls {
            Some(prev) if prev.len() == h_len => {
                let mut u: Vec<[f64; NU]> = prev[1..].to_vec();
                u.push(*prev.last().expect("non-empty horizon"));
                u
            }
            _ => vec![[0.0; NU]; h_len],
        }
    }
}

/// Solves the MPC problem for the current state.
///
/// `obstacles` are the tracked boxes `z_i` with velocity estimates; the
/// collision constraint (5) is enforced against each obstacle's
/// constant-velocity *prediction* `o_{h+1,k}` at every horizon step,
/// exactly as the paper's time-indexed formulation requires.
///
/// # Panics
///
/// Panics when `reference` is empty or the config is invalid.
pub fn solve_mpc(
    state: &VehicleState,
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
) -> MpcSolution {
    solve_mpc_warm(state, reference, obstacles, params, config, &mut MpcMemory::new())
}

/// Solves the MPC problem, carrying warm-start state in `memory`.
///
/// Equivalent to [`solve_mpc`] when `memory` is fresh; on subsequent
/// frames the previous solution seeds the SCP nominal (shift-and-extend)
/// and the QP iterate, which typically cuts ADMM iterations severalfold
/// at identical solution tolerances.
///
/// # Panics
///
/// Panics when `reference` is empty or the config is invalid.
pub fn solve_mpc_warm(
    state: &VehicleState,
    reference: &[RefState],
    obstacles: &[MovingObstacle],
    params: &VehicleParams,
    config: &CoConfig,
    memory: &mut MpcMemory,
) -> MpcSolution {
    assert!(!reference.is_empty(), "reference horizon must be non-empty");
    config.validate().expect("valid CO config");
    let h_len = reference.len();
    let nz = NU * h_len;
    let dt = config.mpc_dt;

    let s0 = [state.pose.x, state.pose.y, state.pose.theta, state.velocity];
    let was_warm = memory.is_warm();
    let settings = QpSettings {
        max_iters: MPC_QP_MAX_ITERS,
        eps_abs: 3e-4,
        ..QpSettings::default()
    };
    let mut nominal_u = memory.seeded_nominal(h_len);
    // the shifted controls are also the best primal guess for the QP
    if memory.is_warm() {
        let x: Vec<f64> = nominal_u.iter().flatten().copied().collect();
        match memory.warm.as_mut() {
            Some(w) => w.x = x,
            None => memory.warm = Some(QpWarmStart { x, y: Vec::new() }),
        }
    }
    let mut qp_iters_total = 0usize;
    let mut z_solution = vec![0.0f64; nz];

    for _scp in 0..config.scp_iterations {
        // --- nonlinear nominal rollout ---
        let nominal_s = rollout(&s0, &nominal_u, params, dt);

        // --- linearization and condensing: s_h = c_h + G_h · z ---
        // G is stored per step as a flat NX × nz row-major matrix.
        let mut c = vec![[0.0f64; NX]; h_len + 1];
        let mut g = vec![vec![0.0f64; NX * nz]; h_len + 1];
        c[0] = s0;
        for h in 0..h_len {
            let (a_mat, b_mat) = linearize(&nominal_s[h], &nominal_u[h], params, dt);
            let f_nom = step_model(&nominal_s[h], &nominal_u[h], params, dt);
            // c_{h+1} = f(s̄, ū) + A (c_h − s̄) − B ū
            let mut c_next = f_nom;
            for i in 0..NX {
                for j in 0..NX {
                    c_next[i] += a_mat[i][j] * (c[h][j] - nominal_s[h][j]);
                }
                for j in 0..NU {
                    c_next[i] -= b_mat[i][j] * nominal_u[h][j];
                }
            }
            c[h + 1] = c_next;
            // G_{h+1} = A G_h; then add B into the u_h block
            for i in 0..NX {
                for col in 0..nz {
                    let mut acc = 0.0;
                    for j in 0..NX {
                        acc += a_mat[i][j] * g[h][j * nz + col];
                    }
                    g[h + 1][i * nz + col] = acc;
                }
                for j in 0..NU {
                    g[h + 1][i * nz + (h * NU + j)] += b_mat[i][j];
                }
            }
        }

        // --- quadratic cost assembly ---
        let mut p = Mat::zeros(nz, nz);
        let mut q = vec![0.0f64; nz];
        for (h, r) in reference.iter().enumerate() {
            let gh = &g[h + 1];
            let e = [
                c[h + 1][0] - r.x,
                c[h + 1][1] - r.y,
                c[h + 1][2] - r.theta,
                c[h + 1][3] - r.v,
            ];
            for i in 0..NX {
                let w = config.q_weights[i];
                if w == 0.0 {
                    continue;
                }
                let row = &gh[i * nz..(i + 1) * nz];
                for a in 0..nz {
                    if row[a] == 0.0 {
                        continue;
                    }
                    q[a] += 2.0 * w * row[a] * e[i];
                    for b in 0..nz {
                        *p.at_mut(a, b) += 2.0 * w * row[a] * row[b];
                    }
                }
            }
        }
        for hh in 0..h_len {
            for j in 0..NU {
                let idx = hh * NU + j;
                *p.at_mut(idx, idx) += 2.0 * config.r_weights[j];
            }
        }
        // control-rate smoothing: Σ_h w_j (u_{h,j} − u_{h−1,j})²
        for hh in 1..h_len {
            for j in 0..NU {
                let w = config.r_rate[j];
                if w == 0.0 {
                    continue;
                }
                let a = hh * NU + j;
                let b = (hh - 1) * NU + j;
                *p.at_mut(a, a) += 2.0 * w;
                *p.at_mut(b, b) += 2.0 * w;
                *p.at_mut(a, b) -= 2.0 * w;
                *p.at_mut(b, a) -= 2.0 * w;
            }
        }

        // --- constraint rows ---
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut lo: Vec<f64> = Vec::new();
        let mut hi: Vec<f64> = Vec::new();

        // control boxes
        for hh in 0..h_len {
            let mut row_a = vec![0.0; nz];
            row_a[hh * NU] = 1.0;
            rows.push(row_a);
            lo.push(-params.max_brake);
            hi.push(params.max_accel);
            let mut row_d = vec![0.0; nz];
            row_d[hh * NU + 1] = 1.0;
            rows.push(row_d);
            lo.push(-params.max_steer);
            hi.push(params.max_steer);
        }
        // velocity bounds via the condensed map
        for h in 1..=h_len {
            let gh = &g[h];
            rows.push(gh[3 * nz..4 * nz].to_vec());
            lo.push(-params.max_reverse_speed - c[h][3]);
            hi.push(params.max_speed - c[h][3]);
        }
        // collision constraints: the shared coverage circles per pose
        let circles = params.coverage_circles();
        let nominal_s_now = rollout(&s0, &nominal_u, params, dt);
        for h in 1..=h_len {
            let sbar = nominal_s_now[h];
            for mo in obstacles {
                let t_ahead = h as f64 * dt;
                let inflation = if mo.velocity.norm() > 0.05 {
                    config.prediction_inflation * t_ahead
                } else {
                    0.0
                };
                let obb = &mo.predicted(t_ahead).inflated(inflation);
                // skip far-away obstacles (inactive constraints)
                if obb.distance_to_point(icoil_geom::Vec2::new(sbar[0], sbar[1])) > 8.0 {
                    continue;
                }
                for &(off, radius) in &circles {
                    let circle_radius = radius + config.safety_margin;
                    let (ct, st) = (sbar[2].cos(), sbar[2].sin());
                    let pc = icoil_geom::Vec2::new(sbar[0] + off * ct, sbar[1] + off * st);
                    let (cp, n_hat) = boundary_point_and_normal(obb, pc);
                    if n_hat == icoil_geom::Vec2::ZERO {
                        continue;
                    }
                    // row = n̂ᵀ Jc G_h over (x, y, θ)
                    let gh = &g[h];
                    let mut row = vec![0.0; nz];
                    for a in 0..nz {
                        let gx = gh[a];
                        let gy = gh[nz + a];
                        let gth = gh[2 * nz + a];
                        row[a] = n_hat.x * (gx - off * st * gth)
                            + n_hat.y * (gy + off * ct * gth);
                    }
                    // n̂ᵀ(p̄c − cp) + n̂ᵀ Jc (c_h − s̄_h) + row·z ≥ R
                    let jc_dx = (c[h][0] - sbar[0]) - off * st * (c[h][2] - sbar[2]);
                    let jc_dy = (c[h][1] - sbar[1]) + off * ct * (c[h][2] - sbar[2]);
                    let base = n_hat.dot(pc - cp) + n_hat.x * jc_dx + n_hat.y * jc_dy;
                    rows.push(row);
                    lo.push(circle_radius - base);
                    hi.push(1e9);
                }
            }
        }

        let m = rows.len();
        let mut a_mat = Mat::zeros(m, nz);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    *a_mat.at_mut(i, j) = v;
                }
            }
        }
        // bounds may cross when the nominal deeply violates a constraint;
        // relax the lower bound in that case (slack-like behaviour)
        for i in 0..m {
            if lo[i] > hi[i] {
                lo[i] = hi[i];
            }
        }
        let qp = QpProblem::new(p, q, a_mat, lo, hi).expect("well-formed MPC QP");
        let sol = solve_qp_warm(&qp, &settings, memory.warm.as_ref(), &mut memory.workspace);
        qp_iters_total += sol.iterations;
        // Carry the primal only: the dual belongs to *this* linearization's
        // constraint rows, and re-linearized collision rows next pass can
        // make a stale dual misleading enough to cost solution quality.
        memory.warm = Some(QpWarmStart {
            x: sol.x.clone(),
            y: Vec::new(),
        });
        z_solution = sol.x;
        for hh in 0..h_len {
            nominal_u[hh] = [
                z_solution[hh * NU].clamp(-params.max_brake, params.max_accel),
                z_solution[hh * NU + 1].clamp(-params.max_steer, params.max_steer),
            ];
        }
    }
    memory.controls = Some(nominal_u.clone());

    // final nonlinear rollout and diagnostics
    let predicted = rollout(&s0, &nominal_u, params, dt);
    let mut tracking_cost = 0.0;
    for (h, r) in reference.iter().enumerate() {
        let s = predicted[h + 1];
        let e = [s[0] - r.x, s[1] - r.y, s[2] - r.theta, s[3] - r.v];
        for (w, ev) in config.q_weights.iter().zip(&e) {
            tracking_cost += w * ev * ev;
        }
    }
    let circles = params.coverage_circles();
    let mut violation = 0.0f64;
    for (h, s) in predicted.iter().enumerate().skip(1) {
        for mo in obstacles {
            let obb = &mo.predicted(h as f64 * dt);
            for &(off, radius) in &circles {
                let pc = icoil_geom::Vec2::new(
                    s[0] + off * s[2].cos(),
                    s[1] + off * s[2].sin(),
                );
                let d = obb.distance_to_point(pc);
                violation = violation.max(radius + config.safety_margin - d);
            }
        }
    }

    let warm_solution = MpcSolution {
        controls: nominal_u,
        predicted,
        tracking_cost,
        qp_iterations: qp_iters_total,
        predicted_violation: violation.max(0.0),
    };

    // Two warm-start pathologies call for a second opinion:
    //  * every SCP pass burned its full ADMM budget without converging —
    //    the seed may have stranded the solver in a bad basin (e.g.
    //    carried across a reference discontinuity the caller didn't
    //    reset for), leaving a near-garbage capped iterate; or the frame
    //    is genuinely hard and the warm iterate is the best available;
    //  * the converged warm plan predicts meaningful safety-margin
    //    penetration — SCP multi-modality can put the warm seed in a
    //    cheaper but less safe basin than a cold solve would find.
    // Telling a bad basin from a hard frame needs a reference, so
    // re-solve the frame cold and keep whichever solution is better —
    // safer first, cheaper on a tie — charging both solves' iterations
    // to the result for honest accounting.
    let capped = qp_iters_total >= config.scp_iterations * settings.max_iters;
    if was_warm && (capped || warm_solution.predicted_violation > MPC_REPLAN_VIOLATION) {
        let warm_iterate = memory.warm.clone();
        memory.reset();
        let cold_solution = solve_mpc_warm(state, reference, obstacles, params, config, memory);
        let cold_better = cold_solution.predicted_violation
            < warm_solution.predicted_violation - 1e-9
            || (cold_solution.predicted_violation <= warm_solution.predicted_violation + 1e-9
                && cold_solution.tracking_cost <= warm_solution.tracking_cost);
        if cold_better {
            let mut sol = cold_solution;
            sol.qp_iterations += warm_solution.qp_iterations;
            return sol;
        }
        // the warm iterate stands: restore the memory the cold re-solve
        // overwrote (the workspace keeps the cold scaling — it is a
        // cache revalidated against the problem data on every solve)
        memory.controls = Some(warm_solution.controls.clone());
        memory.warm = warm_iterate;
        let mut sol = warm_solution;
        sol.qp_iterations += cold_solution.qp_iterations;
        return sol;
    }

    warm_solution
}

/// Closest boundary point and outward unit normal of an OBB for a query
/// point. For points *inside* the box the nearest face is used, so the
/// linearized constraint pushes a penetrating nominal back out through
/// the closest face instead of deeper in.
fn boundary_point_and_normal(obb: &Obb, p: icoil_geom::Vec2) -> (icoil_geom::Vec2, icoil_geom::Vec2) {
    use icoil_geom::Vec2;
    let local = (p - obb.center).rotated(-obb.theta);
    let inside = local.x.abs() <= obb.half_length && local.y.abs() <= obb.half_width;
    let (cp_local, n_local) = if inside {
        // distance to each face; exit through the nearest one
        let dx_pos = obb.half_length - local.x;
        let dx_neg = local.x + obb.half_length;
        let dy_pos = obb.half_width - local.y;
        let dy_neg = local.y + obb.half_width;
        let min = dx_pos.min(dx_neg).min(dy_pos).min(dy_neg);
        if min == dx_pos {
            (Vec2::new(obb.half_length, local.y), Vec2::new(1.0, 0.0))
        } else if min == dx_neg {
            (Vec2::new(-obb.half_length, local.y), Vec2::new(-1.0, 0.0))
        } else if min == dy_pos {
            (Vec2::new(local.x, obb.half_width), Vec2::new(0.0, 1.0))
        } else {
            (Vec2::new(local.x, -obb.half_width), Vec2::new(0.0, -1.0))
        }
    } else {
        let cp = Vec2::new(
            local.x.clamp(-obb.half_length, obb.half_length),
            local.y.clamp(-obb.half_width, obb.half_width),
        );
        ((cp), (local - cp).normalized())
    };
    (
        obb.center + cp_local.rotated(obb.theta),
        n_local.rotated(obb.theta),
    )
}

/// Discrete Ackermann step used inside the MPC (simple Euler on v, exact
/// enough at `mpc_dt` because the controller re-solves every frame).
fn step_model(s: &[f64; NX], u: &[f64; NU], params: &VehicleParams, dt: f64) -> [f64; NX] {
    let v_next = (s[3] + u[0] * dt).clamp(-params.max_reverse_speed, params.max_speed);
    let steer = u[1].clamp(-params.max_steer, params.max_steer);
    let omega = s[3] * steer.tan() / params.wheelbase;
    [
        s[0] + s[3] * s[2].cos() * dt,
        s[1] + s[3] * s[2].sin() * dt,
        s[2] + omega * dt,
        v_next,
    ]
}

/// Jacobians `(A, B)` of [`step_model`] at `(s, u)`.
fn linearize(
    s: &[f64; NX],
    u: &[f64; NU],
    params: &VehicleParams,
    dt: f64,
) -> ([[f64; NX]; NX], [[f64; NU]; NX]) {
    let (sin_t, cos_t) = s[2].sin_cos();
    let steer = u[1].clamp(-params.max_steer, params.max_steer);
    let tan_d = steer.tan();
    let sec2 = 1.0 + tan_d * tan_d;
    let l = params.wheelbase;
    let a = [
        [1.0, 0.0, -s[3] * sin_t * dt, cos_t * dt],
        [0.0, 1.0, s[3] * cos_t * dt, sin_t * dt],
        [0.0, 0.0, 1.0, tan_d * dt / l],
        [0.0, 0.0, 0.0, 1.0],
    ];
    let b = [
        [0.0, 0.0],
        [0.0, 0.0],
        [0.0, s[3] * sec2 * dt / l],
        [dt, 0.0],
    ];
    (a, b)
}

/// Nonlinear rollout of the MPC model.
fn rollout(s0: &[f64; NX], controls: &[[f64; NU]], params: &VehicleParams, dt: f64) -> Vec<[f64; NX]> {
    let mut out = Vec::with_capacity(controls.len() + 1);
    out.push(*s0);
    let mut s = *s0;
    for u in controls {
        s = step_model(&s, u, params, dt);
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::{Pose2, Vec2};

    fn straight_reference(h: usize, v: f64, dt: f64) -> Vec<RefState> {
        (1..=h)
            .map(|i| RefState {
                x: v * dt * i as f64,
                y: 0.0,
                theta: 0.0,
                v,
            })
            .collect()
    }

    #[test]
    fn tracks_straight_reference() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        // first control accelerates forward with no steering
        assert!(sol.controls[0][0] > 0.2, "accel {}", sol.controls[0][0]);
        assert!(sol.controls[0][1].abs() < 0.1, "steer {}", sol.controls[0][1]);
        assert_eq!(sol.predicted.len(), config.horizon + 1);
    }

    #[test]
    fn steers_toward_lateral_offset() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        // reference displaced to the left (+y)
        let state = VehicleState::new(Pose2::default(), 1.0);
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: 1.0 * config.mpc_dt * i as f64,
                y: 1.0,
                theta: 0.0,
                v: 1.0,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert!(sol.controls[0][1] > 0.05, "must steer left, got {}", sol.controls[0][1]);
    }

    #[test]
    fn reverse_reference_produces_negative_accel() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: -0.8 * config.mpc_dt * i as f64,
                y: 0.0,
                theta: 0.0,
                v: -0.8,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        assert!(sol.controls[0][0] < -0.1, "accel {}", sol.controls[0][0]);
        assert!(sol.predicted.last().unwrap()[3] < 0.0);
    }

    #[test]
    fn respects_control_bounds() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        // absurd far reference to push the controls to their limits
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState {
                x: 50.0 * i as f64,
                y: 50.0,
                theta: 1.5,
                v: params.max_speed,
            })
            .collect();
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        for u in &sol.controls {
            assert!(u[0] <= params.max_accel + 1e-6 && u[0] >= -params.max_brake - 1e-6);
            assert!(u[1].abs() <= params.max_steer + 1e-6);
        }
    }

    #[test]
    fn obstacle_ahead_deflects_or_slows() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 1.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let free = solve_mpc(&state, &reference, &[], &params, &config);
        // wall ahead, clear of the car at t = 0 but reached by the horizon
        let wall = Obb::from_pose(Pose2::new(6.0, 0.0, 0.0), 1.5, 6.0);
        let blocked = solve_mpc(&state, &reference, &[MovingObstacle::fixed(wall)], &params, &config);
        // with the wall the predicted end point stays short of it or dodges
        let end_free = free.predicted.last().unwrap();
        let end_blocked = blocked.predicted.last().unwrap();
        let progressed = end_blocked[0] < end_free[0] - 0.2;
        let dodged = end_blocked[1].abs() > 0.3;
        assert!(
            progressed || dodged,
            "free end {end_free:?} vs blocked end {end_blocked:?}"
        );
        assert!(blocked.predicted_violation < 0.35, "violation {}", blocked.predicted_violation);
    }

    #[test]
    fn prediction_matches_model_rollout() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::new(1.0, 2.0, 0.3), 0.5);
        let reference = straight_reference(config.horizon, 1.0, config.mpc_dt);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        let manual = rollout(
            &[1.0, 2.0, 0.3, 0.5],
            &sol.controls,
            &params,
            config.mpc_dt,
        );
        assert_eq!(sol.predicted, manual);
    }

    #[test]
    fn tracking_cost_decreases_with_scp_iterations() {
        let params = VehicleParams::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let one = CoConfig {
            scp_iterations: 1,
            ..CoConfig::default()
        };
        let three = CoConfig {
            scp_iterations: 3,
            ..CoConfig::default()
        };
        // curved reference requires re-linearization to track well
        let reference: Vec<RefState> = (1..=one.horizon)
            .map(|i| {
                let t = i as f64 * one.mpc_dt;
                RefState {
                    x: 1.5 * t,
                    y: 0.3 * t * t,
                    theta: (0.6 * t).atan(),
                    v: 1.5,
                }
            })
            .collect();
        let c1 = solve_mpc(&state, &reference, &[], &params, &one).tracking_cost;
        let c3 = solve_mpc(&state, &reference, &[], &params, &three).tracking_cost;
        assert!(c3 <= c1 * 1.05, "SCP should not hurt: {c1} -> {c3}");
    }

    #[test]
    fn predicted_mover_is_anticipated() {
        // A mover approaching the ego's lane from the left: its *current*
        // box never blocks the straight reference, but its prediction
        // crosses it mid-horizon. With prediction the plan must differ
        // (slow down or dodge) from the frozen-obstacle plan.
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 1.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mover_box = Obb::from_pose(Pose2::new(6.0, 4.0, -std::f64::consts::FRAC_PI_2), 2.0, 2.0);
        let frozen = solve_mpc(
            &state,
            &reference,
            &[MovingObstacle::fixed(mover_box)],
            &params,
            &config,
        );
        let moving = solve_mpc(
            &state,
            &reference,
            &[MovingObstacle { obb: mover_box, velocity: Vec2::new(0.0, -2.0) }],
            &params,
            &config,
        );
        // frozen: box sits 4 m to the left, never in the way → full speed
        let end_frozen = frozen.predicted.last().unwrap();
        let end_moving = moving.predicted.last().unwrap();
        assert!(
            end_moving[0] < end_frozen[0] - 0.2 || end_moving[1].abs() > 0.3,
            "prediction must alter the plan: frozen {end_frozen:?} vs moving {end_moving:?}"
        );
        assert!(moving.predicted_violation < 0.3, "violation {}", moving.predicted_violation);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_panics() {
        let params = VehicleParams::default();
        let state = VehicleState::new(Pose2::default(), 0.0);
        let _ = solve_mpc(&state, &[], &[], &params, &CoConfig::default());
    }

    #[test]
    fn fresh_memory_reproduces_cold_solve() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let cold = solve_mpc(&state, &reference, &[], &params, &config);
        let warm = solve_mpc_warm(
            &state,
            &reference,
            &[],
            &params,
            &config,
            &mut MpcMemory::new(),
        );
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_frames_cut_admm_iterations() {
        // simulate a receding-horizon run: apply the first control, step
        // the model, re-solve. Warm memory must spend fewer total ADMM
        // iterations than per-frame cold solves, with matching controls.
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let dt = config.mpc_dt;
        let mut memory = MpcMemory::new();

        let mut s_warm = [0.0, 0.0, 0.0, 0.5];
        let mut s_cold = s_warm;
        let mut warm_iters = 0usize;
        let mut cold_iters = 0usize;
        for frame in 0..6 {
            let reference: Vec<RefState> = (1..=config.horizon)
                .map(|i| RefState {
                    x: s_warm[0] + 1.5 * dt * i as f64,
                    y: 0.0,
                    theta: 0.0,
                    v: 1.5,
                })
                .collect();
            let warm_state =
                VehicleState::new(Pose2::new(s_warm[0], s_warm[1], s_warm[2]), s_warm[3]);
            let warm = solve_mpc_warm(&warm_state, &reference, &[], &params, &config, &mut memory);
            let cold_state =
                VehicleState::new(Pose2::new(s_cold[0], s_cold[1], s_cold[2]), s_cold[3]);
            let cold = solve_mpc(&cold_state, &reference, &[], &params, &config);
            if frame > 0 {
                warm_iters += warm.qp_iterations;
                cold_iters += cold.qp_iterations;
                // both land on essentially the same control
                assert!(
                    (warm.controls[0][0] - cold.controls[0][0]).abs() < 0.05
                        && (warm.controls[0][1] - cold.controls[0][1]).abs() < 0.05,
                    "frame {frame}: warm {:?} vs cold {:?}",
                    warm.controls[0],
                    cold.controls[0]
                );
            }
            s_warm = step_model(&s_warm, &warm.controls[0], &params, dt);
            s_cold = step_model(&s_cold, &cold.controls[0], &params, dt);
        }
        assert!(memory.is_warm());
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} vs cold {cold_iters} total ADMM iterations"
        );
    }

    #[test]
    fn memory_reset_restores_cold_behaviour() {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let state = VehicleState::new(Pose2::default(), 0.5);
        let reference = straight_reference(config.horizon, 1.5, config.mpc_dt);
        let mut memory = MpcMemory::new();
        let first = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut memory);
        assert!(memory.is_warm());
        memory.reset();
        assert!(!memory.is_warm());
        let again = solve_mpc_warm(&state, &reference, &[], &params, &config, &mut memory);
        assert_eq!(first, again);
    }
}
