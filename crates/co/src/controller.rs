//! The per-frame CO controller: global path + MPC + action conversion.

use crate::config::CoConfig;
use crate::mpc::{
    solve_mpc_batch, solve_mpc_warm, MpcBatchJob, MpcMemory, MpcMemorySnapshot, MpcSolution,
    MpcStatus, RefState,
};
use crate::reference::{build_reference_at, PathWalker};
use crate::tracker::{BoxTracker, MovingObstacle};
use icoil_geom::Obb;
use icoil_planner::{plan, PlanError, PlannedPath, PlannerConfig, PlanningProblem};
use icoil_vehicle::{Action, VehicleParams, VehicleState};
use icoil_world::episode::Observation;
use serde::{Deserialize, Serialize};

/// What the CO module returns each frame.
#[derive(Debug, Clone)]
pub struct CoOutput {
    /// The control command to execute.
    pub action: Action,
    /// The underlying MPC solution (when a solve ran this frame).
    pub mpc: Option<MpcSolution>,
    /// `true` when the controller fell back to an emergency brake
    /// (no path, or planner failure).
    pub emergency: bool,
    /// `true` when the MPC solve ended in a numerical error and the
    /// controller degraded to the safe braking action instead of driving
    /// the (unusable) solution.
    pub degraded: bool,
}

impl CoOutput {
    /// The degraded full-brake response, produced without running any
    /// solve: what the serving layer returns when a CO request is shed
    /// (queue full or deadline expired) — the same safe shape the
    /// controller itself degrades to after a numerical failure.
    pub fn degraded_brake() -> Self {
        CoOutput {
            action: Action::full_brake(),
            mpc: None,
            emergency: false,
            degraded: true,
        }
    }
}

/// One MPC solve as it happened in an episode: the exact inputs plus the
/// warm-started solution, captured by [`CoController::enable_solve_log`].
///
/// Re-solving the recorded inputs through [`crate::solve_mpc`] (the cold
/// path) and comparing against `warm` reproduces the warm-vs-cold
/// question outside the closed loop — the hook behind conformance
/// checking, where comparing *episodes* would compound per-frame
/// differences through the plant dynamics. Logging the solution (rather
/// than replaying a warm chain offline) keeps the production memory
/// lifecycle — including resets at replan boundaries — authoritative.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// Ego state at the solve.
    pub state: VehicleState,
    /// Reference horizon handed to the MPC.
    pub reference: Vec<RefState>,
    /// Tracked obstacles with velocity estimates.
    pub tracked: Vec<MovingObstacle>,
    /// The warm-started solution the episode actually used.
    pub warm: MpcSolution,
}

/// The CO working mode `f_CO`: hybrid-A* reference path + SCP MPC.
///
/// The controller is stateful: it owns the global path and replans it
/// when the vehicle strays too far or planning is requested again via
/// [`CoController::reset`].
#[derive(Debug, Clone)]
pub struct CoController {
    config: CoConfig,
    params: VehicleParams,
    path: Option<PlannedPath>,
    walker: Option<PathWalker>,
    frames_since_replan: usize,
    /// Monotone arc-length progress along the current path; keeps the
    /// reference from flip-flopping between branches at gear-change
    /// cusps, where poses of both branches overlap spatially.
    progress: f64,
    /// Frames since the path progress last advanced; a large count means
    /// the MPC has wedged (possibly while wiggling in place) and the
    /// global path must be re-planned from the current pose.
    stalled_frames: usize,
    /// Progress value at the last advance, for stall detection.
    last_progress: f64,
    /// Frame-to-frame box tracker feeding obstacle predictions to the
    /// MPC's time-indexed collision constraints.
    tracker: BoxTracker,
    /// Warm-start state carried between MPC frames (previous solution,
    /// QP iterate, solver workspace). Cleared on replans, where the
    /// reference — and with it the previous solution's meaning — jumps.
    memory: MpcMemory,
    /// When `Some`, every MPC solve (inputs + solution) is appended here.
    solve_log: Option<Vec<SolveRecord>>,
}

/// Serializable image of a [`CoController`]'s episode state for session
/// checkpoints.
///
/// Everything the controller carries between frames is here except the
/// [`PathWalker`] (a pure arc-length index over `path`, rebuilt on
/// restore) and the conformance solve log (a diagnostic probe, never
/// enabled on served sessions). Restoring via
/// [`CoController::restore`] onto a fresh controller with the same
/// config and vehicle params replays subsequent frames bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoSnapshot {
    /// Current global path; the walker is rebuilt from it on restore.
    pub path: Option<PlannedPath>,
    /// Frames since the last (re)plan (replan-cooldown state).
    pub frames_since_replan: usize,
    /// Monotone arc-length progress along the path.
    pub progress: f64,
    /// Frames since the path progress last advanced.
    pub stalled_frames: usize,
    /// Progress value at the last advance.
    pub last_progress: f64,
    /// Frame-to-frame box tracker state (track identity + velocity EMAs).
    pub tracker: BoxTracker,
    /// MPC warm-start memory.
    pub memory: MpcMemorySnapshot,
}

impl CoController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics for an invalid configuration.
    pub fn new(config: CoConfig, params: VehicleParams) -> Self {
        config.validate().expect("valid CO config");
        CoController {
            config,
            params,
            path: None,
            walker: None,
            frames_since_replan: 0,
            progress: 0.0,
            stalled_frames: 0,
            last_progress: 0.0,
            tracker: BoxTracker::new(),
            memory: MpcMemory::new(),
            solve_log: None,
        }
    }

    /// Starts recording every MPC solve (conformance probe).
    pub fn enable_solve_log(&mut self) {
        self.solve_log = Some(Vec::new());
    }

    /// Drains the recorded solves (empty when logging is off).
    pub fn take_solve_log(&mut self) -> Vec<SolveRecord> {
        match self.solve_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoConfig {
        &self.config
    }

    /// Drops the cached path (start of a new episode).
    pub fn reset(&mut self) {
        self.path = None;
        self.walker = None;
        self.frames_since_replan = 0;
        self.progress = 0.0;
        self.stalled_frames = 0;
        self.last_progress = 0.0;
        self.tracker.reset();
        self.memory.reset();
    }

    /// Drops only the carried MPC warm start; the next frame solves cold.
    pub fn reset_warm_start(&mut self) {
        self.memory.reset();
    }

    /// Captures the controller's complete episode state (see
    /// [`CoSnapshot`]).
    pub fn snapshot(&self) -> CoSnapshot {
        CoSnapshot {
            path: self.path.clone(),
            frames_since_replan: self.frames_since_replan,
            progress: self.progress,
            stalled_frames: self.stalled_frames,
            last_progress: self.last_progress,
            tracker: self.tracker.clone(),
            memory: self.memory.snapshot(),
        }
    }

    /// Restores episode state from a checkpoint, rebuilding the path
    /// walker. The controller's config and vehicle params are unchanged —
    /// they must match those active when the snapshot was taken for the
    /// replay to be bit-identical.
    pub fn restore(&mut self, snap: &CoSnapshot) {
        self.path = snap.path.clone();
        self.walker = snap.path.as_ref().map(PathWalker::new);
        self.frames_since_replan = snap.frames_since_replan;
        self.progress = snap.progress;
        self.stalled_frames = snap.stalled_frames;
        self.last_progress = snap.last_progress;
        self.tracker = snap.tracker.clone();
        self.memory = MpcMemory::from_snapshot(&snap.memory);
        self.solve_log = None;
    }

    /// The current global path, if planned.
    pub fn path(&self) -> Option<&PlannedPath> {
        self.path.as_ref()
    }

    /// Plans (or re-plans) the global path around the given boxes.
    ///
    /// # Errors
    ///
    /// Propagates the planner error when no path exists.
    pub fn plan_path(&mut self, obs: &Observation, boxes: &[Obb]) -> Result<(), PlanError> {
        let world = obs.world();
        // Escalating margins: prefer a comfortable path, but accept a
        // tight one rather than none (e.g. when re-planning from a pose
        // wedged close to an obstacle).
        let mut last_err = PlanError::NoPathFound;
        // every rung stays at or above the MPC's own collision margin:
        // a path the MPC cannot legally follow is worse than no path
        // (the unstick behaviour handles the no-path case)
        for margin in [0.4, 0.3, 0.22] {
            let problem = PlanningProblem {
                start: obs.ego().pose,
                goal: world.map().goal_pose(),
                bounds: world.map().bounds(),
                obstacles: boxes,
                vehicle: &self.params,
                safety_margin: margin,
            };
            match plan(&problem, &PlannerConfig::default()) {
                Ok(path) => {
                    self.walker = Some(PathWalker::new(&path));
                    self.path = Some(path);
                    self.frames_since_replan = 0;
                    self.progress = 0.0;
                    self.stalled_frames = 0;
                    self.memory.reset();
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Computes the control for the current frame from the detected
    /// boxes `z_i` (eq. 6's `f_CO(z_i)`).
    ///
    /// Tracked-static obstacles enter global path planning; everything
    /// (with velocity predictions) enters the MPC constraints — the path
    /// routes around the static scene, the MPC dodges whatever moves.
    pub fn control(&mut self, obs: &Observation, boxes: &[Obb]) -> CoOutput {
        match self.prepare(obs, boxes) {
            Prepared::Early(out) => out,
            Prepared::Solve {
                state,
                reference,
                tracked,
            } => {
                let mpc = solve_mpc_warm(
                    &state,
                    &reference,
                    &tracked,
                    &self.params,
                    &self.config,
                    &mut self.memory,
                );
                self.finish_solve(state, reference, tracked, mpc)
            }
        }
    }

    /// The pre-solve half of [`control`](CoController::control): tracking,
    /// stall detection, (re)planning and reference building. Returns
    /// either an early (no-solve) output or the assembled MPC inputs.
    fn prepare(&mut self, obs: &Observation, boxes: &[Obb]) -> Prepared {
        let ego = obs.ego();
        self.frames_since_replan += 1;

        // track detections and split the scene: slow boxes are part of
        // the static world (global planning); everything feeds the MPC
        // with its velocity estimate
        let tracked = self.tracker.update(boxes, obs.dt().max(1e-3));
        let static_boxes: Vec<Obb> = tracked
            .iter()
            .filter(|m| m.is_static(0.3))
            .map(|m| m.obb)
            .collect();

        // stall detection: no arc-length progress for several seconds
        // (standing still *or* wiggling in place) means the MPC is
        // wedged against a constraint the old path ran too close to.
        // Arriving at the path end misaligned counts too: a fresh plan
        // from the crooked pose yields the correction shuffle.
        let remaining = self
            .walker
            .as_ref()
            .map(|w| w.total() - self.progress)
            .unwrap_or(f64::INFINITY);
        let misaligned_at_end = self
            .path
            .as_ref()
            .and_then(|p| p.poses.last())
            .is_some_and(|end| {
                remaining <= 0.5
                    && (ego.pose.heading_error(end) > 0.12
                        || ego.pose.distance(end) > 0.25)
            });
        if self.progress > self.last_progress + 0.2 {
            self.last_progress = self.progress;
            self.stalled_frames = 0;
        } else if (remaining > 0.5 || misaligned_at_end) && self.path.is_some() {
            self.stalled_frames += 1;
        }
        let stall_fuse = if misaligned_at_end { 25 } else { 100 };
        let stalled = self.stalled_frames > stall_fuse
            && self.frames_since_replan > self.config.replan_cooldown;

        // (re)plan the global path when missing, stale or wedged
        let needs_plan = stalled
            || match (&self.path, &self.walker) {
                (Some(path), Some(_)) => {
                    let dev = path
                        .polyline()
                        .distance_to_point(ego.pose.position());
                    dev > self.config.replan_deviation
                        && self.frames_since_replan > self.config.replan_cooldown
                }
                _ => true,
            };
        if needs_plan {
            // plan around *static* scene only: boxes that are not moving
            // are indistinguishable from moving ones in a single frame, so
            // use all current boxes — replans are rate-limited anyway.
            if self.plan_path(obs, &static_boxes).is_err() {
                // No path even at the tightest margin — typically the
                // ego is wedged against an obstacle. Creep away from the
                // nearest box to restore clearance, then replan.
                return Prepared::Early(CoOutput {
                    action: unstick_action(&ego, boxes),
                    mpc: None,
                    emergency: true,
                    degraded: false,
                });
            }
        }
        let (path, walker) = match (&self.path, &self.walker) {
            (Some(p), Some(w)) => (p, w),
            _ => {
                return Prepared::Early(CoOutput {
                    action: Action::full_brake(),
                    mpc: None,
                    emergency: true,
                    degraded: false,
                })
            }
        };

        // advance the monotone progress marker within a local window
        let s_now = walker.nearest_s_in_window(
            path,
            ego.pose.position(),
            self.progress - 1.0,
            self.progress + 2.5,
        );
        self.progress = self.progress.max(s_now);
        let reference = build_reference_at(
            path,
            walker,
            self.progress,
            ego.pose.theta,
            &self.config,
        );
        Prepared::Solve {
            state: ego,
            reference,
            tracked,
        }
    }

    /// The post-solve half of [`control`](CoController::control): solve
    /// logging, degradation handling and action conversion.
    fn finish_solve(
        &mut self,
        ego: VehicleState,
        reference: Vec<RefState>,
        tracked: Vec<MovingObstacle>,
        mpc: MpcSolution,
    ) -> CoOutput {
        if let Some(log) = self.solve_log.as_mut() {
            log.push(SolveRecord {
                state: ego,
                reference,
                tracked,
                warm: mpc.clone(),
            });
        }
        // a numerically-failed solve returns zero-control sentinels that
        // must not be driven: degrade to braking and start the next frame
        // cold (the solve already reset its memory)
        let degraded = mpc.status == MpcStatus::NumericalError;
        let action = if degraded {
            Action::full_brake()
        } else {
            self.to_action(&ego, mpc.controls[0])
        };
        CoOutput {
            action,
            mpc: Some(mpc),
            emergency: false,
            degraded,
        }
    }

    /// Converts an `(accel, steer)` control into a CARLA-style action.
    ///
    /// (See also [`unstick_action`], the planner-failure fallback.)
    fn to_action(&self, state: &VehicleState, u: [f64; 2]) -> Action {
        let accel = u[0];
        let steer = (u[1] / self.params.max_steer).clamp(-1.0, 1.0);
        let v = state.velocity;
        let v_target = v + accel * self.config.mpc_dt;

        // pick the gear from where the controller wants the speed to go
        let reverse = v_target < -1e-3 || (v < -1e-3 && v_target <= 1e-3);
        let speeding_up = v_target.abs() > v.abs() + 1e-6 || v.abs() < 1e-3;
        if speeding_up && v_target.abs() > 1e-3 {
            Action {
                throttle: (accel.abs() / self.params.max_accel).clamp(0.0, 1.0),
                brake: 0.0,
                steer,
                reverse,
            }
        } else if v_target.abs() <= 1e-3 && v.abs() <= 1e-3 {
            // hold still, keep the wheels where the MPC wants them
            Action {
                throttle: 0.0,
                brake: 0.3,
                steer,
                reverse,
            }
        } else {
            Action {
                throttle: 0.0,
                brake: (accel.abs() / self.params.max_brake).clamp(0.0, 1.0),
                steer,
                reverse,
            }
        }
    }
}

/// Outcome of [`CoController::prepare`]: either the frame resolved
/// without an MPC solve, or the solve inputs are ready.
enum Prepared {
    /// No solve this frame (planner failure or missing path).
    Early(CoOutput),
    /// The assembled MPC inputs for this frame.
    Solve {
        /// Ego state at the frame.
        state: VehicleState,
        /// Reference horizon.
        reference: Vec<RefState>,
        /// Tracked obstacles with velocity estimates.
        tracked: Vec<MovingObstacle>,
    },
}

/// Runs one control frame for several independent controllers, batching
/// their MPC solves through [`solve_mpc_batch`].
///
/// Each `(controller, observation, boxes)` triple goes through the same
/// prepare → solve → finish pipeline as [`CoController::control`]; only
/// the inner QP solves are pooled, so outputs and controller states are
/// bit-identical to calling `control` once per tuple. Controllers that
/// resolve without a solve (planner failure, missing path) are passed
/// through untouched.
pub fn control_batch(jobs: &mut [(&mut CoController, &Observation, &[Obb])]) -> Vec<CoOutput> {
    let prepared: Vec<Prepared> = jobs
        .iter_mut()
        .map(|(co, obs, boxes)| co.prepare(obs, boxes))
        .collect();
    // pool the solve jobs; memories borrow mutably, configs immutably
    let mut mpc_jobs: Vec<MpcBatchJob<'_>> = Vec::new();
    for ((co, _, _), prep) in jobs.iter_mut().zip(&prepared) {
        if let Prepared::Solve {
            state,
            reference,
            tracked,
        } = prep
        {
            let co = &mut **co;
            mpc_jobs.push(MpcBatchJob {
                state,
                reference,
                obstacles: tracked,
                params: &co.params,
                config: &co.config,
                memory: &mut co.memory,
            });
        }
    }
    let mut sols = solve_mpc_batch(mpc_jobs).into_iter();
    jobs.iter_mut()
        .zip(prepared)
        .map(|((co, _, _), prep)| match prep {
            Prepared::Early(out) => out,
            Prepared::Solve {
                state,
                reference,
                tracked,
            } => {
                let mpc = sols.next().expect("one solution per solve job");
                co.finish_solve(state, reference, tracked, mpc)
            }
        })
        .collect()
}

/// Recovery action when no path exists from the current pose: creep
/// slowly away from the nearest obstacle (reverse when it is ahead,
/// forward when it is behind), steering straight.
fn unstick_action(ego: &VehicleState, boxes: &[Obb]) -> Action {
    let pos = ego.pose.position();
    let nearest = boxes
        .iter()
        .min_by(|a, b| {
            a.distance_to_point(pos)
                .partial_cmp(&b.distance_to_point(pos))
                .expect("finite distances")
        });
    let Some(obb) = nearest else {
        return Action::full_brake();
    };
    let bearing = (obb.center - pos).angle();
    let ahead = icoil_geom::angle_diff(bearing, ego.pose.theta).abs()
        < std::f64::consts::FRAC_PI_2;
    if ahead {
        Action::backward(0.25, 0.0)
    } else {
        Action::forward(0.25, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_world::episode::Observation;
    use icoil_world::{Difficulty, ScenarioConfig, World};

    fn setup(difficulty: Difficulty, seed: u64) -> (World, CoController) {
        let scenario = ScenarioConfig::new(difficulty, seed).build();
        let params = scenario.vehicle_params;
        (World::new(scenario), CoController::new(CoConfig::default(), params))
    }

    #[test]
    fn first_control_is_valid_and_plans_path() {
        let (world, mut co) = setup(Difficulty::Easy, 2);
        let boxes = world.obstacle_footprints();
        let out = co.control(&Observation::new(&world), &boxes);
        assert!(out.action.validate().is_ok());
        assert!(!out.emergency);
        assert!(co.path().is_some());
        assert!(co.path().unwrap().length() > 5.0);
    }

    #[test]
    fn reset_clears_path() {
        let (world, mut co) = setup(Difficulty::Easy, 2);
        let boxes = world.obstacle_footprints();
        let _ = co.control(&Observation::new(&world), &boxes);
        assert!(co.path().is_some());
        co.reset();
        assert!(co.path().is_none());
    }

    #[test]
    fn drives_toward_goal_over_time() {
        let (mut world, mut co) = setup(Difficulty::Easy, 2);
        let d0 = world.distance_to_goal();
        for _ in 0..200 {
            let boxes = world.obstacle_footprints();
            let out = co.control(&Observation::new(&world), &boxes);
            world.step(&out.action);
            if world.in_collision() {
                panic!("CO must not collide in an easy scenario");
            }
        }
        let d1 = world.distance_to_goal();
        assert!(d1 < d0 - 1.0, "distance {d0} -> {d1}");
    }

    #[test]
    fn action_conversion_forward() {
        let (_, co) = setup(Difficulty::Easy, 2);
        let state = VehicleState::new(icoil_geom::Pose2::default(), 0.0);
        let a = co.to_action(&state, [1.0, 0.2]);
        assert!(!a.reverse);
        assert!(a.throttle > 0.5);
        assert!(a.brake == 0.0);
        assert!(a.steer > 0.0);
    }

    #[test]
    fn action_conversion_reverse() {
        let (_, co) = setup(Difficulty::Easy, 2);
        let state = VehicleState::new(icoil_geom::Pose2::default(), 0.0);
        let a = co.to_action(&state, [-1.0, 0.0]);
        assert!(a.reverse);
        assert!(a.throttle > 0.0);
    }

    #[test]
    fn nan_ego_state_degrades_to_safe_braking() {
        // Regression: a NaN-poisoned ego state used to panic inside the
        // QP regularization loop. The controller must brake, flag the
        // degradation, and recover on the next healthy frame.
        let (mut world, mut co) = setup(Difficulty::Easy, 2);
        let boxes = world.obstacle_footprints();
        let healthy = co.control(&Observation::new(&world), &boxes);
        assert!(!healthy.degraded);

        let good_state = *world.ego();
        let mut bad = good_state;
        bad.velocity = f64::NAN;
        world.set_ego(bad);
        let out = co.control(&Observation::new(&world), &world.obstacle_footprints());
        assert!(out.degraded, "NaN ego must degrade");
        assert!(out.action.validate().is_ok(), "brake action must be well-formed");
        assert!(out.action.brake > 0.0 && out.action.throttle == 0.0);
        assert_eq!(
            out.mpc.as_ref().map(|m| m.status),
            Some(MpcStatus::NumericalError)
        );

        world.set_ego(good_state);
        let recovered = co.control(&Observation::new(&world), &world.obstacle_footprints());
        assert!(!recovered.degraded, "healthy frame must recover");
    }

    #[test]
    fn control_batch_is_bit_identical_to_sequential_control() {
        // three sessions on different scenarios, stepped in lockstep for
        // several frames: batched control must match per-session control
        // exactly, frame by frame, including the carried controller state
        let seeds = [2u64, 5, 9];
        let mut seq: Vec<(World, CoController)> =
            seeds.iter().map(|&s| setup(Difficulty::Easy, s)).collect();
        let (mut bat_worlds, mut bat_cos): (Vec<World>, Vec<CoController>) =
            seeds.iter().map(|&s| setup(Difficulty::Easy, s)).unzip();
        for frame in 0..8 {
            let seq_outs: Vec<CoOutput> = seq
                .iter_mut()
                .map(|(world, co)| {
                    let boxes = world.obstacle_footprints();
                    let out = co.control(&Observation::new(world), &boxes);
                    world.step(&out.action);
                    out
                })
                .collect();
            let boxes: Vec<Vec<Obb>> =
                bat_worlds.iter().map(|w| w.obstacle_footprints()).collect();
            let obs: Vec<Observation> =
                bat_worlds.iter().map(Observation::new).collect();
            let mut jobs: Vec<(&mut CoController, &Observation, &[Obb])> = bat_cos
                .iter_mut()
                .zip(&obs)
                .zip(&boxes)
                .map(|((co, ob), bx)| (co, ob, bx.as_slice()))
                .collect();
            let bat_outs = control_batch(&mut jobs);
            drop(jobs);
            drop(obs);
            for (world, out) in bat_worlds.iter_mut().zip(&bat_outs) {
                world.step(&out.action);
            }
            for (i, (s, b)) in seq_outs.iter().zip(&bat_outs).enumerate() {
                assert_eq!(s.action, b.action, "frame {frame} session {i}");
                assert_eq!(s.mpc, b.mpc, "frame {frame} session {i}");
                assert_eq!(s.emergency, b.emergency);
                assert_eq!(s.degraded, b.degraded);
            }
        }
    }

    #[test]
    fn action_conversion_braking_while_moving() {
        let (_, co) = setup(Difficulty::Easy, 2);
        let state = VehicleState::new(icoil_geom::Pose2::default(), 2.0);
        // decelerate but stay forward
        let a = co.to_action(&state, [-1.0, 0.0]);
        assert!(!a.reverse);
        assert!(a.brake > 0.0);
        assert_eq!(a.throttle, 0.0);
    }
}
