//! CO-module configuration.

use icoil_solver::Backend;
use serde::{Deserialize, Serialize};

/// Tuning parameters of the CO module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoConfig {
    /// Prediction-horizon length `H` (MPC steps).
    pub horizon: usize,
    /// MPC step duration (seconds); larger than the simulation frame so
    /// the horizon looks seconds ahead.
    pub mpc_dt: f64,
    /// Cruise speed magnitude along the reference (m/s).
    pub v_cruise: f64,
    /// State tracking weights `(x, y, θ, v)` of the cost (4).
    pub q_weights: [f64; 4],
    /// Control effort weights `(accel, steer)`.
    pub r_weights: [f64; 2],
    /// Control *rate* weights `(accel, steer)`: penalize changes between
    /// consecutive horizon steps, smoothing the command profile (and the
    /// demonstration labels the IL learns from).
    pub r_rate: [f64; 2],
    /// Extra clearance added to the collision constraints (5) (meters).
    pub safety_margin: f64,
    /// Obstacle-prediction uncertainty growth (m per second of
    /// prediction): predicted boxes are inflated by this rate times the
    /// prediction time, covering turn-arounds and estimation error.
    pub prediction_inflation: f64,
    /// Sequential-convexification iterations per frame.
    pub scp_iterations: usize,
    /// Replan the global path when the vehicle strays this far from it
    /// (meters).
    pub replan_deviation: f64,
    /// Minimum frames between global replans.
    pub replan_cooldown: usize,
    /// KKT factorization backend for the inner QP solver. `Auto` (the
    /// default) picks sparse/dense from the problem structure; forcing a
    /// backend is for benchmarks and differential conformance checks.
    #[serde(default)]
    pub qp_backend: Backend,
}

impl Default for CoConfig {
    fn default() -> Self {
        CoConfig {
            horizon: 12,
            mpc_dt: 0.25,
            v_cruise: 1.8,
            q_weights: [10.0, 10.0, 3.0, 1.0],
            r_weights: [0.3, 1.5],
            r_rate: [0.1, 3.0],
            safety_margin: 0.15,
            prediction_inflation: 0.1,
            scp_iterations: 2,
            replan_deviation: 2.0,
            replan_cooldown: 40,
            qp_backend: Backend::Auto,
        }
    }
}

impl CoConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon == 0 {
            return Err("horizon must be at least 1".into());
        }
        if self.mpc_dt.is_nan() || self.mpc_dt <= 0.0 {
            return Err("mpc_dt must be positive".into());
        }
        if self.v_cruise.is_nan() || self.v_cruise <= 0.0 {
            return Err("v_cruise must be positive".into());
        }
        if self.scp_iterations == 0 {
            return Err("scp_iterations must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CoConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = CoConfig {
            horizon: 0,
            ..CoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CoConfig {
            mpc_dt: 0.0,
            ..CoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CoConfig {
            scp_iterations: 0,
            ..CoConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
