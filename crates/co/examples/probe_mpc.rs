//! Developer probe: MPC behaviour vs SCP iteration count on a
//! wall-ahead scenario (prints per-pass violation and endpoints).

use icoil_co::{solve_mpc, CoConfig, MovingObstacle, RefState};
use icoil_geom::{Obb, Pose2};
use icoil_vehicle::{VehicleParams, VehicleState};

fn main() {
    let params = VehicleParams::default();
    for scp in [1usize, 2, 3, 4] {
        let config = CoConfig { scp_iterations: scp, ..CoConfig::default() };
        let state = VehicleState::new(Pose2::default(), 1.5);
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|i| RefState { x: 1.5 * config.mpc_dt * i as f64, y: 0.0, theta: 0.0, v: 1.5 })
            .collect();
        let wall = Obb::from_pose(Pose2::new(6.0, 0.0, 0.0), 1.5, 6.0);
        let sol = solve_mpc(&state, &reference, &[MovingObstacle::fixed(wall)], &params, &config);
        let end = sol.predicted.last().unwrap();
        println!("scp {scp}: viol {:.3} end ({:.2},{:.2},v{:.2}) qp_iters {} u0 {:?}",
            sol.predicted_violation, end[0], end[1], end[3], sol.qp_iterations, sol.controls[0]);
        for (h, s) in sol.predicted.iter().enumerate() {
            if h % 4 == 0 { println!("   h{h}: x {:.2} y {:.2} v {:.2}", s[0], s[1], s[3]); }
        }
    }
}
