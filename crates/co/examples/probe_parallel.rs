//! Developer probe: frame-level CO introspection on the parallel
//! parking map (tracks the endgame alignment).

use icoil_co::{CoConfig, CoController};
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, MapKind, ScenarioConfig, World};

fn main() {
    let scenario = ScenarioConfig::new(Difficulty::Easy, 1)
        .with_map(MapKind::Parallel)
        .build();
    let params = scenario.vehicle_params;
    println!("goal {:?}", scenario.map.goal_pose());
    let mut world = World::new(scenario);
    let mut co = CoController::new(CoConfig::default(), params);
    for i in 0..1800 {
        let boxes = world.obstacle_footprints();
        let out = co.control(&Observation::new(&world), &boxes);
        if i % 100 == 0 || (i > 500 && i % 25 == 0 && world.distance_to_goal() < 3.0) {
            let e = world.ego();
            println!(
                "f{i:4} ({:5.2},{:5.2},{:+.2}) v{:+.2} dgoal {:.2} herr {:.2} act t{:.2} b{:.2} s{:+.2} r{} em{}",
                e.pose.x, e.pose.y, e.pose.theta, e.velocity,
                world.distance_to_goal(),
                e.pose.heading_error(&world.map().goal_pose()),
                out.action.throttle, out.action.brake, out.action.steer,
                out.action.reverse as u8, out.emergency as u8
            );
        }
        world.step(&out.action);
        if world.at_goal() { println!("PARKED t={:.1}", world.time()); break; }
        if world.in_collision() { println!("COLLIDED {:?}", world.collision_cause()); break; }
    }
}
