//! Property tests for the CO crate: the MPC's internal linearization must
//! agree with the nonlinear model, and solutions must respect bounds.

use icoil_co::{solve_mpc, CoConfig, MovingObstacle, RefState};
use icoil_geom::{Obb, Pose2, Vec2};
use icoil_vehicle::{VehicleParams, VehicleState};
use proptest::prelude::*;

fn arb_state() -> impl Strategy<Value = VehicleState> {
    (-10.0f64..10.0, -10.0f64..10.0, -3.0f64..3.0, -1.4f64..2.4)
        .prop_map(|(x, y, t, v)| VehicleState::new(Pose2::new(x, y, t), v))
}

fn reference_from(state: &VehicleState, v: f64, config: &CoConfig) -> Vec<RefState> {
    let (s, c) = (state.pose.theta.sin(), state.pose.theta.cos());
    (1..=config.horizon)
        .map(|i| {
            let d = v * config.mpc_dt * i as f64;
            RefState {
                x: state.pose.x + d * c,
                y: state.pose.y + d * s,
                theta: state.pose.theta,
                v,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn controls_always_within_bounds(state in arb_state(), v_ref in -1.2f64..2.0) {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let reference = reference_from(&state, v_ref, &config);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        for u in &sol.controls {
            prop_assert!(u[0] <= params.max_accel + 1e-6);
            prop_assert!(u[0] >= -params.max_brake - 1e-6);
            prop_assert!(u[1].abs() <= params.max_steer + 1e-6);
        }
        // predicted speeds respect the vehicle limits
        for s in &sol.predicted {
            prop_assert!(s[3] <= params.max_speed + 1e-6);
            prop_assert!(s[3] >= -params.max_reverse_speed - 1e-6);
        }
    }

    #[test]
    fn free_space_tracking_moves_toward_reference(state in arb_state()) {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let reference = reference_from(&state, 1.2, &config);
        let sol = solve_mpc(&state, &reference, &[], &params, &config);
        // tracking must make progress: final predicted position closer to
        // the final reference point than the start was (generous margin,
        // since some sampled states start moving the wrong way)
        let target = Vec2::new(reference.last().unwrap().x, reference.last().unwrap().y);
        let start_d = state.pose.position().distance(target);
        let end = sol.predicted.last().unwrap();
        let end_d = Vec2::new(end[0], end[1]).distance(target);
        prop_assert!(end_d < start_d + 0.5, "start {start_d:.2} end {end_d:.2}");
    }

    #[test]
    fn far_obstacles_do_not_change_the_solution(state in arb_state()) {
        let params = VehicleParams::default();
        let config = CoConfig::default();
        let reference = reference_from(&state, 1.0, &config);
        let free = solve_mpc(&state, &reference, &[], &params, &config);
        // an obstacle 50 m away is outside the constraint activation radius
        let far = Obb::from_pose(
            Pose2::new(state.pose.x + 50.0, state.pose.y + 50.0, 0.3),
            3.0,
            3.0,
        );
        let with_far = solve_mpc(
            &state,
            &reference,
            &[MovingObstacle::fixed(far)],
            &params,
            &config,
        );
        prop_assert_eq!(free.controls, with_far.controls);
    }
}
