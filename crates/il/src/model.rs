//! The trained IL artifact and its inference path.

use icoil_nn::loss::softmax_in_place;
use icoil_nn::{InferBuffers, Network, Tensor};
use icoil_perception::{BevConfig, BevImage};
use icoil_vehicle::{Action, ActionCodec};
use serde::{Deserialize, Serialize};

/// Output of one IL inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResult {
    /// The decoded action of the argmax class.
    pub action: Action,
    /// The chosen class index.
    pub class: usize,
    /// The full softmax distribution (input to the HSA uncertainty).
    pub probs: Vec<f64>,
}

/// A trained IL model: network weights plus the action codec and the BEV
/// geometry it was trained with.
///
/// # Example
///
/// ```
/// use icoil_il::IlModel;
/// use icoil_perception::BevConfig;
/// use icoil_vehicle::ActionCodec;
///
/// let model = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 7);
/// let json = model.to_json();
/// let back = IlModel::from_json(&json).unwrap();
/// assert_eq!(back.codec().num_classes(), 21);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IlModel {
    network: Network,
    codec: ActionCodec,
    bev: BevConfig,
    /// Reusable input tensor for the hot inference path (not persisted).
    #[serde(skip)]
    input: Tensor,
    /// Reusable activation buffers: after the first frame, inference
    /// performs no heap allocation (not persisted).
    #[serde(skip)]
    buffers: InferBuffers,
    /// Reusable batched-logits tensor for [`IlModel::infer_batch`] (not
    /// persisted).
    #[serde(skip)]
    batch_out: Tensor,
}

impl IlModel {
    /// Wraps a trained network.
    pub fn new(network: Network, codec: ActionCodec, bev: BevConfig) -> Self {
        IlModel {
            network,
            codec,
            bev,
            input: Tensor::default(),
            buffers: InferBuffers::new(),
            batch_out: Tensor::default(),
        }
    }

    /// A freshly-initialized (untrained) model with the paper's
    /// architecture — useful for tests and as a training starting point.
    pub fn untrained(codec: ActionCodec, bev: BevConfig, seed: u64) -> Self {
        let network =
            Network::il_architecture((BevImage::CHANNELS, bev.size, bev.size), codec.num_classes(), seed);
        IlModel::new(network, codec, bev)
    }

    /// The action codec.
    pub fn codec(&self) -> &ActionCodec {
        &self.codec
    }

    /// The BEV geometry the model expects.
    pub fn bev_config(&self) -> &BevConfig {
        &self.bev
    }

    /// Mutable access to the network (the trainer drives this).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Runs inference on one BEV image.
    ///
    /// The forward pass reuses the model's internal buffers, so after the
    /// first frame it performs no heap allocation (only the returned
    /// [`InferResult`] is freshly allocated).
    ///
    /// # Panics
    ///
    /// Panics when the image geometry differs from the model's
    /// [`BevConfig`].
    pub fn infer(&mut self, image: &BevImage) -> InferResult {
        assert_eq!(
            image.size, self.bev.size,
            "BEV image size does not match the model"
        );
        self.input
            .resize(&[1, BevImage::CHANNELS, image.size, image.size]);
        self.input.data_mut().copy_from_slice(&image.data);
        let probs_t = self.network.infer_proba(&self.input, &mut self.buffers);
        let probs: Vec<f64> = probs_t.data().iter().map(|&v| v as f64).collect();
        // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
        let mut class = 0;
        for (i, &p) in probs_t.data().iter().enumerate() {
            if p >= probs_t.data()[class] {
                class = i;
            }
        }
        InferResult {
            action: self.codec.decode(class),
            class,
            probs,
        }
    }

    /// Runs inference on a micro-batch of BEV images, one result per
    /// image, in input order.
    ///
    /// The images are stacked into a single `[n, C, H, W]` batch and
    /// pushed through [`Network::forward_batch_into`] in one blocked
    /// pass — the serving engine's IL lane. Batching is a throughput
    /// optimization, not an approximation: every row of the batched
    /// softmax is bit-identical to [`IlModel::infer`] on that image
    /// alone, and the conformance harness (`batched_single_il`) holds
    /// the two paths to exactly that standard.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or when any image's geometry differs
    /// from the model's [`BevConfig`].
    pub fn infer_batch(&mut self, images: &[&BevImage]) -> Vec<InferResult> {
        assert!(!images.is_empty(), "infer_batch needs at least one image");
        let size = self.bev.size;
        let samples: Vec<&[f32]> = images
            .iter()
            .map(|image| {
                assert_eq!(
                    image.size, size,
                    "BEV image size does not match the model"
                );
                image.data.as_slice()
            })
            .collect();
        self.network.forward_batch_into(
            &samples,
            &[BevImage::CHANNELS, size, size],
            &mut self.buffers,
            &mut self.batch_out,
        );
        softmax_in_place(&mut self.batch_out);
        let classes = self.codec.num_classes();
        let mut results = Vec::with_capacity(images.len());
        for i in 0..images.len() {
            let row = &self.batch_out.data()[i * classes..(i + 1) * classes];
            let probs: Vec<f64> = row.iter().map(|&v| v as f64).collect();
            // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
            let mut class = 0;
            for (j, &p) in row.iter().enumerate() {
                if p >= row[class] {
                    class = j;
                }
            }
            results.push(InferResult {
                action: self.codec.decode(class),
                class,
                probs,
            });
        }
        results
    }

    /// Runs inference through the reference (allocating) forward pass.
    ///
    /// Numerically this must agree with [`IlModel::infer`] bit-for-bit —
    /// the buffered path is an allocation optimization, not an
    /// approximation — and the conformance harness holds the two paths to
    /// exactly that standard on every fuzzed scenario.
    ///
    /// # Panics
    ///
    /// Panics when the image geometry differs from the model's
    /// [`BevConfig`].
    pub fn infer_reference(&mut self, image: &BevImage) -> InferResult {
        assert_eq!(
            image.size, self.bev.size,
            "BEV image size does not match the model"
        );
        let mut input = Tensor::zeros(vec![1, BevImage::CHANNELS, image.size, image.size]);
        input.data_mut().copy_from_slice(&image.data);
        let probs_t = self.network.predict_proba(&input);
        let probs: Vec<f64> = probs_t.data().iter().map(|&v| v as f64).collect();
        // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
        let mut class = 0;
        for (i, &p) in probs_t.data().iter().enumerate() {
            if p >= probs_t.data()[class] {
                class = i;
            }
        }
        InferResult {
            action: self.codec.decode(class),
            class,
            probs,
        }
    }

    /// Serializes weights + codec + geometry to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Restores a model from [`IlModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_perception::BevImage;

    fn blank_image(size: usize) -> BevImage {
        BevImage {
            size,
            range: 12.0,
            data: vec![0.0; BevImage::CHANNELS * size * size],
        }
    }

    #[test]
    fn infer_returns_distribution_on_simplex() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1);
        let r = m.infer(&blank_image(32));
        assert_eq!(r.probs.len(), 21);
        let sum: f64 = r.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(r.class < 21);
        assert!(r.action.validate().is_ok());
    }

    #[test]
    fn inference_is_deterministic() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 2);
        let img = blank_image(32);
        assert_eq!(m.infer(&img), m.infer(&img));
    }

    #[test]
    fn json_roundtrip_preserves_inference() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 3);
        let img = blank_image(32);
        let before = m.infer(&img);
        let mut back = IlModel::from_json(&m.to_json()).unwrap();
        assert_eq!(back.infer(&img), before);
    }

    #[test]
    fn reference_path_matches_buffered_path_bitwise() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 5);
        let mut img = blank_image(32);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = ((i * 2654435761) % 1000) as f32 / 1000.0;
        }
        let fast = m.infer(&img);
        let reference = m.infer_reference(&img);
        assert_eq!(fast, reference);
    }

    #[test]
    fn batched_inference_matches_single_sample_bitwise() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 6);
        let images: Vec<BevImage> = (0..7)
            .map(|k| {
                let mut img = blank_image(32);
                for (i, v) in img.data.iter_mut().enumerate() {
                    *v = (((i + 31 * k) * 2654435761) % 1000) as f32 / 1000.0;
                }
                img
            })
            .collect();
        for n in [1usize, 2, 7] {
            let refs: Vec<&BevImage> = images[..n].iter().collect();
            let batched = m.infer_batch(&refs);
            assert_eq!(batched.len(), n);
            for (i, b) in batched.iter().enumerate() {
                assert_eq!(*b, m.infer(&images[i]), "batch {n} row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "size does not match")]
    fn wrong_image_size_panics() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 4);
        let _ = m.infer(&blank_image(16));
    }
}
