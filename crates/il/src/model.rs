//! The trained IL artifact and its inference path.

use icoil_nn::loss::softmax_in_place;
use icoil_nn::{InferBuffers, Network, QuantScratch, QuantizedNetwork, Tensor};
use icoil_perception::{BevConfig, BevImage};
use icoil_vehicle::{Action, ActionCodec};
use serde::{Deserialize, Serialize};

/// Output of one IL inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResult {
    /// The decoded action of the argmax class.
    pub action: Action,
    /// The chosen class index.
    pub class: usize,
    /// The full softmax distribution (input to the HSA uncertainty).
    pub probs: Vec<f64>,
}

/// Numeric precision of the IL inference lane.
///
/// `F32` is the bit-reproducible reference lane and the default; `Int8`
/// is the calibrated quantized lane — roughly twice as fast per frame,
/// with per-logit error held to the calibrated tolerance
/// ([`IlModel::quant_error_bound`]) rather than to zero. Selecting `Int8`
/// requires a prior [`IlModel::calibrate_int8`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IlPrecision {
    /// The f32 SIMD lane (bit-identical to the reference forward pass).
    #[default]
    F32,
    /// The calibrated int8 lane (tolerance-bounded logits).
    Int8,
}

// Hand-written serde: the wire form is the lowercase label ("f32" /
// "int8"), which the vendored derive cannot express.
impl Serialize for IlPrecision {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for IlPrecision {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::DeError::expected("string", "IlPrecision"))?;
        s.parse().map_err(serde::DeError::custom)
    }
}

impl IlPrecision {
    /// Reads `ICOIL_IL_PRECISION` (`"f32"` or `"int8"`, default `f32`
    /// when unset).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typo silently falling back to
    /// f32 would invalidate a benchmark run.
    pub fn from_env() -> IlPrecision {
        match std::env::var("ICOIL_IL_PRECISION") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|e: String| panic!("ICOIL_IL_PRECISION: {e}")),
            Err(_) => IlPrecision::F32,
        }
    }

    /// The lowercase wire name (`"f32"` / `"int8"`), as used in NDJSON
    /// replies and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            IlPrecision::F32 => "f32",
            IlPrecision::Int8 => "int8",
        }
    }
}

impl std::str::FromStr for IlPrecision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Ok(IlPrecision::F32),
            "int8" => Ok(IlPrecision::Int8),
            other => Err(format!("unknown IL precision {other:?} (expected \"f32\" or \"int8\")")),
        }
    }
}

/// The calibrated int8 lane: compiled network plus its reusable scratch
/// and logits tensor (allocation-free after the first frame, like the
/// f32 lane's buffers).
#[derive(Debug, Clone)]
struct QuantState {
    net: QuantizedNetwork,
    scratch: QuantScratch,
    out: Tensor,
}

/// A trained IL model: network weights plus the action codec and the BEV
/// geometry it was trained with.
///
/// # Example
///
/// ```
/// use icoil_il::IlModel;
/// use icoil_perception::BevConfig;
/// use icoil_vehicle::ActionCodec;
///
/// let model = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 7);
/// let json = model.to_json();
/// let back = IlModel::from_json(&json).unwrap();
/// assert_eq!(back.codec().num_classes(), 21);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IlModel {
    network: Network,
    codec: ActionCodec,
    bev: BevConfig,
    /// Reusable input tensor for the hot inference path (not persisted).
    #[serde(skip)]
    input: Tensor,
    /// Reusable activation buffers: after the first frame, inference
    /// performs no heap allocation (not persisted).
    #[serde(skip)]
    buffers: InferBuffers,
    /// Reusable batched-logits tensor for [`IlModel::infer_batch`] (not
    /// persisted).
    #[serde(skip)]
    batch_out: Tensor,
    /// Active inference precision (not persisted; serving pins one per
    /// session and re-selects it after snapshot restore).
    #[serde(skip)]
    precision: IlPrecision,
    /// The calibrated int8 lane, present after
    /// [`IlModel::calibrate_int8`] (not persisted — calibration is a
    /// deterministic function of the weights and the calibration frames,
    /// so restores re-run it).
    #[serde(skip)]
    quant: Option<Box<QuantState>>,
}

impl IlModel {
    /// Wraps a trained network.
    pub fn new(network: Network, codec: ActionCodec, bev: BevConfig) -> Self {
        IlModel {
            network,
            codec,
            bev,
            input: Tensor::default(),
            buffers: InferBuffers::new(),
            batch_out: Tensor::default(),
            precision: IlPrecision::F32,
            quant: None,
        }
    }

    /// A freshly-initialized (untrained) model with the paper's
    /// architecture — useful for tests and as a training starting point.
    pub fn untrained(codec: ActionCodec, bev: BevConfig, seed: u64) -> Self {
        let network =
            Network::il_architecture((BevImage::CHANNELS, bev.size, bev.size), codec.num_classes(), seed);
        IlModel::new(network, codec, bev)
    }

    /// The action codec.
    pub fn codec(&self) -> &ActionCodec {
        &self.codec
    }

    /// The BEV geometry the model expects.
    pub fn bev_config(&self) -> &BevConfig {
        &self.bev
    }

    /// Mutable access to the network (the trainer drives this).
    ///
    /// Invalidates any int8 calibration: the quantized lane is a function
    /// of the weights, so mutating them drops it (and falls back to f32)
    /// rather than serving stale codes.
    pub fn network_mut(&mut self) -> &mut Network {
        self.quant = None;
        self.precision = IlPrecision::F32;
        &mut self.network
    }

    /// Builds the int8 lane from a deterministic calibration pass over
    /// recorded BEV frames (see [`QuantizedNetwork::calibrate`]). Does
    /// not switch precision by itself — call
    /// [`IlModel::set_precision`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics on an empty calibration set or a frame whose geometry
    /// differs from the model's [`BevConfig`].
    pub fn calibrate_int8(&mut self, frames: &[&BevImage]) {
        assert!(!frames.is_empty(), "calibration needs at least one frame");
        let size = self.bev.size;
        let tensors: Vec<Tensor> = frames
            .iter()
            .map(|image| {
                assert_eq!(
                    image.size, size,
                    "calibration frame size does not match the model"
                );
                Tensor::from_vec(
                    vec![BevImage::CHANNELS, size, size],
                    image.data.clone(),
                )
                .expect("BEV frame reshapes")
            })
            .collect();
        let net = QuantizedNetwork::calibrate(&self.network, &tensors);
        self.quant = Some(Box::new(QuantState {
            net,
            scratch: QuantScratch::new(),
            out: Tensor::default(),
        }));
    }

    /// Whether the int8 lane has been calibrated.
    pub fn is_calibrated(&self) -> bool {
        self.quant.is_some()
    }

    /// The active inference precision.
    pub fn precision(&self) -> IlPrecision {
        self.precision
    }

    /// Selects the inference lane used by [`IlModel::infer`] and
    /// [`IlModel::infer_batch`]. The f32 lane is always available;
    /// [`IlModel::infer_reference`] stays f32 regardless.
    ///
    /// # Panics
    ///
    /// Panics when selecting [`IlPrecision::Int8`] before
    /// [`IlModel::calibrate_int8`] has run.
    pub fn set_precision(&mut self, precision: IlPrecision) {
        assert!(
            precision == IlPrecision::F32 || self.quant.is_some(),
            "calibrate_int8 must run before selecting the int8 lane"
        );
        self.precision = precision;
    }

    /// The calibrated per-logit absolute error tolerance of the int8
    /// lane, when calibrated.
    pub fn quant_error_bound(&self) -> Option<f32> {
        self.quant.as_ref().map(|q| q.net.logit_error_bound())
    }

    /// Per-logit absolute errors observed during int8 calibration
    /// (ascending), when calibrated.
    pub fn quant_calibration_errors(&self) -> Option<&[f32]> {
        self.quant.as_ref().map(|q| q.net.calibration_errors())
    }

    /// Runs inference on one BEV image through the active precision lane
    /// ([`IlModel::set_precision`]).
    ///
    /// The forward pass reuses the model's internal buffers, so after the
    /// first frame it performs no heap allocation (only the returned
    /// [`InferResult`] is freshly allocated).
    ///
    /// # Panics
    ///
    /// Panics when the image geometry differs from the model's
    /// [`BevConfig`].
    pub fn infer(&mut self, image: &BevImage) -> InferResult {
        if self.precision == IlPrecision::Int8 {
            return self
                .infer_batch_int8(&[image])
                .pop()
                .expect("one result per image");
        }
        assert_eq!(
            image.size, self.bev.size,
            "BEV image size does not match the model"
        );
        self.input
            .resize(&[1, BevImage::CHANNELS, image.size, image.size]);
        self.input.data_mut().copy_from_slice(&image.data);
        let probs_t = self.network.infer_proba(&self.input, &mut self.buffers);
        let probs: Vec<f64> = probs_t.data().iter().map(|&v| v as f64).collect();
        // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
        let mut class = 0;
        for (i, &p) in probs_t.data().iter().enumerate() {
            if p >= probs_t.data()[class] {
                class = i;
            }
        }
        InferResult {
            action: self.codec.decode(class),
            class,
            probs,
        }
    }

    /// Runs inference on a micro-batch of BEV images, one result per
    /// image, in input order.
    ///
    /// The images are stacked into a single `[n, C, H, W]` batch and
    /// pushed through [`Network::forward_batch_into`] in one blocked
    /// pass — the serving engine's IL lane. Batching is a throughput
    /// optimization, not an approximation: every row of the batched
    /// softmax is bit-identical to [`IlModel::infer`] on that image
    /// alone, and the conformance harness (`batched_single_il`) holds
    /// the two paths to exactly that standard.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or when any image's geometry differs
    /// from the model's [`BevConfig`].
    pub fn infer_batch(&mut self, images: &[&BevImage]) -> Vec<InferResult> {
        assert!(!images.is_empty(), "infer_batch needs at least one image");
        if self.precision == IlPrecision::Int8 {
            return self.infer_batch_int8(images);
        }
        let size = self.bev.size;
        let samples: Vec<&[f32]> = images
            .iter()
            .map(|image| {
                assert_eq!(
                    image.size, size,
                    "BEV image size does not match the model"
                );
                image.data.as_slice()
            })
            .collect();
        self.network.forward_batch_into(
            &samples,
            &[BevImage::CHANNELS, size, size],
            &mut self.buffers,
            &mut self.batch_out,
        );
        softmax_in_place(&mut self.batch_out);
        let classes = self.codec.num_classes();
        let mut results = Vec::with_capacity(images.len());
        for i in 0..images.len() {
            let row = &self.batch_out.data()[i * classes..(i + 1) * classes];
            let probs: Vec<f64> = row.iter().map(|&v| v as f64).collect();
            // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
            let mut class = 0;
            for (j, &p) in row.iter().enumerate() {
                if p >= row[class] {
                    class = j;
                }
            }
            results.push(InferResult {
                action: self.codec.decode(class),
                class,
                probs,
            });
        }
        results
    }

    /// The int8 lane: quantized batched logits, then the same softmax +
    /// argmax decode as the f32 lane. Row `i` of a batch is bit-identical
    /// to a single-image int8 call — the quantized pipeline processes
    /// samples independently, so the batching contract carries over.
    fn infer_batch_int8(&mut self, images: &[&BevImage]) -> Vec<InferResult> {
        assert!(!images.is_empty(), "infer_batch needs at least one image");
        let q = self
            .quant
            .as_mut()
            .expect("int8 precision requires calibrate_int8");
        let size = self.bev.size;
        let samples: Vec<&[f32]> = images
            .iter()
            .map(|image| {
                assert_eq!(
                    image.size, size,
                    "BEV image size does not match the model"
                );
                image.data.as_slice()
            })
            .collect();
        q.net.forward_batch_into(
            &samples,
            &[BevImage::CHANNELS, size, size],
            &mut self.buffers,
            &mut q.scratch,
            &mut q.out,
        );
        softmax_in_place(&mut q.out);
        let classes = self.codec.num_classes();
        let mut results = Vec::with_capacity(images.len());
        for i in 0..images.len() {
            let row = &q.out.data()[i * classes..(i + 1) * classes];
            let probs: Vec<f64> = row.iter().map(|&v| v as f64).collect();
            // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
            let mut class = 0;
            for (j, &p) in row.iter().enumerate() {
                if p >= row[class] {
                    class = j;
                }
            }
            results.push(InferResult {
                action: self.codec.decode(class),
                class,
                probs,
            });
        }
        results
    }

    /// Runs inference through the reference (allocating) forward pass.
    ///
    /// Numerically this must agree with [`IlModel::infer`] bit-for-bit —
    /// the buffered path is an allocation optimization, not an
    /// approximation — and the conformance harness holds the two paths to
    /// exactly that standard on every fuzzed scenario.
    ///
    /// # Panics
    ///
    /// Panics when the image geometry differs from the model's
    /// [`BevConfig`].
    pub fn infer_reference(&mut self, image: &BevImage) -> InferResult {
        assert_eq!(
            image.size, self.bev.size,
            "BEV image size does not match the model"
        );
        let mut input = Tensor::zeros(vec![1, BevImage::CHANNELS, image.size, image.size]);
        input.data_mut().copy_from_slice(&image.data);
        let probs_t = self.network.predict_proba(&input);
        let probs: Vec<f64> = probs_t.data().iter().map(|&v| v as f64).collect();
        // Last maximal index, matching `Tensor::argmax_rows` tie-breaking.
        let mut class = 0;
        for (i, &p) in probs_t.data().iter().enumerate() {
            if p >= probs_t.data()[class] {
                class = i;
            }
        }
        InferResult {
            action: self.codec.decode(class),
            class,
            probs,
        }
    }

    /// Serializes weights + codec + geometry to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Restores a model from [`IlModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_perception::BevImage;

    fn blank_image(size: usize) -> BevImage {
        BevImage {
            size,
            range: 12.0,
            data: vec![0.0; BevImage::CHANNELS * size * size],
        }
    }

    #[test]
    fn infer_returns_distribution_on_simplex() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1);
        let r = m.infer(&blank_image(32));
        assert_eq!(r.probs.len(), 21);
        let sum: f64 = r.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(r.class < 21);
        assert!(r.action.validate().is_ok());
    }

    #[test]
    fn inference_is_deterministic() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 2);
        let img = blank_image(32);
        assert_eq!(m.infer(&img), m.infer(&img));
    }

    #[test]
    fn json_roundtrip_preserves_inference() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 3);
        let img = blank_image(32);
        let before = m.infer(&img);
        let mut back = IlModel::from_json(&m.to_json()).unwrap();
        assert_eq!(back.infer(&img), before);
    }

    #[test]
    fn reference_path_matches_buffered_path_bitwise() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 5);
        let mut img = blank_image(32);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = ((i * 2654435761) % 1000) as f32 / 1000.0;
        }
        let fast = m.infer(&img);
        let reference = m.infer_reference(&img);
        assert_eq!(fast, reference);
    }

    #[test]
    fn batched_inference_matches_single_sample_bitwise() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 6);
        let images: Vec<BevImage> = (0..7)
            .map(|k| {
                let mut img = blank_image(32);
                for (i, v) in img.data.iter_mut().enumerate() {
                    *v = (((i + 31 * k) * 2654435761) % 1000) as f32 / 1000.0;
                }
                img
            })
            .collect();
        for n in [1usize, 2, 7] {
            let refs: Vec<&BevImage> = images[..n].iter().collect();
            let batched = m.infer_batch(&refs);
            assert_eq!(batched.len(), n);
            for (i, b) in batched.iter().enumerate() {
                assert_eq!(*b, m.infer(&images[i]), "batch {n} row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "size does not match")]
    fn wrong_image_size_panics() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 4);
        let _ = m.infer(&blank_image(16));
    }

    fn noisy_images(count: usize, seed: usize) -> Vec<BevImage> {
        (0..count)
            .map(|k| {
                let mut img = blank_image(32);
                for (i, v) in img.data.iter_mut().enumerate() {
                    *v = (((i + 31 * (k + seed)) * 2654435761) % 1000) as f32 / 1000.0;
                }
                img
            })
            .collect()
    }

    #[test]
    fn precision_defaults_to_f32_and_calibration_does_not_change_it() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 8);
        assert_eq!(m.precision(), IlPrecision::F32);
        assert!(!m.is_calibrated());
        let images = noisy_images(4, 0);
        let before = m.infer(&images[0]);
        m.calibrate_int8(&images.iter().collect::<Vec<_>>());
        assert!(m.is_calibrated());
        assert_eq!(m.precision(), IlPrecision::F32);
        // the f32 lane is untouched by calibration
        assert_eq!(m.infer(&images[0]), before);
    }

    #[test]
    fn int8_lane_stays_within_calibrated_bound() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 9);
        let images = noisy_images(8, 3);
        let calib: Vec<&BevImage> = images[..4].iter().collect();
        m.calibrate_int8(&calib);
        let bound = m.quant_error_bound().unwrap() as f64;
        for img in &images[4..] {
            m.set_precision(IlPrecision::F32);
            let f = m.infer(img);
            m.set_precision(IlPrecision::Int8);
            let q = m.infer(img);
            assert!(q.action.validate().is_ok());
            let sum: f64 = q.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            // logit-space bound loosely implies the probs stay close; a
            // coarse sanity margin is enough here (conformance check #13
            // holds the logits to the exact calibrated bound)
            for (a, b) in f.probs.iter().zip(&q.probs) {
                assert!((a - b).abs() < bound.max(0.25), "prob drift {a} vs {b}");
            }
        }
    }

    #[test]
    fn int8_batch_matches_single_image_bitwise() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 10);
        let images = noisy_images(6, 7);
        m.calibrate_int8(&images.iter().collect::<Vec<_>>());
        m.set_precision(IlPrecision::Int8);
        let refs: Vec<&BevImage> = images.iter().collect();
        let batched = m.infer_batch(&refs);
        for (i, b) in batched.iter().enumerate() {
            assert_eq!(*b, m.infer(&images[i]), "int8 batch row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "calibrate_int8 must run")]
    fn int8_without_calibration_panics() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 11);
        m.set_precision(IlPrecision::Int8);
    }

    #[test]
    fn weight_mutation_drops_the_calibrated_lane() {
        let mut m = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 12);
        let images = noisy_images(2, 1);
        m.calibrate_int8(&images.iter().collect::<Vec<_>>());
        m.set_precision(IlPrecision::Int8);
        let _ = m.network_mut();
        assert!(!m.is_calibrated());
        assert_eq!(m.precision(), IlPrecision::F32);
    }

    #[test]
    fn precision_parses_and_labels_round_trip() {
        assert_eq!("f32".parse::<IlPrecision>().unwrap(), IlPrecision::F32);
        assert_eq!("INT8".parse::<IlPrecision>().unwrap(), IlPrecision::Int8);
        assert!("fp16".parse::<IlPrecision>().is_err());
        assert_eq!(IlPrecision::F32.label(), "f32");
        assert_eq!(IlPrecision::Int8.label(), "int8");
        assert_eq!(serde_json::to_string(&IlPrecision::Int8).unwrap(), "\"int8\"");
        assert_eq!(IlPrecision::default(), IlPrecision::F32);
    }
}
