//! The imitation-learning (IL) module `f_IL` of iCOIL (§IV-A).
//!
//! IL is formulated as `M`-way classification over discretized actions:
//! a CNN (three conv+ReLU+max-pool blocks, four dense layers, softmax)
//! maps ego-centric BEV images to action classes. This crate provides the
//! whole IL lifecycle:
//!
//! * [`expert`] — the scripted demonstrator (hybrid A* + CO tracking on
//!   ground truth), standing in for the paper's human driver;
//! * [`collect`] — demonstration harvesting into an `icoil-nn`
//!   [`Dataset`](icoil_nn::Dataset) of (BEV image, action class) pairs;
//! * [`mod@train`] — the supervised trainer minimizing the cross-entropy
//!   loss (eqs. 2–3);
//! * [`IlModel`] — the trained artifact: network + action codec + BEV
//!   geometry, serializable to JSON and runnable at kHz rates.
//!
//! # Example
//!
//! ```no_run
//! use icoil_il::{collect, train, TrainConfig};
//! use icoil_perception::BevConfig;
//! use icoil_vehicle::ActionCodec;
//! use icoil_world::{Difficulty, ScenarioConfig};
//!
//! let codec = ActionCodec::default();
//! let bev = BevConfig::default();
//! let scenarios: Vec<_> = (0..10)
//!     .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
//!     .collect();
//! let dataset = collect::collect_demonstrations(&scenarios, &codec, &bev, 60.0);
//! let (model, report) = train::train(&dataset, &codec, &bev, &TrainConfig::default());
//! println!("final accuracy {:.2}", report.final_accuracy());
//! # let _ = model;
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod collect;
pub mod dagger;
pub mod expert;
pub mod model;
pub mod train;

pub use collect::collect_demonstrations;
pub use dagger::{dagger_train, DaggerConfig, DaggerReport};
pub use expert::ExpertPolicy;
pub use model::{IlModel, IlPrecision, InferResult};
pub use train::{train, train_incremental, TrainConfig, TrainReport};
