//! Demonstration harvesting: expert episodes → labeled BEV dataset.

use crate::expert::ExpertPolicy;
use icoil_nn::Dataset;
use icoil_perception::{BevConfig, BevRenderer};
use icoil_vehicle::{Action, ActionCodec};
use icoil_world::episode::{Observation, Policy};
use icoil_world::{NoiseConfig, ScenarioConfig, World};
use rand::Rng;

/// Runs the expert on each scenario and records one `(BEV image, action
/// class)` sample per frame, exactly as the paper's dataset pairs
/// ego-view-derived BEV images with discretized expert actions.
///
/// Covariate shift is countered DART-style: the *executed* action is
/// occasionally perturbed (random steering offset) while the recorded
/// label stays the expert's corrective action for the perturbed state —
/// so the dataset teaches recovery from the small deviations a learner
/// will inevitably make. Episodes that end in collision or timeout are
/// discarded — the paper's dataset contains only successful
/// demonstrations. BEV rendering is *clean* (no noise): demonstrations
/// teach the nominal mapping; noise robustness is exactly what the hard
/// level later probes.
pub fn collect_demonstrations(
    scenarios: &[ScenarioConfig],
    codec: &ActionCodec,
    bev: &BevConfig,
    max_time: f64,
) -> Dataset {
    let mut dataset = Dataset::new(vec![3, bev.size, bev.size]);
    let renderer = BevRenderer::new(*bev);
    for config in scenarios {
        let scenario = config.build();
        let params = scenario.vehicle_params;
        let mut world = World::new(scenario);
        let mut expert = ExpertPolicy::new(params);
        // roll the episode manually so we can snapshot sensing per frame
        expert.begin_episode(&Observation::new(&world));
        let mut samples: Vec<(Vec<f32>, usize)> = Vec::new();
        let mut outcome_ok = false;
        // per-frame loop mirroring run_episode
        if world.in_collision() {
            continue;
        }
        let mut noise_rng: rand::rngs::SmallRng =
            rand::SeedableRng::seed_from_u64(config.seed ^ 0xD1CE);
        loop {
            let obs = Observation::new(&world);
            let decision = expert.decide(&obs);
            let ego = obs.ego();
            let truth = obs.obstacles();
            // clean rendering: noise-free, RNG unused
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            let image = renderer.render(&ego, &truth, world.map(), &NoiseConfig::none(), &mut rng);
            samples.push((image.data.clone(), codec.encode(&decision.action)));
            // DART: execute a perturbed action 20% of the time; the
            // expert corrects from the perturbed state on later frames
            let executed = if noise_rng.gen_bool(0.2) {
                Action {
                    steer: (decision.action.steer
                        + noise_rng.gen_range(-0.4..0.4))
                    .clamp(-1.0, 1.0),
                    ..decision.action
                }
            } else {
                decision.action
            };
            world.step(&executed);
            if world.in_collision() {
                break;
            }
            if world.at_goal() {
                outcome_ok = true;
                break;
            }
            if world.time() >= max_time {
                break;
            }
        }
        if outcome_ok {
            for (image, label) in samples {
                dataset
                    .push(&image, label)
                    .expect("BEV sample length matches dataset shape");
            }
        }
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_world::Difficulty;

    #[test]
    fn collection_produces_labeled_frames() {
        let codec = ActionCodec::default();
        let bev = BevConfig::default();
        let scenarios = vec![ScenarioConfig::new(Difficulty::Easy, 4)];
        let d = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
        assert!(d.len() > 100, "an episode is hundreds of frames, got {}", d.len());
        assert_eq!(d.sample_shape(), &[3, 32, 32]);
        // labels must span both forward and reverse classes
        let counts = d.class_counts(codec.num_classes());
        let reverse_total: usize = counts[..codec.steer_bins()].iter().sum();
        let forward_total: usize = counts[2 * codec.steer_bins()..].iter().sum();
        assert!(forward_total > 0, "needs forward samples");
        assert!(reverse_total > 0, "needs reverse samples");
    }

    #[test]
    fn failed_episodes_are_discarded() {
        let codec = ActionCodec::default();
        let bev = BevConfig::default();
        // max_time too short for any episode to finish
        let scenarios = vec![ScenarioConfig::new(Difficulty::Easy, 4)];
        let d = collect_demonstrations(&scenarios, &codec, &bev, 0.5);
        assert_eq!(d.len(), 0);
    }
}
