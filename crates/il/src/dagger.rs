//! DAgger: dataset aggregation for imitation learning.
//!
//! The paper's related work points at HG-DAgger \[15\] as the remedy for
//! IL's covariate shift: let the *learner* drive, let the *expert* label
//! the states the learner actually visits, aggregate and retrain. This
//! module implements classic DAgger with the scripted CO expert as the
//! labeler — an optional extension over the base behavioral cloning in
//! [`crate::collect`].

use crate::expert::ExpertPolicy;
use crate::model::IlModel;
use crate::train::{train, TrainConfig};
use icoil_nn::Dataset;
use icoil_perception::BevRenderer;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{Observation, Policy};
use icoil_world::{NoiseConfig, ScenarioConfig, World};
use serde::{Deserialize, Serialize};

/// DAgger hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaggerConfig {
    /// Aggregation rounds after the initial behavioral-cloning round.
    pub rounds: usize,
    /// Learner episodes rolled out per round.
    pub episodes_per_round: u64,
    /// Episode time budget (simulated seconds).
    pub max_time: f64,
    /// Training hyperparameters (applied after every aggregation).
    pub train: TrainConfig,
}

impl Default for DaggerConfig {
    fn default() -> Self {
        DaggerConfig {
            rounds: 2,
            episodes_per_round: 4,
            max_time: 60.0,
            train: TrainConfig::default(),
        }
    }
}

/// Per-round progress of a DAgger run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaggerReport {
    /// Dataset size after each round (round 0 = behavioral cloning).
    pub dataset_sizes: Vec<usize>,
    /// Final training accuracy after each round.
    pub accuracies: Vec<f64>,
}

/// Runs DAgger on top of an existing demonstration dataset.
///
/// Round 0 trains on `seed_dataset` alone; each later round rolls the
/// current learner out on fresh scenarios, labels every visited state
/// with the expert's action, aggregates, and retrains from scratch
/// (fixed seed, so the procedure stays deterministic).
///
/// # Panics
///
/// Panics when the seed dataset is empty or shaped inconsistently with
/// the codec/BEV config.
pub fn dagger_train(
    seed_dataset: Dataset,
    scenario_base_seed: u64,
    codec: &ActionCodec,
    bev: &icoil_perception::BevConfig,
    config: &DaggerConfig,
) -> (IlModel, DaggerReport) {
    let mut dataset = seed_dataset;
    let mut sizes = vec![dataset.len()];
    let (mut model, report) = train(&dataset, codec, bev, &config.train);
    let mut accuracies = vec![report.final_accuracy()];
    let renderer = BevRenderer::new(*bev);

    for round in 0..config.rounds {
        for ep in 0..config.episodes_per_round {
            let scenario = ScenarioConfig::new(
                icoil_world::Difficulty::Easy,
                scenario_base_seed + round as u64 * 1000 + ep,
            )
            .build();
            let params = scenario.vehicle_params;
            let mut world = World::new(scenario);
            let mut expert = ExpertPolicy::new(params);
            expert.begin_episode(&Observation::new(&world));
            loop {
                let obs = Observation::new(&world);
                // the expert labels the state the learner visits
                let label_decision = expert.decide(&obs);
                let ego = obs.ego();
                let truth = obs.obstacles();
                let mut rng = rand::SeedableRng::seed_from_u64(0);
                let image = renderer.render(
                    &ego,
                    &truth,
                    world.map(),
                    &NoiseConfig::none(),
                    &mut rng,
                );
                dataset
                    .push(&image.data, codec.encode(&label_decision.action))
                    .expect("BEV sample matches dataset shape");
                // ...but the learner drives
                let learner = model.infer(&image);
                world.step(&learner.action);
                if world.in_collision() || world.at_goal() || world.time() >= config.max_time
                {
                    break;
                }
            }
        }
        sizes.push(dataset.len());
        let (m, report) = train(&dataset, codec, bev, &config.train);
        model = m;
        accuracies.push(report.final_accuracy());
    }

    (
        model,
        DaggerReport {
            dataset_sizes: sizes,
            accuracies,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_demonstrations;
    use icoil_perception::BevConfig;

    #[test]
    fn dagger_grows_dataset_and_stays_deterministic() {
        let codec = ActionCodec::default();
        let bev = BevConfig::default();
        // several seeds: DART perturbations can fail an unlucky episode,
        // and failed episodes are discarded by design
        let scenarios: Vec<ScenarioConfig> = (9300..9304)
            .map(|s| ScenarioConfig::new(icoil_world::Difficulty::Easy, s))
            .collect();
        let seed = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
        assert!(!seed.is_empty());
        let config = DaggerConfig {
            rounds: 1,
            episodes_per_round: 1,
            max_time: 5.0, // keep the test fast: short learner rollouts
            train: TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            },
        };
        let run = || dagger_train(seed.clone(), 9400, &codec, &bev, &config);
        let (_, r1) = run();
        let (_, r2) = run();
        assert_eq!(r1, r2, "DAgger must be deterministic");
        assert_eq!(r1.dataset_sizes.len(), 2);
        assert!(
            r1.dataset_sizes[1] > r1.dataset_sizes[0],
            "aggregation must add samples"
        );
        assert_eq!(r1.accuracies.len(), 2);
    }
}
