//! The scripted expert demonstrator.
//!
//! The paper collects demonstrations from a human driver on MoCAM. Our
//! expert is the CO stack run on *clean ground truth* (no sensing noise,
//! perfect boxes): it produces competent, collision-free parking with
//! both forward and reverse phases — the same data profile (2 624
//! forward / 2 547 reverse samples in the paper) without a human in the
//! loop.

use icoil_co::{CoConfig, CoController};
use icoil_world::episode::{Decision, ModeTag, Observation, Policy};
use icoil_vehicle::VehicleParams;

/// A [`Policy`] that drives with the CO stack on ground-truth obstacles.
pub struct ExpertPolicy {
    controller: CoController,
}

impl ExpertPolicy {
    /// Creates an expert for the given vehicle.
    pub fn new(params: VehicleParams) -> Self {
        ExpertPolicy {
            controller: CoController::new(CoConfig::default(), params),
        }
    }

    /// Creates an expert with a custom CO configuration.
    pub fn with_config(config: CoConfig, params: VehicleParams) -> Self {
        ExpertPolicy {
            controller: CoController::new(config, params),
        }
    }

    /// Access to the underlying controller (e.g. for its planned path).
    pub fn controller(&self) -> &CoController {
        &self.controller
    }
}

impl Policy for ExpertPolicy {
    fn begin_episode(&mut self, _obs: &Observation) {
        self.controller.reset();
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let boxes = obs.obstacles(); // ground truth
        let out = self.controller.control(obs, &boxes);
        Decision::tagged(out.action, ModeTag::Co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_world::episode::{run_episode, EpisodeConfig};
    use icoil_world::{Difficulty, ScenarioConfig, World};

    #[test]
    fn expert_parks_on_easy_scenario() {
        let scenario = ScenarioConfig::new(Difficulty::Easy, 4).build();
        let params = scenario.vehicle_params;
        let mut world = World::new(scenario);
        let mut expert = ExpertPolicy::new(params);
        let result = run_episode(
            &mut world,
            &mut expert,
            &EpisodeConfig {
                max_time: 90.0,
                record_trace: true,
            },
        );
        assert!(
            result.is_success(),
            "expert must park; got {:?} after {:.1}s at distance {:.2}",
            result.outcome,
            result.parking_time,
            world.distance_to_goal()
        );
        // the trace must contain reverse driving (reverse-in parking)
        assert!(result.trace.iter().any(|f| f.action.reverse));
        assert!(result.trace.iter().any(|f| !f.action.reverse));
    }

    #[test]
    fn expert_is_deterministic() {
        let run = || {
            let scenario = ScenarioConfig::new(Difficulty::Easy, 8).build();
            let params = scenario.vehicle_params;
            let mut world = World::new(scenario);
            let mut expert = ExpertPolicy::new(params);
            run_episode(&mut world, &mut expert, &EpisodeConfig::default())
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.trace, b.trace);
    }
}
