//! Supervised training of the IL network (eqs. 2–3).

use crate::model::IlModel;
use icoil_nn::optim::{Adam, Optimizer};
use icoil_nn::{loss, Dataset};
use icoil_perception::BevConfig;
use icoil_vehicle::ActionCodec;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for weight init and shuffling.
    pub seed: u64,
    /// Label-smoothing mass `ε` (0 disables; keeps the softmax from
    /// collapsing to zero entropy, which would blind the HSA).
    pub label_smoothing: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            lr: 1e-3,
            seed: 7,
            label_smoothing: 0.1,
        }
    }
}

/// Per-epoch training curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub losses: Vec<f64>,
    /// Training-set accuracy per epoch.
    pub accuracies: Vec<f64>,
}

impl TrainReport {
    /// Accuracy after the final epoch (`NaN` when training never ran).
    pub fn final_accuracy(&self) -> f64 {
        self.accuracies.last().copied().unwrap_or(f64::NAN)
    }

    /// Loss after the final epoch (`NaN` when training never ran).
    pub fn final_loss(&self) -> f64 {
        self.losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Trains the paper's IL architecture on a demonstration dataset.
///
/// Returns the trained model and the loss/accuracy curves.
///
/// # Panics
///
/// Panics for an empty dataset or a dataset whose sample shape does not
/// match the BEV geometry.
pub fn train(
    dataset: &Dataset,
    codec: &ActionCodec,
    bev: &BevConfig,
    config: &TrainConfig,
) -> (IlModel, TrainReport) {
    let mut model = IlModel::untrained(*codec, *bev, config.seed);
    let report = train_incremental(&mut model, dataset, config);
    (model, report)
}

/// Continues training an existing model in place — the warm-started
/// entry point the adaptation loop's retrainer uses: generation *g + 1*
/// starts from generation *g*'s weights and sees the grown aggregate
/// dataset, so each retraining pass refines rather than restarts.
///
/// Fresh Adam moments per call; the shuffling stream derives from
/// `config.seed` exactly as in [`train`], so a retraining generation is
/// a pure function of `(previous weights, dataset, config)`.
///
/// Note that touching the network drops any int8 calibration the model
/// carried (`IlModel::network_mut` resets the precision to f32) — the
/// serving side re-calibrates each published generation on its
/// deterministic frame set before the quantized lane serves it.
///
/// # Panics
///
/// Panics for an empty dataset or a dataset whose sample shape does not
/// match the model's BEV geometry.
pub fn train_incremental(
    model: &mut IlModel,
    dataset: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    assert_eq!(
        dataset.sample_shape(),
        &[3, model.bev_config().size, model.bev_config().size],
        "dataset sample shape must match the BEV geometry"
    );
    let mut opt = Adam::new(config.lr);
    let mut losses = Vec::with_capacity(config.epochs);
    let mut accuracies = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;
        let batches = dataset.shuffled_batches(config.batch_size, config.seed ^ (epoch as u64));
        let n_batches = batches.len();
        for idx in batches {
            let (x, y) = dataset.batch(&idx);
            let net = model.network_mut();
            let logits = net.forward(&x, true);
            let (l, grad) = loss::cross_entropy_smoothed(&logits, &y, config.label_smoothing);
            correct += (loss::accuracy(&logits, &y) * y.len() as f64).round() as usize;
            net.backward(&grad);
            opt.step(net);
            net.zero_grad();
            epoch_loss += l as f64;
        }
        losses.push(epoch_loss / n_batches as f64);
        accuracies.push(correct as f64 / dataset.len() as f64);
    }
    TrainReport { losses, accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_vehicle::Action;

    /// Builds a tiny synthetic dataset where the label is recoverable
    /// from the image: obstacle on the left → steer right, and vice
    /// versa.
    fn synthetic_dataset(bev: &BevConfig, codec: &ActionCodec, n: usize) -> Dataset {
        let mut d = Dataset::new(vec![3, bev.size, bev.size]);
        let s = bev.size;
        for i in 0..n {
            let mut img = vec![0.0f32; 3 * s * s];
            let left = i % 2 == 0;
            let rows = if left { 0..s / 2 } else { s / 2..s };
            for r in rows {
                for c in s / 2..s {
                    img[r * s + c] = 1.0;
                }
            }
            let steer = if left { -1.0 } else { 1.0 };
            let label = codec.encode(&Action::forward(0.6, steer));
            d.push(&img, label).unwrap();
        }
        d
    }

    #[test]
    fn training_learns_synthetic_rule() {
        let bev = BevConfig {
            size: 16,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let d = synthetic_dataset(&bev, &codec, 40);
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 8,
            lr: 2e-3,
            seed: 5,
            label_smoothing: 0.05,
        };
        let (_, report) = train(&d, &codec, &bev, &cfg);
        assert_eq!(report.losses.len(), 12);
        assert!(
            report.final_loss() < report.losses[0] * 0.5,
            "loss {} -> {}",
            report.losses[0],
            report.final_loss()
        );
        assert!(report.final_accuracy() > 0.9, "accuracy {}", report.final_accuracy());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let bev = BevConfig {
            size: 16,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let d = synthetic_dataset(&bev, &codec, 16);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 1e-3,
            seed: 9,
            label_smoothing: 0.1,
        };
        let (_, r1) = train(&d, &codec, &bev, &cfg);
        let (_, r2) = train(&d, &codec, &bev, &cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn incremental_training_warm_starts_and_is_deterministic() {
        let bev = BevConfig {
            size: 16,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let d = synthetic_dataset(&bev, &codec, 24);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 2e-3,
            seed: 3,
            label_smoothing: 0.05,
        };
        let run = || {
            let (mut model, first) = train(&d, &codec, &bev, &cfg);
            let more = TrainConfig { epochs: 2, ..cfg };
            let second = train_incremental(&mut model, &d, &more);
            (model.to_json(), first, second)
        };
        let (w1, first, second) = run();
        // the continuation starts from the trained weights, not from
        // scratch: its first epoch must sit below the cold first epoch
        assert!(
            second.losses[0] < first.losses[0] * 0.8,
            "warm start {} vs cold start {}",
            second.losses[0],
            first.losses[0]
        );
        let (w2, f2, s2) = run();
        assert_eq!(w1, w2, "retraining must be seed-deterministic");
        assert_eq!((first, second), (f2, s2));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let bev = BevConfig::default();
        let codec = ActionCodec::default();
        let d = Dataset::new(vec![3, bev.size, bev.size]);
        let _ = train(&d, &codec, &bev, &TrainConfig::default());
    }
}
