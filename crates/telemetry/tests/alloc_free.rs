//! Proves the recording hot path is allocation-free after warm-up.
//!
//! The "zero overhead when disabled" contract has two halves: a
//! disabled sink skips all trace formatting behind one boolean, and the
//! metric updates that always run are plain array writes. Both halves
//! must stay off the allocator once the histograms exist — this is what
//! lets the recorder sit inside the per-frame control loop.

use icoil_telemetry::{FrameEvent, MemorySink, Recorder, SolveEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn event(frame: usize) -> FrameEvent<'static> {
    FrameEvent {
        frame,
        time: frame as f64 * 0.1,
        mode: "CO",
        raw_mode: "CO",
        uncertainty: 0.4,
        complexity: 1.2e5,
        ratio: 3.3e-6,
        perception_s: 1.5e-5,
        il_s: 8.0e-5,
        hsa_s: 6.0e-7,
        co_s: 3.0e-4,
        total_s: 4.0e-4,
        emergency: false,
        safe_brake: false,
        solve: Some(SolveEvent {
            scp_passes: 2,
            admm_iterations: 80 + frame as u64,
            backend: "Dense",
            reg_bumps: 0,
            symbolic_cache_hits: 0,
            symbolic_rebuilds: 0,
            factor_cache_hits: 1,
            cold_restart: false,
            numerical_error: false,
        }),
    }
}

/// Measures the fewest allocations any `windows`×`per_window` run of
/// `body` performs. The counter is process-wide and the libtest
/// controller thread can allocate concurrently, so requiring one clean
/// window separates genuine per-frame allocations (which taint every
/// window) from harness noise.
fn cleanest_window(windows: usize, per_window: usize, mut body: impl FnMut(usize)) -> usize {
    let mut cleanest = usize::MAX;
    for w in 0..windows {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..per_window {
            body(w * per_window + i);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    cleanest
}

#[test]
fn disabled_recorder_frames_are_allocation_free() {
    let mut recorder = Recorder::new();
    // warm-up: first observations size the histogram bucket vectors
    recorder.frame(&event(0));
    recorder.frame(&event(1));

    let cleanest = cleanest_window(5, 50, |i| recorder.frame(&event(i)));
    assert_eq!(
        cleanest, 0,
        "a disabled recorder allocated at least {cleanest} times in every 50-frame window"
    );
}

#[test]
fn tracing_recorder_reuses_its_line_buffer() {
    let (sink, lines) = MemorySink::new();
    let mut recorder = Recorder::with_sink(Box::new(sink));
    // warm-up sizes the histograms and the shared line buffer
    recorder.frame(&event(0));
    recorder.frame(&event(1));

    // The MemorySink itself stores each line (two allocations: the
    // String and the Vec growth), so "no formatting overhead" here means
    // a small constant per frame, not zero: the JSON assembly itself
    // must reuse the recorder's line buffer. Allow the sink's own
    // per-line cost with margin and nothing more.
    let per_window = 50;
    let cleanest = cleanest_window(5, per_window, |i| recorder.frame(&event(i)));
    assert!(
        cleanest <= 4 * per_window,
        "tracing allocated {cleanest} times per {per_window} frames — the line buffer is not \
         being reused"
    );
    assert!(lines.lock().unwrap().len() >= per_window);
}
