//! Counter/series identifiers and the mergeable [`Metrics`] store.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// Monotone event counters recorded by the stack.
///
/// Every counter is a pure function of the (seeded, deterministic)
/// computation — no wall-clock content — so merged counters are
/// bit-identical across worker counts and schedulings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Policy decisions taken.
    Frames = 0,
    /// Frames whose action came from the IL mode.
    IlFrames,
    /// Frames whose action came from the CO mode.
    CoFrames,
    /// Committed (debounced) HSA mode changes.
    HsaSwitches,
    /// MPC solves performed.
    MpcSolves,
    /// SCP linearization passes across all solves.
    ScpPasses,
    /// ADMM iterations across all QP solves.
    AdmmIterations,
    /// Solves whose KKT factorization resolved to the dense backend.
    DenseSolves,
    /// Solves whose KKT factorization resolved to the sparse backend.
    SparseSolves,
    /// Sparse symbolic analyses served from the workspace cache.
    SymbolicCacheHits,
    /// Sparse symbolic analyses computed fresh.
    SymbolicRebuilds,
    /// Whole-factorization cache reuses (identical scaled data).
    FactorCacheHits,
    /// Diagonal regularization bumps while factorizing KKT matrices.
    RegBumps,
    /// Warm-start pathology fallbacks (cold re-solve of a frame).
    ColdRestarts,
    /// QP solves that ended in `QpStatus::NumericalError`.
    NumericalErrors,
    /// Frames degraded to the safe braking action after a numerical
    /// failure.
    SafeBrakes,
    /// Emergency-brake frames (no path / planner failure).
    EmergencyBrakes,
    /// Episodes completed.
    Episodes,
    /// Episodes that parked successfully.
    Successes,
    /// Episodes that ended in a collision.
    Collisions,
    /// Episodes that ran out of time.
    Timeouts,
    /// Serving sessions created.
    ServeSessions,
    /// Micro-batched IL inference passes run by the serving engine.
    IlBatches,
    /// CO solve requests admitted to the serving deadline lane.
    CoAdmitted,
    /// CO solve requests shed by the serving lane (queue full or
    /// deadline expired) and answered with the degraded full brake.
    CoShed,
    /// Session snapshots encoded by the serving engine.
    ServeSnapshots,
    /// Sessions restored from a snapshot by the serving engine.
    ServeRestores,
    /// Sessions evicted (snapshotted and removed) by the serving engine.
    ServeEvictions,
    /// Frames answered by the quantized int8 IL lane.
    IlFramesInt8,
    /// Gear reversals executed (the served action flipping `reverse`
    /// relative to the previous frame) — the maneuver-taxonomy signal.
    GearReversals,
    /// CO admissions for sessions on the `reverse_in` map family.
    CoAdmittedReverseIn,
    /// CO admissions for sessions on the `parallel_curb` map family.
    CoAdmittedParallelCurb,
    /// CO admissions for sessions on the `angled_echelon` map family.
    CoAdmittedAngledEchelon,
    /// CO admissions for sessions on the `pillared_garage` map family.
    CoAdmittedPillaredGarage,
    /// CO admissions for sessions on the `dead_end_stub` map family.
    CoAdmittedDeadEndStub,
    /// CO admissions for sessions on the `crowded_lot` map family.
    CoAdmittedCrowdedLot,
    /// CO sheds for sessions on the `reverse_in` map family.
    CoShedReverseIn,
    /// CO sheds for sessions on the `parallel_curb` map family.
    CoShedParallelCurb,
    /// CO sheds for sessions on the `angled_echelon` map family.
    CoShedAngledEchelon,
    /// CO sheds for sessions on the `pillared_garage` map family.
    CoShedPillaredGarage,
    /// CO sheds for sessions on the `dead_end_stub` map family.
    CoShedDeadEndStub,
    /// CO sheds for sessions on the `crowded_lot` map family.
    CoShedCrowdedLot,
    /// Weight generations materialized by a serving shard from the
    /// versioned weight store (the hot-swap events of the adaptation
    /// loop: one per shard per generation it actually serves).
    WeightSwaps,
    /// IL-mode actions clipped by the safety projection layer (frames
    /// whose raw IL action violated an actuation bound or an obstacle
    /// half-space and was projected back into the feasible set).
    SafetyProjections,
}

/// Number of [`Counter`] variants (the fixed counter-array length).
pub const NUM_COUNTERS: usize = 44;

const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "frames",
    "il_frames",
    "co_frames",
    "hsa_switches",
    "mpc_solves",
    "scp_passes",
    "admm_iterations",
    "dense_solves",
    "sparse_solves",
    "symbolic_cache_hits",
    "symbolic_rebuilds",
    "factor_cache_hits",
    "reg_bumps",
    "cold_restarts",
    "numerical_errors",
    "safe_brakes",
    "emergency_brakes",
    "episodes",
    "successes",
    "collisions",
    "timeouts",
    "serve_sessions",
    "il_batches",
    "co_admitted",
    "co_shed",
    "serve_snapshots",
    "serve_restores",
    "serve_evictions",
    "il_frames_int8",
    "gear_reversals",
    "co_admitted_reverse_in",
    "co_admitted_parallel_curb",
    "co_admitted_angled_echelon",
    "co_admitted_pillared_garage",
    "co_admitted_dead_end_stub",
    "co_admitted_crowded_lot",
    "co_shed_reverse_in",
    "co_shed_parallel_curb",
    "co_shed_angled_echelon",
    "co_shed_pillared_garage",
    "co_shed_dead_end_stub",
    "co_shed_crowded_lot",
    "weight_swaps",
    "safety_projections",
];

impl Counter {
    /// The snake_case name used in reports and snapshots.
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }

    /// Per-family CO admission counters, indexed in the map-family
    /// sampling order (`MapFamilyKind::ALL` in `icoil-world`:
    /// reverse_in, parallel_curb, angled_echelon, pillared_garage,
    /// dead_end_stub, crowded_lot). The telemetry crate does not depend
    /// on the world crate, so the order is a documented contract,
    /// asserted where the two meet (the serving engine's tests).
    pub const CO_ADMITTED_BY_FAMILY: [Counter; 6] = [
        Counter::CoAdmittedReverseIn,
        Counter::CoAdmittedParallelCurb,
        Counter::CoAdmittedAngledEchelon,
        Counter::CoAdmittedPillaredGarage,
        Counter::CoAdmittedDeadEndStub,
        Counter::CoAdmittedCrowdedLot,
    ];

    /// Per-family CO shed counters, in the same family order as
    /// [`Counter::CO_ADMITTED_BY_FAMILY`].
    pub const CO_SHED_BY_FAMILY: [Counter; 6] = [
        Counter::CoShedReverseIn,
        Counter::CoShedParallelCurb,
        Counter::CoShedAngledEchelon,
        Counter::CoShedPillaredGarage,
        Counter::CoShedDeadEndStub,
        Counter::CoShedCrowdedLot,
    ];
}

/// Histogram series recorded by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Series {
    /// Whole-frame policy latency (seconds). Wall-clock.
    FrameTotal = 0,
    /// Perception stage latency (seconds). Wall-clock.
    Perception,
    /// IL forward-pass latency (seconds). Wall-clock.
    IlForward,
    /// HSA update latency (seconds). Wall-clock.
    HsaUpdate,
    /// CO solve latency — planning + MPC (seconds). Wall-clock.
    CoSolve,
    /// ADMM iterations per MPC solve. Deterministic.
    AdmmPerSolve,
    /// SCP passes per MPC solve. Deterministic.
    ScpPerSolve,
    /// Rows per micro-batched IL pass in the serving engine.
    /// Load-dependent (arrival timing decides batch composition).
    IlBatchSize,
    /// CO lane queue depth observed at admission. Load-dependent.
    CoQueueDepth,
    /// IL-lane frame latency in the serving engine, request receipt to
    /// reply (seconds). Wall-clock.
    ServeIlLane,
    /// CO-lane frame latency, request receipt to reply after the worker
    /// solve or shed (seconds). Wall-clock.
    ServeCoLane,
    /// Per-logit absolute error of the int8 IL lane observed at
    /// calibration time (recorded once per calibrated engine shard).
    /// Load-dependent (which shards calibrate depends on session
    /// placement), so exempt from `deterministic_eq`.
    IlQuantAbsErr,
    /// Magnitude of a safety-projection clip: the command-space distance
    /// between the raw IL action and its projection onto the feasible
    /// set, recorded only on frames the projection actually clipped.
    /// A pure function of the seeded computation — deterministic.
    SafetyClipMag,
}

/// Number of [`Series`] variants (the fixed histogram-array length).
pub const NUM_SERIES: usize = 13;

impl Series {
    /// Whether the series holds wall-clock timings or load-dependent
    /// serving content. These series are excluded from
    /// [`Metrics::deterministic_eq`]: their content legitimately differs
    /// between runs (and, for the serving series, between schedulings).
    pub fn is_timing(self) -> bool {
        matches!(
            self,
            Series::FrameTotal
                | Series::Perception
                | Series::IlForward
                | Series::HsaUpdate
                | Series::CoSolve
                | Series::IlBatchSize
                | Series::CoQueueDepth
                | Series::ServeIlLane
                | Series::ServeCoLane
                | Series::IlQuantAbsErr
        )
    }

    fn all() -> [Series; NUM_SERIES] {
        [
            Series::FrameTotal,
            Series::Perception,
            Series::IlForward,
            Series::HsaUpdate,
            Series::CoSolve,
            Series::AdmmPerSolve,
            Series::ScpPerSolve,
            Series::IlBatchSize,
            Series::CoQueueDepth,
            Series::ServeIlLane,
            Series::ServeCoLane,
            Series::IlQuantAbsErr,
            Series::SafetyClipMag,
        ]
    }
}

/// Accumulated counters and histograms.
///
/// The storage (two fixed-length `Vec`s) is allocated once at
/// construction; [`Metrics::add`] and [`Metrics::observe`] never
/// allocate. Merging ([`Metrics::merge`]) is element-wise, so merging
/// per-episode metrics in episode order gives the same result at every
/// parallelism — integer content exactly, floating sums up to the one
/// fixed association order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    counters: Vec<u64>,
    series: Vec<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Empty metrics with the fixed storage allocated.
    pub fn new() -> Self {
        Metrics {
            counters: vec![0; NUM_COUNTERS],
            series: (0..NUM_SERIES).map(|_| Histogram::new()).collect(),
        }
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Records an observation into a series histogram.
    pub fn observe(&mut self, s: Series, v: f64) {
        self.series[s as usize].record(v);
    }

    /// The histogram of a series.
    pub fn series(&self, s: Series) -> &Histogram {
        &self.series[s as usize]
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.series.iter().all(|h| h.count() == 0)
    }

    /// Adds another metrics set into this one (element-wise).
    pub fn merge(&mut self, other: &Metrics) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.series.iter_mut().zip(&other.series) {
            a.merge(b);
        }
    }

    /// Compares only the deterministic content: all counters plus the
    /// non-timing ([`Series::is_timing`]) histograms. Two runs of the
    /// same seeded batch must agree under this comparison at any
    /// parallelism; the wall-clock series are exempt.
    pub fn deterministic_eq(&self, other: &Metrics) -> bool {
        self.counters == other.counters
            && Series::all()
                .into_iter()
                .filter(|s| !s.is_timing())
                .all(|s| self.series(s) == other.series(s))
    }

    /// Name/value pairs of every nonzero counter, for report snapshots.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        (0..NUM_COUNTERS)
            .filter(|&i| self.counters[i] > 0)
            .map(|i| (COUNTER_NAMES[i].to_string(), self.counters[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.add(Counter::Frames, 3);
        m.add(Counter::MpcSolves, 2);
        assert_eq!(m.counter(Counter::Frames), 3);
        let snap = m.counter_snapshot();
        assert_eq!(
            snap,
            vec![("frames".to_string(), 3), ("mpc_solves".to_string(), 2)]
        );
        assert!(!m.is_empty());
    }

    #[test]
    fn counter_names_cover_every_variant() {
        // a name lookup on the last variant proves the array length
        assert_eq!(Counter::SafetyProjections.name(), "safety_projections");
        assert_eq!(Counter::WeightSwaps.name(), "weight_swaps");
        assert_eq!(
            Counter::CoAdmittedReverseIn.name(),
            "co_admitted_reverse_in"
        );
        assert_eq!(Counter::CoShedCrowdedLot.name(), "co_shed_crowded_lot");
        for (admit, shed) in Counter::CO_ADMITTED_BY_FAMILY
            .into_iter()
            .zip(Counter::CO_SHED_BY_FAMILY)
        {
            let a = admit.name().strip_prefix("co_admitted_").unwrap();
            let s = shed.name().strip_prefix("co_shed_").unwrap();
            assert_eq!(a, s, "family arrays must stay aligned");
        }
        assert_eq!(Counter::IlFramesInt8.name(), "il_frames_int8");
        assert_eq!(Counter::ServeEvictions.name(), "serve_evictions");
        assert_eq!(Counter::ServeSnapshots.name(), "serve_snapshots");
        assert_eq!(Counter::CoShed.name(), "co_shed");
        assert_eq!(Counter::Timeouts.name(), "timeouts");
        assert_eq!(Counter::Frames.name(), "frames");
    }

    #[test]
    fn serving_series_are_exempt_from_deterministic_eq() {
        let mut a = Metrics::new();
        let b = Metrics::new();
        a.observe(Series::IlBatchSize, 8.0);
        a.observe(Series::CoQueueDepth, 3.0);
        a.observe(Series::ServeIlLane, 1e-4);
        a.observe(Series::ServeCoLane, 2e-3);
        a.observe(Series::IlQuantAbsErr, 0.02);
        assert!(a.deterministic_eq(&b), "load-dependent content is exempt");
        a.observe(Series::SafetyClipMag, 0.25);
        assert!(
            !a.deterministic_eq(&b),
            "safety clip magnitudes are deterministic content"
        );
        let mut a = Metrics::new();
        a.add(Counter::CoShed, 1);
        assert!(!a.deterministic_eq(&b), "shed counters are not");
    }

    #[test]
    fn merge_is_elementwise_and_order_independent() {
        let mut a = Metrics::new();
        a.add(Counter::AdmmIterations, 100);
        a.observe(Series::AdmmPerSolve, 50.0);
        let mut b = Metrics::new();
        b.add(Counter::AdmmIterations, 40);
        b.observe(Series::AdmmPerSolve, 90.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter(Counter::AdmmIterations), 140);
        assert!(ab.deterministic_eq(&ba));
    }

    #[test]
    fn deterministic_eq_ignores_timing_series() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.observe(Series::FrameTotal, 0.001);
        b.observe(Series::FrameTotal, 0.007);
        assert!(a.deterministic_eq(&b), "timing content must be exempt");
        a.observe(Series::AdmmPerSolve, 10.0);
        assert!(!a.deterministic_eq(&b), "work content must not be");
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = Metrics::new();
        m.add(Counter::Episodes, 1);
        m.observe(Series::CoSolve, 0.0003);
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
