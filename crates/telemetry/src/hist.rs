//! Fixed log-spaced-bucket histogram.

use serde::{Deserialize, Serialize};

/// Number of buckets; fixed so merging is element-wise.
const BUCKETS: usize = 128;
/// Lower edge of bucket 0. Values below land in bucket 0.
const MIN_VALUE: f64 = 1e-7;
/// Upper edge of the last bucket. Values at or above land in the last
/// bucket.
const MAX_VALUE: f64 = 1e5;

/// `ln` of the per-bucket growth factor `(MAX/MIN)^(1/BUCKETS)`; 12
/// decades over 128 buckets is a ~1.24× resolution, i.e. quantiles are
/// exact to about ±11 %.
fn ln_growth() -> f64 {
    (MAX_VALUE / MIN_VALUE).ln() / BUCKETS as f64
}

/// A histogram with logarithmically spaced buckets over `[1e-7, 1e5)`,
/// sized for seconds-scale latencies and iteration counts alike.
///
/// Recording is branch-plus-array-write — no allocation ever happens on
/// the record path (the bucket storage is allocated once at
/// construction). Merging adds bucket counts element-wise, so a merge of
/// per-episode histograms is independent of merge order for the integer
/// content (`counts`, `count`) and reassociates only the floating `sum`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates the fixed bucket storage).
    ///
    /// The empty-state `min`/`max` sentinels are `f64::MAX`/`f64::MIN`
    /// rather than infinities so every field stays finite and the struct
    /// survives a JSON round trip (recorded values are clamped finite,
    /// so the sentinels behave identically to ±∞).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::MAX,
            max: f64::MIN,
        }
    }

    fn bucket(v: f64) -> usize {
        if v < MIN_VALUE {
            return 0;
        }
        let idx = ((v / MIN_VALUE).ln() / ln_growth()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Geometric midpoint of bucket `b` (the quantile estimate for
    /// values that landed there).
    fn midpoint(b: usize) -> f64 {
        MIN_VALUE * ((b as f64 + 0.5) * ln_growth()).exp()
    }

    /// Records one observation. Non-finite values are counted into the
    /// boundary buckets without poisoning `sum`.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { crate::finite_or_clamp(v) };
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) estimated from the bucket
    /// boundaries, clamped to the recorded `[min, max]`. Returns `0.0`
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the target observation (1-based, nearest-rank rule)
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::midpoint(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = Histogram::new();
        // 100 observations spread over two decades
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // log-bucket resolution is ~±11 %
        assert!((p50 / 5e-3 - 1.0).abs() < 0.15, "p50 = {p50}");
        assert!((p99 / 9.9e-3 - 1.0).abs() < 0.15, "p99 = {p99}");
        assert!(p50 < p99);
        assert!((h.mean() - 5.05e-3).abs() < 1e-5);
    }

    #[test]
    fn out_of_range_and_nonfinite_values_are_absorbed() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e12);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 5);
        assert!(h.sum().is_finite());
        assert!(h.quantile(0.5).is_finite());
    }

    #[test]
    fn merge_is_order_independent_on_integer_content() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..50 {
            a.record(1e-3 * (1.0 + i as f64));
            b.record(2e-2 * (1.0 + i as f64));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.counts, ba.counts);
        assert_eq!(ab.quantile(0.95), ba.quantile(0.95));
    }

    #[test]
    fn serde_roundtrip() {
        let mut h = Histogram::new();
        h.record(0.01);
        h.record(0.02);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
