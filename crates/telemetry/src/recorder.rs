//! The per-policy recorder and trace sinks.

use crate::metrics::{Counter, Metrics, Series};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Destination of NDJSON trace lines.
///
/// The contract behind "zero overhead when disabled": a [`Recorder`]
/// consults [`Sink::enabled`] (one boolean) before doing *any* event
/// formatting. The default implementations make a no-op sink three empty
/// methods — [`NullSink`] is `impl Sink for NullSink {}`.
pub trait Sink: Send {
    /// Whether trace events should be formatted and delivered at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Receives one NDJSON line (no trailing newline).
    fn line(&mut self, _line: &str) {}

    /// Flushes buffered output (episode end).
    fn flush(&mut self) {}
}

/// The default sink: disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {}

/// Writes NDJSON lines through a buffered writer (typically a file).
pub struct NdjsonSink {
    writer: std::io::BufWriter<Box<dyn std::io::Write + Send>>,
}

impl NdjsonSink {
    /// A sink writing to `writer`.
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        NdjsonSink {
            writer: std::io::BufWriter::new(writer),
        }
    }

    /// A sink writing to the file at `path` (truncating it).
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(NdjsonSink::new(Box::new(file)))
    }
}

impl Sink for NdjsonSink {
    fn enabled(&self) -> bool {
        true
    }

    fn line(&mut self, line: &str) {
        // trace output is advisory: losing lines on a full disk must not
        // take the episode down
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Collects trace lines in memory behind a shared handle (tests,
/// conformance snapshots).
#[derive(Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A sink plus the handle its lines can be read through.
    pub fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                lines: lines.clone(),
            },
            lines,
        )
    }
}

impl Sink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn line(&mut self, line: &str) {
        self.lines.lock().expect("sink lock").push(line.to_string());
    }
}

/// Solver-side content of a frame event (present when an MPC solve ran).
#[derive(Debug, Clone, Copy)]
pub struct SolveEvent {
    /// SCP linearization passes of this solve.
    pub scp_passes: u32,
    /// Total ADMM iterations of this solve.
    pub admm_iterations: u64,
    /// Resolved KKT backend name (`"Dense"` / `"Sparse"`).
    pub backend: &'static str,
    /// Diagonal regularization bumps while factorizing.
    pub reg_bumps: u32,
    /// Sparse symbolic analyses served from the cache.
    pub symbolic_cache_hits: u32,
    /// Sparse symbolic analyses computed fresh.
    pub symbolic_rebuilds: u32,
    /// Whole-factorization cache reuses.
    pub factor_cache_hits: u32,
    /// Whether the warm-start pathology fallback re-solved the frame
    /// cold.
    pub cold_restart: bool,
    /// Whether the solve ended in a numerical error (the frame then
    /// degraded to the safe braking action).
    pub numerical_error: bool,
}

/// One policy decision, as handed to [`Recorder::frame`].
///
/// Stage timings are in seconds; pass a negative value for a stage that
/// did not run this frame (it is then neither aggregated nor traced).
#[derive(Debug, Clone, Copy)]
pub struct FrameEvent<'a> {
    /// Frame index within the episode.
    pub frame: usize,
    /// Simulation time (seconds).
    pub time: f64,
    /// Committed (debounced) HSA mode name (`"IL"` / `"CO"`).
    pub mode: &'a str,
    /// Raw (pre-debounce) HSA mode name.
    pub raw_mode: &'a str,
    /// HSA scenario uncertainty `U_i`.
    pub uncertainty: f64,
    /// HSA scenario complexity `C_i`.
    pub complexity: f64,
    /// HSA decision ratio `U_i / C_i`.
    pub ratio: f64,
    /// Perception stage latency (seconds; negative = did not run).
    pub perception_s: f64,
    /// IL forward-pass latency (seconds; negative = did not run).
    pub il_s: f64,
    /// HSA update latency (seconds; negative = did not run).
    pub hsa_s: f64,
    /// CO stage latency — planning + MPC (seconds; negative = did not
    /// run).
    pub co_s: f64,
    /// Whole-decision latency (seconds).
    pub total_s: f64,
    /// Emergency-brake fallback fired (no path / planner failure).
    pub emergency: bool,
    /// Numerical-failure safe-brake degradation fired.
    pub safe_brake: bool,
    /// The MPC solve of this frame, when one ran.
    pub solve: Option<SolveEvent>,
}

/// Episode summary, as handed to [`Recorder::episode`].
#[derive(Debug, Clone, Copy)]
pub struct EpisodeEvent<'a> {
    /// Outcome name (`"success"` / `"collision"` / `"timeout"`).
    pub outcome: &'a str,
    /// Simulated frames.
    pub frames: usize,
    /// Simulation time at termination (seconds).
    pub time: f64,
    /// Driven path length (meters).
    pub path_length: f64,
}

/// Accumulates [`Metrics`] and emits NDJSON trace events to a [`Sink`].
///
/// One recorder lives inside each policy instance — batch evaluation
/// clones policies per worker, so recording is lock-free by construction.
/// Metric updates are array writes; trace formatting reuses one line
/// buffer and is skipped entirely (a single boolean test) when the sink
/// is disabled.
pub struct Recorder {
    metrics: Metrics,
    sink: Box<dyn Sink>,
    trace: bool,
    line: String,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("trace", &self.trace)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the no-op sink.
    pub fn new() -> Self {
        Recorder::with_sink(Box::new(NullSink))
    }

    /// A recorder emitting trace events to `sink`.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        let trace = sink.enabled();
        Recorder {
            metrics: Metrics::new(),
            sink,
            trace,
            line: String::with_capacity(if trace { 512 } else { 0 }),
        }
    }

    /// Replaces the sink (e.g. installing an [`NdjsonSink`] before a
    /// traced episode).
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.trace = sink.enabled();
        self.sink = sink;
        if self.trace && self.line.capacity() < 512 {
            self.line.reserve(512);
        }
    }

    /// Whether trace events are being emitted.
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Increments a counter.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.metrics.add(c, n);
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, s: Series, v: f64) {
        self.metrics.observe(s, v);
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drains the accumulated metrics, leaving the recorder empty.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }

    /// Records one policy decision: updates counters and histograms
    /// always, and emits an NDJSON `frame` event when tracing.
    pub fn frame(&mut self, ev: &FrameEvent<'_>) {
        let m = &mut self.metrics;
        m.add(Counter::Frames, 1);
        if ev.mode == "IL" {
            m.add(Counter::IlFrames, 1);
        } else {
            m.add(Counter::CoFrames, 1);
        }
        if ev.emergency {
            m.add(Counter::EmergencyBrakes, 1);
        }
        if ev.safe_brake {
            m.add(Counter::SafeBrakes, 1);
        }
        if let Some(s) = &ev.solve {
            m.add(Counter::MpcSolves, 1);
            m.add(Counter::ScpPasses, u64::from(s.scp_passes));
            m.add(Counter::AdmmIterations, s.admm_iterations);
            if s.backend == "Sparse" {
                m.add(Counter::SparseSolves, 1);
            } else {
                m.add(Counter::DenseSolves, 1);
            }
            m.add(Counter::RegBumps, u64::from(s.reg_bumps));
            m.add(Counter::SymbolicCacheHits, u64::from(s.symbolic_cache_hits));
            m.add(Counter::SymbolicRebuilds, u64::from(s.symbolic_rebuilds));
            m.add(Counter::FactorCacheHits, u64::from(s.factor_cache_hits));
            if s.cold_restart {
                m.add(Counter::ColdRestarts, 1);
            }
            if s.numerical_error {
                m.add(Counter::NumericalErrors, 1);
            }
            m.observe(Series::AdmmPerSolve, s.admm_iterations as f64);
            m.observe(Series::ScpPerSolve, f64::from(s.scp_passes));
        }
        m.observe(Series::FrameTotal, ev.total_s);
        for (series, v) in [
            (Series::Perception, ev.perception_s),
            (Series::IlForward, ev.il_s),
            (Series::HsaUpdate, ev.hsa_s),
            (Series::CoSolve, ev.co_s),
        ] {
            if v >= 0.0 {
                m.observe(series, v);
            }
        }

        if !self.trace {
            return;
        }
        self.line.clear();
        let w = &mut self.line;
        let _ = write!(
            w,
            "{{\"t\":\"frame\",\"frame\":{},\"time\":{},\"mode\":\"{}\",\"raw_mode\":\"{}\",\
             \"u\":{},\"c\":{},\"ratio\":{}",
            ev.frame,
            json_f64(ev.time),
            ev.mode,
            ev.raw_mode,
            json_f64(ev.uncertainty),
            json_f64(ev.complexity),
            json_f64(ev.ratio),
        );
        for (key, v) in [
            ("perception_us", ev.perception_s),
            ("il_us", ev.il_s),
            ("hsa_us", ev.hsa_s),
            ("co_us", ev.co_s),
            ("total_us", ev.total_s),
        ] {
            if v >= 0.0 {
                let _ = write!(w, ",\"{key}\":{}", json_f64(v * 1e6));
            }
        }
        if ev.emergency || ev.safe_brake {
            let _ = write!(
                w,
                ",\"emergency\":{},\"safe_brake\":{}",
                ev.emergency, ev.safe_brake
            );
        }
        if let Some(s) = &ev.solve {
            let _ = write!(
                w,
                ",\"solve\":{{\"scp\":{},\"admm\":{},\"backend\":\"{}\",\"reg_bumps\":{},\
                 \"symbolic_cache_hits\":{},\"symbolic_rebuilds\":{},\"factor_cache_hits\":{},\
                 \"cold_restart\":{},\"numerical_error\":{}}}",
                s.scp_passes,
                s.admm_iterations,
                s.backend,
                s.reg_bumps,
                s.symbolic_cache_hits,
                s.symbolic_rebuilds,
                s.factor_cache_hits,
                s.cold_restart,
                s.numerical_error,
            );
        }
        let _ = write!(w, "}}");
        let line = std::mem::take(&mut self.line);
        self.sink.line(&line);
        self.line = line;
    }

    /// Records an episode summary: outcome counters plus an NDJSON
    /// `episode` event when tracing.
    pub fn episode(&mut self, ev: &EpisodeEvent<'_>) {
        let m = &mut self.metrics;
        m.add(Counter::Episodes, 1);
        match ev.outcome {
            "success" => m.add(Counter::Successes, 1),
            "collision" => m.add(Counter::Collisions, 1),
            _ => m.add(Counter::Timeouts, 1),
        }

        if !self.trace {
            return;
        }
        self.line.clear();
        let _ = write!(
            &mut self.line,
            "{{\"t\":\"episode\",\"outcome\":\"{}\",\"frames\":{},\"time\":{},\"path_length\":{}}}",
            ev.outcome,
            ev.frames,
            json_f64(ev.time),
            json_f64(ev.path_length),
        );
        let line = std::mem::take(&mut self.line);
        self.sink.line(&line);
        self.line = line;
    }
}

/// A finite `f64` for JSON embedding (non-finite values are clamped; JSON
/// has no representation for them).
fn json_f64(v: f64) -> f64 {
    crate::finite_or_clamp(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame<'a>(solve: Option<SolveEvent>) -> FrameEvent<'a> {
        FrameEvent {
            frame: 7,
            time: 0.35,
            mode: "CO",
            raw_mode: "IL",
            uncertainty: 0.42,
            complexity: 1.5e5,
            ratio: 2.8e-6,
            perception_s: 1.2e-5,
            il_s: 8.0e-5,
            hsa_s: 5.0e-7,
            co_s: 3.1e-4,
            total_s: 4.1e-4,
            emergency: false,
            safe_brake: false,
            solve,
        }
    }

    fn sample_solve() -> SolveEvent {
        SolveEvent {
            scp_passes: 2,
            admm_iterations: 112,
            backend: "Sparse",
            reg_bumps: 0,
            symbolic_cache_hits: 2,
            symbolic_rebuilds: 0,
            factor_cache_hits: 0,
            cold_restart: false,
            numerical_error: false,
        }
    }

    #[test]
    fn null_sink_skips_trace_work_but_counts() {
        let mut r = Recorder::new();
        assert!(!r.tracing());
        r.frame(&sample_frame(Some(sample_solve())));
        assert_eq!(r.metrics().counter(Counter::Frames), 1);
        assert_eq!(r.metrics().counter(Counter::CoFrames), 1);
        assert_eq!(r.metrics().counter(Counter::MpcSolves), 1);
        assert_eq!(r.metrics().counter(Counter::AdmmIterations), 112);
        assert_eq!(r.metrics().counter(Counter::SparseSolves), 1);
        assert_eq!(r.metrics().series(Series::AdmmPerSolve).count(), 1);
        assert_eq!(r.metrics().series(Series::FrameTotal).count(), 1);
    }

    fn field<'v>(v: &'v serde_json::Value, key: &str) -> &'v serde_json::Value {
        v.get(key).unwrap_or_else(|| panic!("field {key} present"))
    }

    #[test]
    fn memory_sink_collects_valid_ndjson() {
        let (sink, lines) = MemorySink::new();
        let mut r = Recorder::with_sink(Box::new(sink));
        assert!(r.tracing());
        r.frame(&sample_frame(Some(sample_solve())));
        r.frame(&sample_frame(None));
        r.episode(&EpisodeEvent {
            outcome: "success",
            frames: 2,
            time: 0.1,
            path_length: 0.5,
        });
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3);
        for line in lines.iter() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("t").is_some(), "event type tag present: {line}");
        }
        let first: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(field(&first, "t").as_str(), Some("frame"));
        assert_eq!(field(&first, "mode").as_str(), Some("CO"));
        assert_eq!(field(&first, "raw_mode").as_str(), Some("IL"));
        let solve = field(&first, "solve");
        assert_eq!(field(solve, "admm").as_u64(), Some(112));
        assert_eq!(field(solve, "backend").as_str(), Some("Sparse"));
        assert!(field(&first, "total_us").as_f64().unwrap() > 0.0);
        let second: serde_json::Value = serde_json::from_str(&lines[1]).unwrap();
        assert!(second.get("solve").is_none(), "no solve block without a solve");
        let third: serde_json::Value = serde_json::from_str(&lines[2]).unwrap();
        assert_eq!(field(&third, "t").as_str(), Some("episode"));
        assert_eq!(field(&third, "outcome").as_str(), Some("success"));
    }

    #[test]
    fn nonfinite_event_fields_stay_parseable() {
        let (sink, lines) = MemorySink::new();
        let mut r = Recorder::with_sink(Box::new(sink));
        let mut ev = sample_frame(None);
        ev.ratio = f64::INFINITY;
        ev.uncertainty = f64::NAN;
        r.frame(&ev);
        let lines = lines.lock().unwrap();
        let v: serde_json::Value = serde_json::from_str(&lines[0]).expect("still valid JSON");
        assert!(field(&v, "u").as_f64().unwrap().is_finite());
        assert!(field(&v, "ratio").as_f64().unwrap().is_finite());
    }

    #[test]
    fn negative_stage_timings_are_omitted() {
        let (sink, lines) = MemorySink::new();
        let mut r = Recorder::with_sink(Box::new(sink));
        let mut ev = sample_frame(None);
        ev.il_s = -1.0;
        ev.hsa_s = -1.0;
        ev.co_s = -1.0;
        r.frame(&ev);
        assert_eq!(r.metrics().series(Series::IlForward).count(), 0);
        assert_eq!(r.metrics().series(Series::CoSolve).count(), 0);
        assert_eq!(r.metrics().series(Series::Perception).count(), 1);
        let lines = lines.lock().unwrap();
        let v: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert!(v.get("il_us").is_none());
        assert!(v.get("co_us").is_none());
        assert!(v.get("perception_us").is_some());
    }

    #[test]
    fn take_metrics_resets_the_recorder() {
        let mut r = Recorder::new();
        r.add(Counter::Frames, 5);
        let taken = r.take_metrics();
        assert_eq!(taken.counter(Counter::Frames), 5);
        assert!(r.metrics().is_empty());
    }

    #[test]
    fn episode_outcomes_map_to_counters() {
        let mut r = Recorder::new();
        for outcome in ["success", "collision", "timeout"] {
            r.episode(&EpisodeEvent {
                outcome,
                frames: 1,
                time: 0.1,
                path_length: 0.0,
            });
        }
        assert_eq!(r.metrics().counter(Counter::Episodes), 3);
        assert_eq!(r.metrics().counter(Counter::Successes), 1);
        assert_eq!(r.metrics().counter(Counter::Collisions), 1);
        assert_eq!(r.metrics().counter(Counter::Timeouts), 1);
    }
}
