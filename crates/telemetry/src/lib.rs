//! Frame-level telemetry for the iCOIL stack.
//!
//! The paper's central claim is a latency/reliability trade (IL ~75 Hz vs
//! CO ~18 Hz, Fig. 5) decided per frame by runtime signals — evaluating
//! that trade honestly needs latency *distributions* and solver health
//! counters, not ad-hoc stopwatch means. This crate provides them with
//! the same discipline as the inference hot path (`InferBuffers`): **no
//! allocation on the record path after warm-up, and zero formatting work
//! unless a trace sink is installed**.
//!
//! Three layers:
//!
//! * [`Metrics`] — fixed arrays of [`Counter`]s and log-spaced-bucket
//!   [`Histogram`]s ([`Series`]). Recording is a couple of array writes;
//!   merging is element-wise and order-independent for the deterministic
//!   content, so per-episode metrics merged across `run_batch_with`
//!   workers are bit-identical at any parallelism.
//! * [`Recorder`] — owned by a policy (one per worker thread, hence
//!   lock-free), accumulates [`Metrics`] always and formats NDJSON trace
//!   events only when the installed [`Sink`] is enabled.
//! * [`Sink`] — where trace lines go: [`NullSink`] (the default; every
//!   event check is one boolean), [`NdjsonSink`] (buffered file/writer),
//!   [`MemorySink`] (tests and snapshots).
//!
//! Timing histograms are wall-clock and therefore *not* deterministic;
//! [`Metrics::deterministic_eq`] compares only the content that must be
//! bit-identical across runs (all counters plus work histograms such as
//! ADMM iterations per solve).

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod hist;
mod metrics;
mod recorder;

pub use hist::Histogram;
pub use metrics::{Counter, Metrics, Series, NUM_COUNTERS, NUM_SERIES};
pub use recorder::{EpisodeEvent, FrameEvent, MemorySink, NdjsonSink, NullSink, Recorder, Sink, SolveEvent};

/// Returns a finite stand-in for `v`: `NaN` maps to `0.0`, `±∞` to
/// `±f64::MAX`. Finite values pass through unchanged.
pub fn finite_or_clamp(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else if v == f64::INFINITY {
        f64::MAX
    } else if v == f64::NEG_INFINITY {
        f64::MIN
    } else {
        v
    }
}

/// Clamps `*v` to a finite value in place ([`finite_or_clamp`]) and sets
/// `*flag` when a repair was needed. JSON writers run every serialized
/// float through this so emitted reports re-parse with finite numbers.
pub fn sanitize_field(v: &mut f64, flag: &mut bool) {
    if !v.is_finite() {
        *flag = true;
        *v = finite_or_clamp(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_clamping() {
        assert_eq!(finite_or_clamp(1.5), 1.5);
        assert_eq!(finite_or_clamp(f64::NAN), 0.0);
        assert_eq!(finite_or_clamp(f64::INFINITY), f64::MAX);
        assert_eq!(finite_or_clamp(f64::NEG_INFINITY), f64::MIN);
    }

    #[test]
    fn sanitize_sets_flag_only_on_repair() {
        let mut flag = false;
        let mut v = 2.0;
        sanitize_field(&mut v, &mut flag);
        assert!(!flag);
        let mut bad = f64::NAN;
        sanitize_field(&mut bad, &mut flag);
        assert!(flag);
        assert_eq!(bad, 0.0);
    }
}
