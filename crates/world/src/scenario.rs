//! Scenario generation: difficulty levels, start regions, noise models.

use crate::{DynamicRoute, Obstacle, ParkingMap};
use icoil_geom::{Aabb, Obb, Pose2, Vec2};
use icoil_vehicle::{VehicleParams, VehicleState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Task difficulty (§V-B).
///
/// * `Easy` — three static obstacles only;
/// * `Normal` — adds two dynamic obstacles;
/// * `Hard` — additionally injects noise into images and bounding boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// Static obstacles only.
    Easy,
    /// Static plus dynamic obstacles.
    Normal,
    /// Static plus dynamic obstacles plus sensing noise.
    Hard,
}

impl Difficulty {
    /// All difficulty levels in ascending order.
    pub const ALL: [Difficulty; 3] = [Difficulty::Easy, Difficulty::Normal, Difficulty::Hard];
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Difficulty::Easy => write!(f, "easy"),
            Difficulty::Normal => write!(f, "normal"),
            Difficulty::Hard => write!(f, "hard"),
        }
    }
}

/// Which lot layout a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapKind {
    /// The paper's Fig. 4 MoCAM lot (30 m × 20 m, default).
    Mocam,
    /// The compact courtyard lot (23 m × 14 m).
    Compact,
    /// The curbside parallel-parking street (30 m × 12 m).
    Parallel,
}

impl MapKind {
    /// Builds the map geometry.
    pub fn build(self) -> ParkingMap {
        match self {
            MapKind::Mocam => ParkingMap::mocam(),
            MapKind::Compact => ParkingMap::compact(),
            MapKind::Parallel => ParkingMap::parallel(),
        }
    }
}

/// Where the episode start pose is sampled (§V-E sensitivity analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StartRegion {
    /// A small box near the bay.
    Close,
    /// The far edge of the lot.
    Remote,
    /// Anywhere in the spawn region (the default; green area of Fig. 4).
    Random,
}

/// Sensing-noise parameters consumed by `icoil-perception`.
///
/// All-zero for easy/normal tasks; the hard task uses the values below to
/// emulate the paper's "additional noises to the input images and bounding
/// boxes".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Standard deviation of additive per-pixel BEV noise (fraction of
    /// full scale, 0–1).
    pub image_noise_std: f64,
    /// Probability that a BEV pixel is dropped (set to free).
    pub pixel_dropout: f64,
    /// Standard deviation of bounding-box center jitter (meters).
    pub box_jitter: f64,
    /// Standard deviation of bounding-box heading jitter (radians).
    pub heading_jitter: f64,
    /// Probability that a true obstacle is missed entirely per frame.
    pub false_negative_rate: f64,
    /// Probability that a phantom box is hallucinated per frame.
    pub phantom_rate: f64,
}

impl NoiseConfig {
    /// No noise at all (easy/normal levels).
    pub fn none() -> Self {
        NoiseConfig::default()
    }

    /// The hard-level noise profile.
    pub fn hard() -> Self {
        NoiseConfig {
            image_noise_std: 0.15,
            pixel_dropout: 0.05,
            box_jitter: 0.15,
            heading_jitter: 0.05,
            false_negative_rate: 0.05,
            phantom_rate: 0.03,
        }
    }

    /// Returns `true` when every noise channel is zero.
    pub fn is_none(&self) -> bool {
        *self == NoiseConfig::default()
    }
}

/// Declarative description of an episode; [`ScenarioConfig::build`]
/// expands it deterministically from the seed.
///
/// # Example
///
/// ```
/// use icoil_world::{Difficulty, ScenarioConfig, StartRegion};
///
/// let s = ScenarioConfig::new(Difficulty::Normal, 42)
///     .with_start(StartRegion::Remote)
///     .build();
/// assert_eq!(s.obstacles.iter().filter(|o| o.is_dynamic()).count(), 2);
/// // Same seed, same scenario:
/// let t = ScenarioConfig::new(Difficulty::Normal, 42)
///     .with_start(StartRegion::Remote)
///     .build();
/// assert_eq!(s.start_state, t.start_state);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Task difficulty.
    pub difficulty: Difficulty,
    /// RNG seed; every random choice derives from it.
    pub seed: u64,
    /// Start-pose region.
    pub start: StartRegion,
    /// Overrides the number of static obstacles (default: 3 at the fixed
    /// Fig. 4 positions; any other count is placed by seeded sampling).
    pub n_static: Option<usize>,
    /// Overrides the presence of dynamic obstacles.
    pub dynamic: Option<bool>,
    /// Which lot layout to use.
    pub map: MapKind,
}

impl ScenarioConfig {
    /// Creates a config with the default start region (the spawn area).
    pub fn new(difficulty: Difficulty, seed: u64) -> Self {
        ScenarioConfig {
            difficulty,
            seed,
            start: StartRegion::Random,
            n_static: None,
            dynamic: None,
            map: MapKind::Mocam,
        }
    }

    /// Selects the lot layout.
    pub fn with_map(mut self, map: MapKind) -> Self {
        self.map = map;
        self
    }

    /// Sets the start region.
    pub fn with_start(mut self, start: StartRegion) -> Self {
        self.start = start;
        self
    }

    /// Overrides the static-obstacle count (used by the Fig. 8/9 sweeps).
    pub fn with_n_static(mut self, n: usize) -> Self {
        self.n_static = Some(n);
        self
    }

    /// Overrides whether dynamic obstacles are present.
    pub fn with_dynamic(mut self, dynamic: bool) -> Self {
        self.dynamic = Some(dynamic);
        self
    }

    /// Expands the config into a concrete [`Scenario`].
    pub fn build(&self) -> Scenario {
        let map = self.map.build();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let params = VehicleParams::default();

        let mut obstacles = Vec::new();
        match (self.map, self.n_static) {
            (MapKind::Mocam, None | Some(3)) => {
                // The fixed Fig. 4 layout: three blue crates mid-lot.
                obstacles.push(Obstacle::fixed(0, Pose2::new(12.5, 6.0, 0.9), 2.5, 2.5));
                obstacles.push(Obstacle::fixed(1, Pose2::new(13.5, 14.0, -0.6), 2.5, 2.5));
                obstacles.push(Obstacle::fixed(2, Pose2::new(19.0, 13.5, 0.2), 2.5, 2.5));
            }
            (MapKind::Parallel, n) => {
                // the two parked cars that frame the curbside bay
                obstacles.push(Obstacle::fixed(0, Pose2::new(11.2, 10.4, 0.0), 4.2, 1.8));
                obstacles.push(Obstacle::fixed(1, Pose2::new(22.4, 10.4, 0.0), 4.2, 1.8));
                if let Some(extra) = n {
                    place_random_statics(&map, extra, &mut rng, &mut obstacles);
                }
            }
            (_, n) => {
                place_random_statics(&map, n.unwrap_or(3), &mut rng, &mut obstacles);
            }
        }

        let dynamic = self
            .dynamic
            .unwrap_or(self.difficulty != Difficulty::Easy);
        if dynamic {
            // patrol routes expressed as fractions of the lot so every
            // map layout gets equivalent crossing traffic
            let b = map.bounds();
            let (w, h) = (b.width(), b.height());
            let base = obstacles.len();
            obstacles.push(Obstacle::moving(
                base,
                DynamicRoute::new(
                    vec![
                        Vec2::new(b.min.x + 0.57 * w, b.min.y + 0.2 * h),
                        Vec2::new(b.min.x + 0.57 * w, b.max.y - 0.2 * h),
                    ],
                    0.6,
                )
                .expect("valid route"),
                3.6,
                1.6,
            ));
            obstacles.push(Obstacle::moving(
                base + 1,
                DynamicRoute::new(
                    vec![
                        Vec2::new(b.min.x + 0.3 * w, b.min.y + 0.3 * h),
                        Vec2::new(b.min.x + 0.73 * w, b.min.y + 0.3 * h),
                    ],
                    0.8,
                )
                .expect("valid route"),
                3.6,
                1.6,
            ));
        }

        let start_state = sample_start(&map, self.start, &params, &obstacles, &mut rng);

        let noise = match self.difficulty {
            Difficulty::Hard => NoiseConfig::hard(),
            _ => NoiseConfig::none(),
        };

        Scenario {
            map,
            obstacles,
            start_state,
            noise,
            vehicle_params: params,
            difficulty: self.difficulty,
            seed: self.seed,
            dt: 0.05,
            family: None,
        }
    }
}

/// A fully-instantiated episode: map, obstacles, start state and noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Lot geometry.
    pub map: ParkingMap,
    /// All obstacles (static first, then dynamic).
    pub obstacles: Vec<Obstacle>,
    /// Ego start state (at rest).
    pub start_state: VehicleState,
    /// Sensing-noise profile for the perception substrate.
    pub noise: NoiseConfig,
    /// Ego-vehicle parameters.
    pub vehicle_params: VehicleParams,
    /// The difficulty that produced this scenario.
    pub difficulty: Difficulty,
    /// The seed that produced this scenario.
    pub seed: u64,
    /// Simulation step (seconds per frame).
    pub dt: f64,
    /// The procedural map family this scenario came from, when it was
    /// built by [`ProcScenario::build`](crate::procedural::ProcScenario)
    /// — `None` for the fixed `ScenarioConfig` lots. Serving engines
    /// attribute per-family CO admission/shed telemetry with this, and
    /// the adaptation loop keys its dataset reservoirs on it. Absent in
    /// scenarios serialized before the field existed; those decode as
    /// `None`.
    #[serde(default)]
    pub family: Option<crate::procedural::MapFamilyKind>,
}

impl Scenario {
    /// Obstacle footprints at time `t`.
    pub fn obstacle_footprints(&self, t: f64) -> Vec<Obb> {
        self.obstacles.iter().map(|o| o.footprint_at(t)).collect()
    }

    /// Footprints of static obstacles only.
    pub fn static_footprints(&self) -> Vec<Obb> {
        self.obstacles
            .iter()
            .filter(|o| !o.is_dynamic())
            .map(|o| o.footprint_at(0.0))
            .collect()
    }
}

/// The corridor in front of the bay that must stay clear so every scenario
/// remains solvable.
fn goal_corridor(map: &ParkingMap) -> Aabb {
    let bay = map.bay().center;
    Aabb::new(
        Vec2::new(bay.x - 5.8, bay.y - 2.8),
        Vec2::new(map.bounds().max.x, bay.y + 2.8),
    )
}

fn place_random_statics(
    map: &ParkingMap,
    n: usize,
    rng: &mut SmallRng,
    out: &mut Vec<Obstacle>,
) {
    let corridor = goal_corridor(map);
    let b = map.bounds();
    let region = Aabb::new(
        Vec2::new(b.min.x + 0.33 * b.width(), b.min.y + 0.2 * b.height()),
        Vec2::new(b.min.x + 0.73 * b.width(), b.max.y - 0.2 * b.height()),
    );
    let mut placed: Vec<Obb> = Vec::new();
    let mut id = out.len();
    let mut attempts = 0;
    while placed.len() < n && attempts < 10_000 {
        attempts += 1;
        let x = rng.gen_range(region.min.x..region.max.x);
        let y = rng.gen_range(region.min.y..region.max.y);
        let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let size = rng.gen_range(2.0..3.0);
        let obb = Obb::from_pose(Pose2::new(x, y, theta), size, size);
        if corridor.intersects(&obb.aabb()) {
            continue;
        }
        if placed.iter().any(|p| p.distance_to_obb(&obb) < 2.6) {
            continue;
        }
        placed.push(obb);
        out.push(Obstacle::fixed(id, Pose2::new(x, y, theta), size, size));
        id += 1;
    }
}

fn sample_start(
    map: &ParkingMap,
    start: StartRegion,
    params: &VehicleParams,
    obstacles: &[Obstacle],
    rng: &mut SmallRng,
) -> VehicleState {
    let region = match start {
        StartRegion::Close => map.close_start_region(),
        StartRegion::Remote => map.remote_start_region(),
        StartRegion::Random => map.spawn_region(),
    };
    for _ in 0..1000 {
        let x = rng.gen_range(region.min.x..region.max.x);
        let y = rng.gen_range(region.min.y..region.max.y);
        // roughly facing the lot interior (+x) with some spread
        let theta = rng.gen_range(-0.5..0.5);
        let state = VehicleState::at_rest(Pose2::new(x, y, theta));
        let fp = state.footprint(params).inflated(0.3);
        let clear = map.contains_footprint(&fp)
            && obstacles
                .iter()
                .all(|o| !o.footprint_at(0.0).intersects(&fp));
        if clear {
            return state;
        }
    }
    // Fall back to the region center facing +x; callers treat collisions
    // at t=0 as immediate failure, which is the honest outcome for an
    // unsatisfiable draw.
    VehicleState::at_rest(Pose2::from_parts(region.center(), 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_has_three_statics_no_dynamics() {
        let s = ScenarioConfig::new(Difficulty::Easy, 1).build();
        assert_eq!(s.obstacles.len(), 3);
        assert!(s.obstacles.iter().all(|o| !o.is_dynamic()));
        assert!(s.noise.is_none());
    }

    #[test]
    fn normal_adds_two_dynamics() {
        let s = ScenarioConfig::new(Difficulty::Normal, 1).build();
        assert_eq!(s.obstacles.len(), 5);
        assert_eq!(s.obstacles.iter().filter(|o| o.is_dynamic()).count(), 2);
        assert!(s.noise.is_none());
    }

    #[test]
    fn hard_enables_noise() {
        let s = ScenarioConfig::new(Difficulty::Hard, 1).build();
        assert!(!s.noise.is_none());
        assert_eq!(s.noise, NoiseConfig::hard());
    }

    #[test]
    fn seeded_builds_are_identical() {
        let a = ScenarioConfig::new(Difficulty::Normal, 99).build();
        let b = ScenarioConfig::new(Difficulty::Normal, 99).build();
        assert_eq!(a, b);
        let c = ScenarioConfig::new(Difficulty::Normal, 100).build();
        assert_ne!(a.start_state, c.start_state);
    }

    #[test]
    fn start_pose_is_collision_free() {
        for seed in 0..30 {
            let s = ScenarioConfig::new(Difficulty::Normal, seed).build();
            let fp = s.start_state.footprint(&s.vehicle_params);
            assert!(s.map.contains_footprint(&fp), "seed {seed}");
            for o in &s.obstacles {
                assert!(!o.footprint_at(0.0).intersects(&fp), "seed {seed}");
            }
        }
    }

    #[test]
    fn start_regions_are_respected() {
        for seed in 0..10 {
            let close = ScenarioConfig::new(Difficulty::Easy, seed)
                .with_start(StartRegion::Close)
                .build();
            let map = ParkingMap::mocam();
            assert!(map
                .close_start_region()
                .contains(close.start_state.pose.position()));
            let remote = ScenarioConfig::new(Difficulty::Easy, seed)
                .with_start(StartRegion::Remote)
                .build();
            assert!(map
                .remote_start_region()
                .contains(remote.start_state.pose.position()));
        }
    }

    #[test]
    fn n_static_override_places_that_many() {
        for n in [0usize, 1, 2, 4, 5] {
            let s = ScenarioConfig::new(Difficulty::Easy, 7)
                .with_n_static(n)
                .build();
            assert_eq!(s.obstacles.len(), n, "requested {n}");
        }
    }

    #[test]
    fn random_statics_avoid_goal_corridor() {
        let s = ScenarioConfig::new(Difficulty::Easy, 11)
            .with_n_static(5)
            .build();
        let corridor = goal_corridor(&s.map);
        for o in &s.obstacles {
            assert!(!corridor.intersects(&o.footprint_at(0.0).aabb()));
        }
    }

    #[test]
    fn dynamic_override() {
        let s = ScenarioConfig::new(Difficulty::Easy, 3)
            .with_dynamic(true)
            .build();
        assert_eq!(s.obstacles.iter().filter(|o| o.is_dynamic()).count(), 2);
        let t = ScenarioConfig::new(Difficulty::Normal, 3)
            .with_dynamic(false)
            .build();
        assert_eq!(t.obstacles.iter().filter(|o| o.is_dynamic()).count(), 0);
    }

    #[test]
    fn parallel_map_scenario_has_framing_cars() {
        let s = ScenarioConfig::new(Difficulty::Easy, 3)
            .with_map(MapKind::Parallel)
            .build();
        assert_eq!(s.obstacles.len(), 2);
        // both parked cars straddle the bay, neither covers the goal
        let goal = s.map.goal_pose();
        for o in &s.obstacles {
            assert!(!o.footprint_at(0.0).contains(goal.position()));
        }
        // spawn footprint clear
        let fp = s.start_state.footprint(&s.vehicle_params);
        assert!(s.map.contains_footprint(&fp));
    }

    #[test]
    fn compact_map_scenarios_spawn_clean() {
        for seed in 0..10 {
            let s = ScenarioConfig::new(Difficulty::Normal, seed)
                .with_map(MapKind::Compact)
                .build();
            let fp = s.start_state.footprint(&s.vehicle_params);
            assert!(s.map.contains_footprint(&fp), "seed {seed}");
            for o in &s.obstacles {
                assert!(!o.footprint_at(0.0).intersects(&fp), "seed {seed}");
            }
            // routes stay inside the lot
            for o in &s.obstacles {
                for t in 0..60 {
                    let p = o.pose_at(t as f64);
                    assert!(s.map.bounds().contains(p.position()), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn difficulty_display() {
        assert_eq!(Difficulty::Easy.to_string(), "easy");
        assert_eq!(Difficulty::Hard.to_string(), "hard");
    }
}
