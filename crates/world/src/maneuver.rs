//! Post-hoc maneuver taxonomy: single-shot vs N-point parking.
//!
//! The paper's evaluation reports success rates but says nothing about
//! *how* an episode parked. The scenario families (angled echelon,
//! dead-end stub, crowded lot) are specifically built to force
//! multi-reversal maneuvers, so the bench harness classifies every traced
//! episode from its gear-reversal count: a clean pull-up-and-reverse-in
//! is a **single shot**; anything needing further direction changes is an
//! **N-point** maneuver (N drive segments separated by N−1 reversals).
//!
//! Classification is a pure function of the recorded
//! [`Trace`](crate::episode::Trace), so replays of the same episode
//! always classify identically.

use crate::episode::Trace;
use serde::{Deserialize, Serialize};

/// How an episode maneuvered, classified from its gear reversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Maneuver {
    /// At most one gear reversal: one approach plus (at most) one
    /// reverse-in — the textbook parking motion.
    SingleShot,
    /// An `n`-point maneuver: `n` drive segments separated by `n − 1`
    /// gear reversals (`n ≥ 3`).
    NPoint(usize),
}

impl Maneuver {
    /// Stable snake_case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Maneuver::SingleShot => "single_shot",
            Maneuver::NPoint(_) => "n_point",
        }
    }
}

/// Counts gear reversals in a trace: the number of frames whose executed
/// action flips the `reverse` flag relative to the previous frame.
///
/// The first frame never counts (there is no previous gear), so a
/// forward-only episode reports zero and the canonical reverse-in
/// parking motion reports one.
pub fn gear_reversals(trace: &Trace) -> usize {
    trace
        .windows(2)
        .filter(|w| w[0].action.reverse != w[1].action.reverse)
        .count()
}

/// Classifies a traced episode from its gear-reversal count.
///
/// Zero or one reversal is a [`Maneuver::SingleShot`]; `r ≥ 2` reversals
/// form an [`Maneuver::NPoint`] maneuver with `r + 1` drive segments.
pub fn classify_maneuver(trace: &Trace) -> Maneuver {
    match gear_reversals(trace) {
        0 | 1 => Maneuver::SingleShot,
        r => Maneuver::NPoint(r + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::TraceFrame;
    use icoil_geom::Pose2;
    use icoil_vehicle::Action;
    use proptest::prelude::*;

    fn frame(i: usize, reverse: bool) -> TraceFrame {
        TraceFrame {
            frame: i,
            time: i as f64 * 0.05,
            pose: Pose2::new(0.0, 0.0, 0.0),
            velocity: 0.0,
            action: if reverse {
                Action::backward(0.3, 0.0)
            } else {
                Action::forward(0.3, 0.0)
            },
            mode: None,
            uncertainty: None,
            complexity: None,
        }
    }

    fn trace_of(gears: &[bool]) -> Trace {
        gears.iter().enumerate().map(|(i, &r)| frame(i, r)).collect()
    }

    #[test]
    fn forward_only_counts_zero_reversals() {
        let trace = trace_of(&[false; 12]);
        assert_eq!(gear_reversals(&trace), 0);
        assert_eq!(classify_maneuver(&trace), Maneuver::SingleShot);
    }

    #[test]
    fn one_reversal_is_still_single_shot() {
        // pull up forward, then back into the bay
        let trace = trace_of(&[false, false, false, true, true, true]);
        assert_eq!(gear_reversals(&trace), 1);
        assert_eq!(classify_maneuver(&trace), Maneuver::SingleShot);
    }

    #[test]
    fn n_point_sequences_count_every_flip() {
        // F R F R F: a five-segment shuffle with four reversals
        let trace = trace_of(&[
            false, false, true, true, false, false, true, true, false, false,
        ]);
        assert_eq!(gear_reversals(&trace), 4);
        assert_eq!(classify_maneuver(&trace), Maneuver::NPoint(5));
        // three-point turn: F R F
        let three = trace_of(&[false, true, false]);
        assert_eq!(gear_reversals(&three), 2);
        assert_eq!(classify_maneuver(&three), Maneuver::NPoint(3));
    }

    #[test]
    fn empty_and_single_frame_traces_are_single_shot() {
        assert_eq!(gear_reversals(&Vec::new()), 0);
        assert_eq!(classify_maneuver(&trace_of(&[true])), Maneuver::SingleShot);
    }

    proptest! {
        /// The count is invariant under episode replay: re-running the
        /// same generated scenario produces the same trace, hence the
        /// same reversal count and class.
        #[test]
        fn count_is_invariant_under_replay(seed in 0u64..64) {
            use crate::episode::{run_episode, Decision, EpisodeConfig, Observation, Policy};
            use crate::{ProcGen, World};

            /// A deterministic scripted shuffler: alternates gear every
            /// 15 frames — enough to exercise real reversals in-world.
            struct Shuffler;
            impl Policy for Shuffler {
                fn decide(&mut self, obs: &Observation) -> Decision {
                    let phase = (obs.frame() / 15) % 2 == 1;
                    Decision::plain(if phase {
                        Action::backward(0.3, 0.1)
                    } else {
                        Action::forward(0.3, -0.1)
                    })
                }
            }

            let spec = ProcGen::default().generate(seed);
            let run = || {
                let mut world = World::new(spec.build());
                run_episode(
                    &mut world,
                    &mut Shuffler,
                    &EpisodeConfig { max_time: 4.0, record_trace: true },
                )
            };
            let a = run();
            let b = run();
            prop_assert_eq!(&a.trace, &b.trace);
            prop_assert_eq!(gear_reversals(&a.trace), gear_reversals(&b.trace));
            prop_assert_eq!(classify_maneuver(&a.trace), classify_maneuver(&b.trace));
        }
    }
}
