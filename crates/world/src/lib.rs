//! Deterministic 2-D parking simulator — the MoCAM/CARLA substitute.
//!
//! The paper evaluates iCOIL on the Macao Car Racing Metaverse (MoCAM), a
//! CARLA-based digital twin. This crate provides the equivalent substrate
//! as a deterministic, seedable 2-D kinematic world:
//!
//! * [`ParkingMap`] — the Fig. 4 lot: spawn region, goal bay, walls;
//! * [`Obstacle`] — static boxes and waypoint-looping dynamic vehicles;
//! * [`Scenario`] / [`Difficulty`] — easy / normal / hard task generation
//!   (§V-B), plus the start-region and obstacle-count sweeps of §V-E;
//! * [`World`] — frame-by-frame stepping with collision and goal tests;
//! * [`episode`] — the policy interface and episode runner producing
//!   per-frame traces for the figures;
//! * [`metrics`] — success-rate and parking-time aggregation for Table II.
//!
//! Determinism: everything is a pure function of the scenario seed, so any
//! experiment row can be regenerated exactly.
//!
//! # Example
//!
//! ```
//! use icoil_world::{Difficulty, ScenarioConfig, World};
//! use icoil_world::episode::{run_episode, EpisodeConfig, Decision, Policy};
//! use icoil_vehicle::Action;
//!
//! /// A policy that just brakes — times out without crashing.
//! struct Brake;
//! impl Policy for Brake {
//!     fn decide(&mut self, _obs: &icoil_world::episode::Observation) -> Decision {
//!         Decision::plain(Action::full_brake())
//!     }
//! }
//!
//! let scenario = ScenarioConfig::new(Difficulty::Easy, 7).build();
//! let mut world = World::new(scenario);
//! let result = run_episode(
//!     &mut world,
//!     &mut Brake,
//!     &EpisodeConfig { max_time: 2.0, ..Default::default() },
//! );
//! assert!(!result.is_success());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod episode;
pub mod maneuver;
pub mod map;
pub mod metrics;
pub mod obstacle;
pub mod persist;
pub mod procedural;
pub mod render;
pub mod scenario;
pub mod world;

pub use episode::{run_episode, EpisodeConfig, EpisodeResult, ModeTag, Outcome};
pub use maneuver::{classify_maneuver, gear_reversals, Maneuver};
pub use persist::EpisodeRecord;
pub use render::{render_trace, AsciiCanvas};
pub use map::ParkingMap;
pub use metrics::{success_rate, ParkingStats};
pub use obstacle::{DynamicRoute, Obstacle, ObstacleKind};
pub use procedural::{
    shrink, CrowdedParams, EchelonParams, GarageParams, InvalidScenario, MapFamily, MapFamilyKind,
    ProcGen, ProcGenConfig, ProcScenario, RouteSpec, StaticSpec, StubParams,
};
pub use scenario::{Difficulty, MapKind, NoiseConfig, Scenario, ScenarioConfig, StartRegion};
pub use world::{CollisionCause, World};
