//! Episode-trace persistence and replay verification.
//!
//! Traces are the experiment artifacts of this reproduction (the paper's
//! figures are drawn from them), so they can be written to and restored
//! from JSON, and a recorded action sequence can be *replayed* through a
//! fresh world to prove a result is reproducible from its scenario seed.

use crate::episode::{EpisodeResult, Outcome};
use crate::{Scenario, World};
use std::path::Path;

/// A self-contained experiment artifact: the scenario (fully seeded) and
/// the episode it produced.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpisodeRecord {
    /// The scenario the episode ran in.
    pub scenario: Scenario,
    /// The recorded result (must contain a trace for replay).
    pub result: EpisodeResult,
}

impl EpisodeRecord {
    /// Bundles a scenario and its result.
    pub fn new(scenario: Scenario, result: EpisodeResult) -> Self {
        EpisodeRecord { scenario, result }
    }

    /// Writes the record as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, serde_json::to_string(self).expect("record serializes"))
    }

    /// Reads a record back.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON maps to
    /// `InvalidData`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Replays the recorded actions through a fresh world and checks the
    /// trajectory matches frame by frame.
    ///
    /// Returns the frame index of the first divergence (poses differing
    /// by more than `tol` meters), or `None` when the replay matches.
    pub fn verify_replay(&self, tol: f64) -> Option<usize> {
        let mut world = World::new(self.scenario.clone());
        for (i, frame) in self.result.trace.iter().enumerate() {
            let pose = world.ego().pose;
            if pose.position().distance(frame.pose.position()) > tol {
                return Some(i);
            }
            world.step(&frame.action);
        }
        // terminal outcome must agree
        let replay_outcome = if world.in_collision() {
            Outcome::Collision
        } else if world.at_goal() {
            Outcome::Success
        } else {
            Outcome::Timeout
        };
        if replay_outcome != self.result.outcome && !self.result.trace.is_empty() {
            return Some(self.result.trace.len());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, Decision, EpisodeConfig, Observation, Policy};
    use crate::{Difficulty, ScenarioConfig};
    use icoil_vehicle::Action;

    struct Wiggle;
    impl Policy for Wiggle {
        fn decide(&mut self, obs: &Observation) -> Decision {
            let steer = if obs.frame() % 40 < 20 { 0.4 } else { -0.4 };
            Decision::plain(Action::forward(0.7, steer))
        }
    }

    fn record() -> EpisodeRecord {
        let scenario = ScenarioConfig::new(Difficulty::Easy, 21).build();
        let mut world = World::new(scenario.clone());
        let result = run_episode(
            &mut world,
            &mut Wiggle,
            &EpisodeConfig {
                max_time: 5.0,
                record_trace: true,
            },
        );
        EpisodeRecord::new(scenario, result)
    }

    #[test]
    fn replay_matches_recording() {
        let r = record();
        assert_eq!(r.verify_replay(1e-9), None);
    }

    #[test]
    fn tampered_trace_is_detected() {
        let mut r = record();
        // corrupt one action mid-trace
        let mid = r.result.trace.len() / 2;
        r.result.trace[mid].action.steer = -r.result.trace[mid].action.steer;
        let divergence = r.verify_replay(1e-6);
        assert!(divergence.is_some());
        assert!(divergence.unwrap() > mid, "divergence appears after the tamper");
    }

    #[test]
    fn save_load_roundtrip() {
        let r = record();
        let dir = std::env::temp_dir().join("icoil_persist_test");
        let path = dir.join("episode.json");
        r.save(&path).unwrap();
        let back = EpisodeRecord::load(&path).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.verify_replay(1e-9), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("icoil_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(EpisodeRecord::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
