//! The parking-lot map (the Fig. 4 layout).

use icoil_geom::{Aabb, Obb, Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// The static geometry of the parking lot.
///
/// Mirrors the map of Fig. 4 in the paper: a rectangular lot with a spawn
/// region (green area) on the left, a goal parking bay (yellow box) on the
/// right wall, and perimeter walls. Obstacles are *not* part of the map —
/// they belong to the [`crate::Scenario`], because their number and motion
/// vary per difficulty level and per sensitivity sweep.
///
/// # Example
///
/// ```
/// use icoil_geom::Vec2;
///
/// let map = icoil_world::ParkingMap::mocam();
/// assert!(map.bounds().contains(map.goal_pose().position()));
/// assert!(map.spawn_region().contains(Vec2::new(4.0, 10.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParkingMap {
    bounds: Aabb,
    spawn_region: Aabb,
    goal_pose: Pose2,
    bay: Obb,
    wall_thickness: f64,
}

impl ParkingMap {
    /// The MoCAM-style lot used throughout the paper's evaluation:
    /// a 30 m × 20 m rectangle, spawn region on the left, reverse-in
    /// parking bay recessed into the right wall.
    ///
    /// The goal pose faces the lot interior (heading π): the paper's
    /// dataset contains forward-moving *and* reverse-parking phases, and
    /// the bay is entered tail-first.
    pub fn mocam() -> Self {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(30.0, 20.0));
        let spawn_region = Aabb::new(Vec2::new(2.0, 3.0), Vec2::new(8.0, 17.0));
        // Bay: 5.4 m deep (x), 3.0 m wide (y), recessed at the right wall.
        let bay = Obb::from_pose(Pose2::new(26.8, 10.0, 0.0), 5.4, 3.0);
        // Reverse-in: body center sits at the bay center, front faces -x.
        // Rear-axle reference = center + center_offset towards +x.
        let goal_pose = Pose2::new(26.8 + 1.3, 10.0, std::f64::consts::PI);
        ParkingMap {
            bounds,
            spawn_region,
            goal_pose,
            bay,
            wall_thickness: 0.5,
        }
    }

    /// Builds a custom map.
    ///
    /// # Panics
    ///
    /// Panics when the spawn region or bay lies outside the lot bounds.
    pub fn new(bounds: Aabb, spawn_region: Aabb, goal_pose: Pose2, bay: Obb) -> Self {
        assert!(
            bounds.contains(spawn_region.min) && bounds.contains(spawn_region.max),
            "spawn region must lie inside the lot"
        );
        assert!(
            bounds.contains(bay.center),
            "parking bay must lie inside the lot"
        );
        ParkingMap {
            bounds,
            spawn_region,
            goal_pose,
            bay,
            wall_thickness: 0.5,
        }
    }

    /// The drivable lot extent.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The region in which episode start poses are sampled (green area).
    pub fn spawn_region(&self) -> Aabb {
        self.spawn_region
    }

    /// The target rear-axle pose inside the bay.
    pub fn goal_pose(&self) -> Pose2 {
        self.goal_pose
    }

    /// The parking-bay rectangle (yellow box in Fig. 4).
    pub fn bay(&self) -> Obb {
        self.bay
    }

    /// Perimeter walls as oriented boxes (for rasterization and collision).
    ///
    /// The wall segment behind the bay opening is still present: the bay is
    /// recessed *inside* the lot bounds, so walls only guard the perimeter.
    pub fn walls(&self) -> Vec<Obb> {
        let t = self.wall_thickness;
        let b = self.bounds;
        let w = b.width();
        let h = b.height();
        let cx = b.center().x;
        let cy = b.center().y;
        vec![
            // bottom, top
            Obb::from_pose(Pose2::new(cx, b.min.y - t * 0.5, 0.0), w + 2.0 * t, t),
            Obb::from_pose(Pose2::new(cx, b.max.y + t * 0.5, 0.0), w + 2.0 * t, t),
            // left, right
            Obb::from_pose(Pose2::new(b.min.x - t * 0.5, cy, 0.0), t, h + 2.0 * t),
            Obb::from_pose(Pose2::new(b.max.x + t * 0.5, cy, 0.0), t, h + 2.0 * t),
        ]
    }

    /// Returns `true` when the footprint lies fully inside the lot.
    pub fn contains_footprint(&self, footprint: &Obb) -> bool {
        footprint.corners().iter().all(|c| self.bounds.contains(*c))
    }

    /// Representative "close" start pose region of the §V-E sensitivity
    /// analysis: a small box mid-lot a few car lengths short of the bay,
    /// centered on the bay's approach line.
    pub fn close_start_region(&self) -> Aabb {
        let bay = self.bay.center;
        let cx = self.bounds.min.x + self.bounds.width() * 0.6;
        Aabb::new(
            Vec2::new(cx - 2.0, (bay.y - 2.0).max(self.bounds.min.y + 2.0)),
            Vec2::new(cx + 2.0, (bay.y + 2.0).min(self.bounds.max.y - 2.0)),
        )
    }

    /// Representative "remote" start pose region: a strip along the far
    /// (left) edge of the lot.
    pub fn remote_start_region(&self) -> Aabb {
        let b = self.bounds;
        Aabb::new(
            Vec2::new(b.min.x + 2.0, b.min.y + 3.0),
            Vec2::new(b.min.x + 5.0, b.max.y - 3.0),
        )
    }
}

impl ParkingMap {
    /// A curbside parallel-parking street (30 m × 12 m): the bay is a
    /// gap between two parked cars along the top curb, entered with the
    /// classic pull-past-and-reverse maneuver. The two parked cars are
    /// scenario obstacles (see `ScenarioConfig`), not map geometry.
    pub fn parallel() -> Self {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(30.0, 12.0));
        let spawn_region = Aabb::new(Vec2::new(2.5, 3.0), Vec2::new(9.0, 7.0));
        // gap between the parked cars at x ∈ [13.3, 20.3], curb lane y ≈ 10.4
        let bay = Obb::from_pose(Pose2::new(16.8, 10.4, 0.0), 7.0, 1.9);
        // parked parallel to the curb, facing +x; rear axle behind center
        let goal_pose = Pose2::new(15.5, 10.4, 0.0);
        ParkingMap {
            bounds,
            spawn_region,
            goal_pose,
            bay,
            wall_thickness: 0.5,
        }
    }

    /// A compact private-courtyard lot (23 m × 14 m): same reverse-in
    /// bay geometry as [`ParkingMap::mocam`] but tighter everywhere —
    /// used to show the stack generalizes beyond the Fig. 4 layout.
    pub fn compact() -> Self {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(23.0, 14.0));
        let spawn_region = Aabb::new(Vec2::new(2.0, 3.0), Vec2::new(6.0, 11.0));
        let bay = Obb::from_pose(Pose2::new(20.0, 7.0, 0.0), 5.4, 3.0);
        let goal_pose = Pose2::new(21.3, 7.0, std::f64::consts::PI);
        ParkingMap {
            bounds,
            spawn_region,
            goal_pose,
            bay,
            wall_thickness: 0.5,
        }
    }
}

impl Default for ParkingMap {
    fn default() -> Self {
        ParkingMap::mocam()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mocam_layout_consistent() {
        let m = ParkingMap::mocam();
        assert!(m.bounds().contains(m.goal_pose().position()));
        assert!(m.bounds().contains(m.bay().center));
        assert!(m.spawn_region().width() > 0.0);
        // goal pose is inside the bay
        assert!(m.bay().inflated(0.5).contains(m.goal_pose().position()));
        // spawn and bay are disjoint
        assert!(!m.spawn_region().intersects(&m.bay().aabb()));
    }

    #[test]
    fn walls_surround_lot() {
        let m = ParkingMap::mocam();
        let walls = m.walls();
        assert_eq!(walls.len(), 4);
        for w in &walls {
            // no wall intrudes into the lot interior
            assert!(!w.contains(m.bounds().center()));
        }
        // a point just outside each edge is covered by some wall
        let b = m.bounds();
        let probes = [
            Vec2::new(b.center().x, b.min.y - 0.2),
            Vec2::new(b.center().x, b.max.y + 0.2),
            Vec2::new(b.min.x - 0.2, b.center().y),
            Vec2::new(b.max.x + 0.2, b.center().y),
        ];
        for p in probes {
            assert!(walls.iter().any(|w| w.contains(p)), "probe {p} uncovered");
        }
    }

    #[test]
    fn footprint_containment() {
        let m = ParkingMap::mocam();
        let inside = Obb::from_pose(Pose2::new(15.0, 10.0, 0.3), 4.0, 2.0);
        let straddling = Obb::from_pose(Pose2::new(0.5, 10.0, 0.0), 4.0, 2.0);
        assert!(m.contains_footprint(&inside));
        assert!(!m.contains_footprint(&straddling));
    }

    #[test]
    fn start_regions_inside_bounds() {
        let m = ParkingMap::mocam();
        for r in [m.close_start_region(), m.remote_start_region()] {
            assert!(m.bounds().contains(r.min) && m.bounds().contains(r.max));
        }
        // close region is nearer to the bay than the remote one
        let bay = m.bay().center;
        assert!(m.close_start_region().center().distance(bay)
            < m.remote_start_region().center().distance(bay));
    }

    #[test]
    fn parallel_layout_consistent() {
        let m = ParkingMap::parallel();
        assert!(m.bounds().contains(m.goal_pose().position()));
        assert!(m.bay().inflated(0.2).contains(m.goal_pose().position()));
        // the goal heading is parallel to the curb (0 rad)
        assert_eq!(m.goal_pose().theta, 0.0);
        for r in [m.close_start_region(), m.remote_start_region()] {
            assert!(m.bounds().contains(r.min) && m.bounds().contains(r.max));
        }
    }

    #[test]
    fn compact_layout_consistent() {
        let m = ParkingMap::compact();
        assert!(m.bounds().contains(m.goal_pose().position()));
        assert!(m.bay().inflated(0.5).contains(m.goal_pose().position()));
        assert!(!m.spawn_region().intersects(&m.bay().aabb()));
        // derived start regions stay inside the lot
        for r in [m.close_start_region(), m.remote_start_region()] {
            assert!(m.bounds().contains(r.min) && m.bounds().contains(r.max));
        }
    }

    #[test]
    #[should_panic(expected = "spawn region")]
    fn invalid_spawn_region_panics() {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(10.0, 10.0));
        let spawn = Aabb::new(Vec2::new(-5.0, 0.0), Vec2::new(2.0, 2.0));
        let bay = Obb::from_pose(Pose2::new(8.0, 5.0, 0.0), 4.0, 2.5);
        let _ = ParkingMap::new(bounds, spawn, Pose2::new(8.0, 5.0, 0.0), bay);
    }
}
