//! Frame-by-frame world simulation.

use crate::{Scenario, ParkingMap};
use icoil_geom::Obb;
use icoil_vehicle::{kinematics, Action, VehicleParams, VehicleState};
use serde::{Deserialize, Serialize};

/// What the ego hit, for failure attribution in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionCause {
    /// Left the lot / hit a perimeter wall.
    Wall,
    /// Hit the static obstacle with this id.
    StaticObstacle(usize),
    /// Hit the dynamic obstacle with this id.
    DynamicObstacle(usize),
}

impl std::fmt::Display for CollisionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollisionCause::Wall => write!(f, "wall"),
            CollisionCause::StaticObstacle(id) => write!(f, "static obstacle {id}"),
            CollisionCause::DynamicObstacle(id) => write!(f, "dynamic obstacle {id}"),
        }
    }
}

/// Pose/speed tolerances that define a completed park.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalTolerance {
    /// Maximum rear-axle position error (meters).
    pub position: f64,
    /// Maximum heading error (radians).
    pub heading: f64,
    /// Maximum speed magnitude (m/s).
    pub speed: f64,
}

impl Default for GoalTolerance {
    fn default() -> Self {
        GoalTolerance {
            position: 0.6,
            heading: 0.3,
            speed: 0.15,
        }
    }
}

/// The simulation state: scenario + ego vehicle + clock.
///
/// `World` owns nothing random — all stochasticity lives in scenario
/// generation and in the perception noise, so stepping is exactly
/// reproducible.
///
/// # Example
///
/// ```
/// use icoil_world::{Difficulty, ScenarioConfig, World};
/// use icoil_vehicle::Action;
///
/// let mut w = World::new(ScenarioConfig::new(Difficulty::Easy, 1).build());
/// let x0 = w.ego().pose.x;
/// for _ in 0..20 {
///     w.step(&Action::forward(1.0, 0.0));
/// }
/// assert!(w.ego().pose.x > x0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    scenario: Scenario,
    ego: VehicleState,
    time: f64,
    frame: usize,
    goal_tolerance: GoalTolerance,
}

impl World {
    /// Creates a world at the scenario's start state, time zero.
    pub fn new(scenario: Scenario) -> Self {
        let ego = scenario.start_state;
        World {
            scenario,
            ego,
            time: 0.0,
            frame: 0,
            goal_tolerance: GoalTolerance::default(),
        }
    }

    /// Rewinds to the start state.
    pub fn reset(&mut self) {
        self.ego = self.scenario.start_state;
        self.time = 0.0;
        self.frame = 0;
    }

    /// Replaces the goal tolerance.
    pub fn set_goal_tolerance(&mut self, tol: GoalTolerance) {
        self.goal_tolerance = tol;
    }

    /// The scenario this world runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The lot map.
    pub fn map(&self) -> &ParkingMap {
        &self.scenario.map
    }

    /// The ego-vehicle parameters.
    pub fn vehicle_params(&self) -> &VehicleParams {
        &self.scenario.vehicle_params
    }

    /// Current ego state.
    pub fn ego(&self) -> &VehicleState {
        &self.ego
    }

    /// Overrides the ego state (used by the expert data collector to warp
    /// to demonstration poses).
    pub fn set_ego(&mut self, state: VehicleState) {
        self.ego = state;
    }

    /// Simulation time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Frame counter.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// Seconds per frame.
    pub fn dt(&self) -> f64 {
        self.scenario.dt
    }

    /// Advances one frame under `action`; returns the new ego state.
    pub fn step(&mut self, action: &Action) -> VehicleState {
        self.ego = kinematics::step(&self.ego, action, &self.scenario.vehicle_params, self.scenario.dt);
        self.time += self.scenario.dt;
        self.frame += 1;
        self.ego
    }

    /// Ego footprint at the current state.
    pub fn ego_footprint(&self) -> Obb {
        self.ego.footprint(&self.scenario.vehicle_params)
    }

    /// Obstacle footprints at the current time.
    pub fn obstacle_footprints(&self) -> Vec<Obb> {
        self.scenario.obstacle_footprints(self.time)
    }

    /// Returns `true` when the ego collides with an obstacle or leaves the
    /// lot.
    pub fn in_collision(&self) -> bool {
        self.collision_cause().is_some()
    }

    /// What the ego is currently colliding with, if anything — used by
    /// the evaluation harness to attribute failures (wall vs static vs
    /// dynamic obstacle).
    pub fn collision_cause(&self) -> Option<CollisionCause> {
        let fp = self.ego_footprint();
        if !self.scenario.map.contains_footprint(&fp) {
            return Some(CollisionCause::Wall);
        }
        for o in &self.scenario.obstacles {
            if o.footprint_at(self.time).intersects(&fp) {
                return Some(if o.is_dynamic() {
                    CollisionCause::DynamicObstacle(o.id)
                } else {
                    CollisionCause::StaticObstacle(o.id)
                });
            }
        }
        None
    }

    /// Distance from the ego footprint to the nearest obstacle or wall.
    pub fn clearance(&self) -> f64 {
        let fp = self.ego_footprint();
        let mut best = f64::INFINITY;
        for o in self.obstacle_footprints() {
            best = best.min(fp.distance_to_obb(&o));
        }
        for w in self.scenario.map.walls() {
            best = best.min(fp.distance_to_obb(&w));
        }
        best
    }

    /// Returns `true` when the ego is parked: pose within tolerance of the
    /// goal pose and (almost) stopped.
    pub fn at_goal(&self) -> bool {
        let goal = self.scenario.map.goal_pose();
        let tol = self.goal_tolerance;
        self.ego.pose.distance(&goal) <= tol.position
            && self.ego.pose.heading_error(&goal) <= tol.heading
            && self.ego.velocity.abs() <= tol.speed
    }

    /// Distance from the ego rear axle to the goal pose.
    pub fn distance_to_goal(&self) -> f64 {
        self.ego.pose.distance(&self.scenario.map.goal_pose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Difficulty, ScenarioConfig};
    use icoil_geom::Pose2;

    fn world(difficulty: Difficulty, seed: u64) -> World {
        World::new(ScenarioConfig::new(difficulty, seed).build())
    }

    #[test]
    fn new_world_starts_clean() {
        let w = world(Difficulty::Normal, 5);
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.frame(), 0);
        assert!(!w.in_collision());
        assert!(!w.at_goal());
        assert!(w.clearance() > 0.0);
    }

    #[test]
    fn step_advances_clock_and_pose() {
        let mut w = world(Difficulty::Easy, 5);
        let p0 = w.ego().pose;
        for _ in 0..10 {
            w.step(&Action::forward(1.0, 0.0));
        }
        assert_eq!(w.frame(), 10);
        assert!((w.time() - 10.0 * w.dt()).abs() < 1e-12);
        assert!(w.ego().pose.distance(&p0) > 0.0);
    }

    #[test]
    fn reset_restores_start() {
        let mut w = world(Difficulty::Easy, 5);
        let start = *w.ego();
        for _ in 0..50 {
            w.step(&Action::forward(1.0, 0.5));
        }
        w.reset();
        assert_eq!(*w.ego(), start);
        assert_eq!(w.frame(), 0);
    }

    #[test]
    fn collision_cause_attribution() {
        let mut w = world(Difficulty::Normal, 5);
        assert_eq!(w.collision_cause(), None);
        // drop onto the first static obstacle
        let p = w.scenario().obstacles[0].pose;
        w.set_ego(icoil_vehicle::VehicleState::at_rest(p));
        assert!(matches!(
            w.collision_cause(),
            Some(CollisionCause::StaticObstacle(0))
        ));
        // outside the lot → wall
        w.set_ego(icoil_vehicle::VehicleState::at_rest(Pose2::new(
            -3.0, 10.0, 0.0,
        )));
        assert_eq!(w.collision_cause(), Some(CollisionCause::Wall));
        // onto a dynamic obstacle's current footprint
        let dyn_pose = w
            .scenario()
            .obstacles
            .iter()
            .find(|o| o.is_dynamic())
            .unwrap()
            .pose_at(w.time());
        w.set_ego(icoil_vehicle::VehicleState::at_rest(dyn_pose));
        assert!(matches!(
            w.collision_cause(),
            Some(CollisionCause::DynamicObstacle(_))
        ));
    }

    #[test]
    fn driving_into_wall_collides() {
        let mut w = world(Difficulty::Easy, 5);
        // aim straight at the left wall
        w.set_ego(icoil_vehicle::VehicleState::at_rest(Pose2::new(
            3.0,
            10.0,
            std::f64::consts::PI,
        )));
        let mut collided = false;
        for _ in 0..600 {
            w.step(&Action::forward(1.0, 0.0));
            if w.in_collision() {
                collided = true;
                break;
            }
        }
        assert!(collided, "wall must stop the car");
    }

    #[test]
    fn goal_detected_at_goal_pose() {
        let mut w = world(Difficulty::Easy, 5);
        let goal = w.map().goal_pose();
        w.set_ego(icoil_vehicle::VehicleState::at_rest(goal));
        assert!(w.at_goal());
        assert_eq!(w.distance_to_goal(), 0.0);
        // fast vehicles are not "parked"
        w.set_ego(icoil_vehicle::VehicleState::new(goal, 1.0));
        assert!(!w.at_goal());
    }

    #[test]
    fn goal_pose_is_reachable_without_collision() {
        // The goal pose itself must be collision-free in every difficulty.
        for d in Difficulty::ALL {
            let mut w = world(d, 3);
            w.set_ego(icoil_vehicle::VehicleState::at_rest(w.map().goal_pose()));
            assert!(!w.in_collision(), "difficulty {d}");
        }
    }

    #[test]
    fn dynamic_obstacles_move_between_frames() {
        let mut w = world(Difficulty::Normal, 5);
        let before = w.obstacle_footprints();
        for _ in 0..40 {
            w.step(&Action::full_brake());
        }
        let after = w.obstacle_footprints();
        let moved = before
            .iter()
            .zip(&after)
            .any(|(a, b)| a.center.distance(b.center) > 0.5);
        assert!(moved, "dynamic obstacles must move over 2 seconds");
    }

    #[test]
    fn clearance_decreases_when_approaching_obstacle() {
        let mut w = world(Difficulty::Easy, 5);
        // aim straight at the static obstacle at (12.5, 6.0)
        w.set_ego(icoil_vehicle::VehicleState::at_rest(Pose2::new(
            7.0, 6.0, 0.0,
        )));
        let c0 = w.clearance();
        for _ in 0..40 {
            w.step(&Action::forward(1.0, 0.0));
        }
        assert!(w.clearance() < c0);
    }
}
