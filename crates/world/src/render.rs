//! Plain-text rendering of the lot, obstacles and trajectories.
//!
//! The benchmark figure binaries and the examples use this to show
//! trajectories without any plotting dependency: one character per grid
//! cell, trajectory samples overlaid with per-mode glyphs.

use crate::episode::{ModeTag, Trace};
use crate::{Scenario, World};
use icoil_geom::Vec2;

/// Character canvas over the lot.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    cols: usize,
    rows: usize,
    origin: Vec2,
    scale: f64,
    cells: Vec<char>,
}

impl AsciiCanvas {
    /// Creates a canvas covering the scenario's lot at roughly
    /// `cols` characters of width (height follows the aspect ratio,
    /// halved because terminal glyphs are tall).
    pub fn for_scenario(scenario: &Scenario, cols: usize) -> Self {
        let bounds = scenario.map.bounds();
        let scale = bounds.width() / cols as f64;
        let rows = (bounds.height() / scale / 2.0).ceil() as usize;
        let mut canvas = AsciiCanvas {
            cols,
            rows,
            origin: bounds.min,
            scale,
            cells: vec![' '; cols * rows],
        };
        // walls
        for c in 0..cols {
            canvas.cells[c] = '-';
            canvas.cells[(rows - 1) * cols + c] = '-';
        }
        for r in 0..rows {
            canvas.cells[r * cols] = '|';
            canvas.cells[r * cols + cols - 1] = '|';
        }
        // bay
        let bay = scenario.map.bay();
        canvas.fill_region(
            |p| bay.contains(p),
            '=',
            bay.aabb().min,
            bay.aabb().max,
        );
        // obstacles at t = 0
        for o in &scenario.obstacles {
            let fp = o.footprint_at(0.0);
            let glyph = if o.is_dynamic() { 'D' } else { '#' };
            canvas.fill_region(|p| fp.contains(p), glyph, fp.aabb().min, fp.aabb().max);
        }
        canvas
    }

    fn fill_region<F: Fn(Vec2) -> bool>(&mut self, inside: F, glyph: char, lo: Vec2, hi: Vec2) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                let p = self.cell_center(c, r);
                if p.x >= lo.x - self.scale
                    && p.x <= hi.x + self.scale
                    && p.y >= lo.y - self.scale
                    && p.y <= hi.y + self.scale
                    && inside(p)
                {
                    self.cells[r * self.cols + c] = glyph;
                }
            }
        }
    }

    fn cell_center(&self, col: usize, row: usize) -> Vec2 {
        // row 0 is the TOP of the lot (max y)
        let x = self.origin.x + (col as f64 + 0.5) * self.scale;
        let y = self.origin.y + ((self.rows - 1 - row) as f64 + 0.5) * self.scale * 2.0;
        Vec2::new(x, y)
    }

    /// Plots a single point with a glyph (ignored when off-canvas).
    pub fn plot(&mut self, p: Vec2, glyph: char) {
        let c = ((p.x - self.origin.x) / self.scale) as isize;
        let r = self.rows as isize
            - 1
            - ((p.y - self.origin.y) / (self.scale * 2.0)) as isize;
        if c >= 0 && r >= 0 && (c as usize) < self.cols && (r as usize) < self.rows {
            self.cells[r as usize * self.cols + c as usize] = glyph;
        }
    }

    /// Overlays a trajectory: `o` for IL-mode frames, `*` for CO-mode,
    /// `.` for untagged; `S` start, `E` end.
    pub fn plot_trace(&mut self, trace: &Trace) {
        for f in trace {
            let glyph = match f.mode {
                Some(ModeTag::Il) => 'o',
                Some(ModeTag::Co) => '*',
                None => '.',
            };
            self.plot(f.pose.position(), glyph);
        }
        if let Some(first) = trace.first() {
            self.plot(first.pose.position(), 'S');
        }
        if let Some(last) = trace.last() {
            self.plot(last.pose.position(), 'E');
        }
    }

    /// Renders the canvas into a multi-line string.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            out.extend(self.cells[r * self.cols..(r + 1) * self.cols].iter());
            out.push('\n');
        }
        out
    }
}

/// One-call convenience: the scenario with a trajectory overlaid.
pub fn render_trace(world: &World, trace: &Trace, cols: usize) -> String {
    let mut canvas = AsciiCanvas::for_scenario(world.scenario(), cols);
    canvas.plot_trace(trace);
    canvas.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, Decision, EpisodeConfig, Observation, Policy};
    use crate::{Difficulty, ScenarioConfig};
    use icoil_vehicle::Action;

    struct Drive;
    impl Policy for Drive {
        fn decide(&mut self, _obs: &Observation) -> Decision {
            Decision::plain(Action::forward(1.0, 0.1))
        }
    }

    #[test]
    fn canvas_contains_walls_bay_and_obstacles() {
        let scenario = ScenarioConfig::new(Difficulty::Normal, 1).build();
        let canvas = AsciiCanvas::for_scenario(&scenario, 60);
        let text = canvas.to_text();
        assert!(text.contains('#'), "static obstacles rendered");
        assert!(text.contains('D'), "dynamic obstacles rendered");
        assert!(text.contains('='), "bay rendered");
        assert!(text.contains('|') && text.contains('-'), "walls rendered");
        // every line has the same width
        let widths: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn trace_overlay_shows_start_and_end() {
        let scenario = ScenarioConfig::new(Difficulty::Easy, 1).build();
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut Drive,
            &EpisodeConfig {
                max_time: 5.0,
                record_trace: true,
            },
        );
        let text = render_trace(&world, &result.trace, 60);
        assert!(text.contains('S'));
        assert!(text.contains('E'));
    }

    #[test]
    fn off_canvas_plot_is_ignored() {
        let scenario = ScenarioConfig::new(Difficulty::Easy, 1).build();
        let mut canvas = AsciiCanvas::for_scenario(&scenario, 40);
        let before = canvas.to_text();
        canvas.plot(Vec2::new(-100.0, -100.0), 'X');
        assert_eq!(before, canvas.to_text());
    }
}
