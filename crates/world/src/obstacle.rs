//! Static and dynamic obstacles.

use icoil_geom::{Obb, Polyline, Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// Identifier of an obstacle within a scenario.
pub type ObstacleId = usize;

/// A closed patrol route for a dynamic obstacle.
///
/// The obstacle moves at constant speed along the waypoint loop
/// (ping-pong: it drives to the end of the polyline and back). Motion is a
/// pure function of time, so replays are exact.
///
/// # Example
///
/// ```
/// use icoil_geom::Vec2;
/// use icoil_world::DynamicRoute;
///
/// let route = DynamicRoute::new(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)],
///     1.0,
/// ).unwrap();
/// let p = route.pose_at(3.0);
/// assert!((p.x - 3.0).abs() < 1e-9);
/// // Ping-pong: at t = 14 s the obstacle is on its way back.
/// assert!((route.pose_at(14.0).x - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicRoute {
    path: Polyline,
    speed: f64,
}

/// Error constructing a [`DynamicRoute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The waypoint list describes a zero-length path.
    DegeneratePath,
    /// The speed is not strictly positive.
    NonPositiveSpeed,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::DegeneratePath => write!(f, "route path has zero length"),
            RouteError::NonPositiveSpeed => write!(f, "route speed must be positive"),
        }
    }
}

impl std::error::Error for RouteError {}

impl DynamicRoute {
    /// Creates a route from waypoints and a constant speed (m/s).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] for a zero-length path or non-positive speed.
    pub fn new(waypoints: Vec<Vec2>, speed: f64) -> Result<Self, RouteError> {
        let path = Polyline::new(waypoints);
        if path.length() <= 0.0 {
            return Err(RouteError::DegeneratePath);
        }
        if speed.is_nan() || speed <= 0.0 {
            return Err(RouteError::NonPositiveSpeed);
        }
        Ok(DynamicRoute { path, speed })
    }

    /// The patrol path.
    pub fn path(&self) -> &Polyline {
        &self.path
    }

    /// Patrol speed (m/s).
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Pose (position + motion heading) at time `t` seconds.
    ///
    /// The obstacle ping-pongs along the path: arc length follows a
    /// triangle wave with period `2·length/speed`.
    pub fn pose_at(&self, t: f64) -> Pose2 {
        let len = self.path.length();
        let s_raw = (self.speed * t.max(0.0)).rem_euclid(2.0 * len);
        let (s, forward) = if s_raw <= len {
            (s_raw, true)
        } else {
            (2.0 * len - s_raw, false)
        };
        let p = self.path.point_at(s);
        let h = self.path.heading_at(s);
        Pose2::from_parts(p, if forward { h } else { h + std::f64::consts::PI })
    }
}

/// Whether an obstacle moves, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObstacleKind {
    /// A fixed box (parked car, crate, curb island).
    Static,
    /// A vehicle patrolling a [`DynamicRoute`].
    Dynamic(DynamicRoute),
}

/// An obstacle: a rectangular body placed statically or along a route.
///
/// # Example
///
/// ```
/// use icoil_geom::Pose2;
/// use icoil_world::Obstacle;
///
/// let parked = Obstacle::fixed(0, Pose2::new(14.0, 6.0, 0.4), 4.2, 1.8);
/// assert!(parked.footprint_at(10.0).contains(parked.footprint_at(0.0).center));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Scenario-unique identifier.
    pub id: ObstacleId,
    /// Body length (meters).
    pub length: f64,
    /// Body width (meters).
    pub width: f64,
    /// Rest pose for static obstacles; ignored for dynamic ones.
    pub pose: Pose2,
    /// Static or dynamic behaviour.
    pub kind: ObstacleKind,
}

impl Obstacle {
    /// Creates a static box obstacle.
    pub fn fixed(id: ObstacleId, pose: Pose2, length: f64, width: f64) -> Self {
        Obstacle {
            id,
            length,
            width,
            pose,
            kind: ObstacleKind::Static,
        }
    }

    /// Creates a dynamic obstacle patrolling `route`.
    pub fn moving(id: ObstacleId, route: DynamicRoute, length: f64, width: f64) -> Self {
        let pose = route.pose_at(0.0);
        Obstacle {
            id,
            length,
            width,
            pose,
            kind: ObstacleKind::Dynamic(route),
        }
    }

    /// Returns `true` for dynamic obstacles.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.kind, ObstacleKind::Dynamic(_))
    }

    /// Pose at simulation time `t`.
    pub fn pose_at(&self, t: f64) -> Pose2 {
        match &self.kind {
            ObstacleKind::Static => self.pose,
            ObstacleKind::Dynamic(route) => route.pose_at(t),
        }
    }

    /// Oriented-box footprint at simulation time `t`.
    pub fn footprint_at(&self, t: f64) -> Obb {
        Obb::from_pose(self.pose_at(t), self.length, self.width)
    }

    /// Velocity vector at time `t` (finite difference; zero for statics).
    pub fn velocity_at(&self, t: f64) -> Vec2 {
        match &self.kind {
            ObstacleKind::Static => Vec2::ZERO,
            ObstacleKind::Dynamic(route) => {
                let dt = 0.1;
                let a = route.pose_at(t).position();
                let b = route.pose_at(t + dt).position();
                (b - a) / dt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route() -> DynamicRoute {
        DynamicRoute::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)], 2.0).unwrap()
    }

    #[test]
    fn route_validation() {
        assert_eq!(
            DynamicRoute::new(vec![Vec2::ZERO, Vec2::ZERO], 1.0),
            Err(RouteError::DegeneratePath)
        );
        assert_eq!(
            DynamicRoute::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)], 0.0),
            Err(RouteError::NonPositiveSpeed)
        );
    }

    #[test]
    fn route_ping_pong_period() {
        let r = route();
        // period = 2 * 10 / 2 = 10 s
        let p0 = r.pose_at(0.0);
        let p10 = r.pose_at(10.0);
        assert!(p0.position().distance(p10.position()) < 1e-9);
        // half period: at the far end
        let p5 = r.pose_at(5.0);
        assert!(p5.position().distance(Vec2::new(10.0, 0.0)) < 1e-9);
    }

    #[test]
    fn route_heading_flips_on_return() {
        let r = route();
        let fwd = r.pose_at(1.0);
        let back = r.pose_at(6.0); // returning
        assert!((fwd.theta - 0.0).abs() < 1e-9);
        assert!((back.theta.abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn route_never_leaves_path_bounds(){
        let r = route();
        for i in 0..200 {
            let p = r.pose_at(i as f64 * 0.173);
            assert!((-1e-9..=10.0 + 1e-9).contains(&p.x));
            assert!(p.y.abs() < 1e-9);
        }
    }

    #[test]
    fn static_obstacle_is_time_invariant() {
        let o = Obstacle::fixed(3, Pose2::new(1.0, 2.0, 0.5), 2.0, 2.0);
        assert_eq!(o.footprint_at(0.0), o.footprint_at(99.0));
        assert_eq!(o.velocity_at(5.0), Vec2::ZERO);
        assert!(!o.is_dynamic());
    }

    #[test]
    fn dynamic_obstacle_moves_with_consistent_velocity() {
        let o = Obstacle::moving(1, route(), 4.0, 2.0);
        assert!(o.is_dynamic());
        let v = o.velocity_at(1.0);
        assert!((v.norm() - 2.0).abs() < 1e-6);
        let p1 = o.pose_at(1.0).position();
        let p2 = o.pose_at(2.0).position();
        assert!((p2 - p1).norm() > 1.9);
    }
}
