//! Procedural scenario generation beyond the three fixed lots.
//!
//! [`ScenarioConfig`](crate::ScenarioConfig) draws seeded variations of the
//! paper's §V-B difficulty tiers on three *fixed* maps. This module composes
//! whole lots procedurally — lot dimensions, slot pose, obstacle counts and
//! placements, dynamic patrol routes and sensing-noise level are all sampled
//! from a seed — so the verification surface is not limited to layouts a
//! human wrote down.
//!
//! Scenarios are organized into named **map families** ([`MapFamily`]):
//!
//! * `reverse_in` — the baseline MoCAM-style recessed bay.
//! * `parallel_curb` — a curbside gap between two parked cars, entered
//!   with the pull-past-and-reverse maneuver.
//! * `angled_echelon` — an echelon bay at a parameterized angle to the
//!   wall, flanked by neighbor cars parked at the same angle.
//! * `pillared_garage` — a regular pillar grid across the floor, with
//!   pillars deterministically culled from the slot corridor and spawn
//!   strip.
//! * `dead_end_stub` — two walls forming a narrow dead-end corridor in
//!   front of the bay, forcing multi-point maneuvering.
//! * `crowded_lot` — rows of perpendicular-parked cars around a central
//!   aisle plus at least one scripted dynamic agent.
//!
//! Each family carries its own parameters (bay angle, pillar pitch, stub
//! width, …) with validity-enforced ranges, and contributes *structural*
//! obstacles — deterministic functions of the spec, emitted by
//! [`ProcScenario::build`] between the sampled statics and the dynamic
//! routes.
//!
//! The pipeline has three stages:
//!
//! 1. [`ProcGen::generate`] samples a [`ProcScenario`]: a fully *concrete*
//!    declarative spec (every obstacle pose is explicit, no hidden RNG
//!    downstream). Candidates failing [`ProcScenario::validity`] are
//!    resampled, so every returned spec builds a solvable-looking episode.
//! 2. [`ProcScenario::build`] expands the spec into an ordinary
//!    [`Scenario`] accepted by the episode runner and every policy.
//! 3. [`shrink`] minimizes a spec that makes some property fail: it
//!    deterministically drops obstacles, zeroes noise and snaps geometry to
//!    defaults while the caller's predicate keeps failing — the smallest
//!    reproducing form is what lands in a triage report.
//!
//! # Example
//!
//! ```
//! use icoil_world::procedural::{ProcGen, ProcGenConfig};
//!
//! let gen = ProcGen::new(ProcGenConfig::default());
//! let spec = gen.generate(7);
//! assert!(spec.validity().is_ok());
//! let scenario = spec.build();
//! assert!(scenario.map.bounds().contains(scenario.start_state.pose.position()));
//! // Same seed, same scenario:
//! assert_eq!(gen.generate(7), spec);
//! ```

use crate::{
    DynamicRoute, NoiseConfig, Obstacle, ParkingMap, Scenario,
};
use icoil_geom::{Aabb, Obb, OccupancyGrid, Pose2, Vec2};
use icoil_vehicle::{VehicleParams, VehicleState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The discriminant of a [`MapFamily`], without its parameters.
///
/// Used to pin a generator to one family ([`ProcGenConfig::family`]), to
/// key per-family statistics, and as the stable name in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapFamilyKind {
    /// MoCAM-style reverse-in bay recessed into the right wall.
    ReverseIn,
    /// Curbside gap between two parked cars along the top edge.
    ParallelCurb,
    /// Angled echelon bay flanked by same-angle neighbor cars.
    AngledEchelon,
    /// Regular pillar grid across the garage floor.
    PillaredGarage,
    /// Narrow dead-end corridor walled in front of the bay.
    DeadEndStub,
    /// Perpendicular-parked rows plus scripted dynamic agents.
    CrowdedLot,
}

impl MapFamilyKind {
    /// Every family, in sampling/report order.
    pub const ALL: [MapFamilyKind; 6] = [
        MapFamilyKind::ReverseIn,
        MapFamilyKind::ParallelCurb,
        MapFamilyKind::AngledEchelon,
        MapFamilyKind::PillaredGarage,
        MapFamilyKind::DeadEndStub,
        MapFamilyKind::CrowdedLot,
    ];

    /// Stable snake_case name used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            MapFamilyKind::ReverseIn => "reverse_in",
            MapFamilyKind::ParallelCurb => "parallel_curb",
            MapFamilyKind::AngledEchelon => "angled_echelon",
            MapFamilyKind::PillaredGarage => "pillared_garage",
            MapFamilyKind::DeadEndStub => "dead_end_stub",
            MapFamilyKind::CrowdedLot => "crowded_lot",
        }
    }

    /// The family's position in [`MapFamilyKind::ALL`] — the stable
    /// index keying per-family telemetry counters and the adaptation
    /// dataset's reservoirs.
    pub fn index(self) -> usize {
        MapFamilyKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("ALL covers every family")
    }

    /// Parses a [`MapFamilyKind::name`] back into the kind.
    pub fn from_name(name: &str) -> Option<MapFamilyKind> {
        MapFamilyKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for MapFamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the angled-echelon family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EchelonParams {
    /// Bay angle in radians; validity enforces `[0.3, 1.0]`.
    pub angle: f64,
}

/// Parameters of the pillared-garage family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GarageParams {
    /// Grid pitch in meters; validity enforces `[4.0, 7.0]`.
    pub pitch: f64,
    /// Pillar side length in meters; validity enforces `[0.4, 1.0]`.
    pub pillar: f64,
}

/// Parameters of the dead-end-stub family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StubParams {
    /// Clear corridor width in meters; validity enforces `[3.4, 5.0]`.
    pub corridor_w: f64,
    /// Wall length in meters; validity enforces `[5.0, 10.0]`.
    pub corridor_len: f64,
}

/// Parameters of the crowded-lot family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdedParams {
    /// Distance from the bay centerline to each parked row's center
    /// in meters; validity enforces `[5.2, 7.0]`.
    pub row_gap: f64,
}

/// A named scenario family together with its geometry parameters.
///
/// The parameters are part of the spec (explicit, serialized, shrunk), so
/// equal specs build bit-identical scenarios and a triage report pins the
/// exact geometry that reproduced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MapFamily {
    /// MoCAM-style reverse-in bay recessed into the right wall.
    ReverseIn,
    /// A curbside gap between two parked cars along the top edge,
    /// entered with the pull-past-and-reverse maneuver.
    ParallelCurb,
    /// An echelon bay at an angle to the right wall's normal, flanked
    /// by two neighbor cars parked at the same angle.
    AngledEchelon(EchelonParams),
    /// A regular square-pillar grid across the garage floor. Pillars
    /// intersecting the slot corridor or the spawn strip are culled
    /// deterministically.
    PillaredGarage(GarageParams),
    /// Two walls forming a dead-end corridor in front of the bay — the
    /// harshest multi-reversal geometry the generator emits.
    DeadEndStub(StubParams),
    /// Rows of perpendicular-parked cars on both sides of the bay
    /// centerline, plus at least one scripted dynamic agent.
    CrowdedLot(CrowdedParams),
}

impl MapFamily {
    /// This family's discriminant.
    pub fn kind(&self) -> MapFamilyKind {
        match self {
            MapFamily::ReverseIn => MapFamilyKind::ReverseIn,
            MapFamily::ParallelCurb => MapFamilyKind::ParallelCurb,
            MapFamily::AngledEchelon(_) => MapFamilyKind::AngledEchelon,
            MapFamily::PillaredGarage(_) => MapFamilyKind::PillaredGarage,
            MapFamily::DeadEndStub(_) => MapFamilyKind::DeadEndStub,
            MapFamily::CrowdedLot(_) => MapFamilyKind::CrowdedLot,
        }
    }

    /// The canonical (mid-range) parameters for a kind — what fallback
    /// specs use and what the shrinker snaps parameters to.
    pub fn canonical(kind: MapFamilyKind) -> MapFamily {
        match kind {
            MapFamilyKind::ReverseIn => MapFamily::ReverseIn,
            MapFamilyKind::ParallelCurb => MapFamily::ParallelCurb,
            MapFamilyKind::AngledEchelon => MapFamily::AngledEchelon(EchelonParams { angle: 0.6 }),
            MapFamilyKind::PillaredGarage => MapFamily::PillaredGarage(GarageParams {
                pitch: 5.5,
                pillar: 0.6,
            }),
            MapFamilyKind::DeadEndStub => MapFamily::DeadEndStub(StubParams {
                corridor_w: 4.0,
                corridor_len: 7.0,
            }),
            MapFamilyKind::CrowdedLot => MapFamily::CrowdedLot(CrowdedParams { row_gap: 6.0 }),
        }
    }

    /// Whether this family's parameters are inside their validity ranges.
    fn params_in_range(&self) -> bool {
        match *self {
            MapFamily::ReverseIn | MapFamily::ParallelCurb => true,
            MapFamily::AngledEchelon(p) => (0.3..=1.0).contains(&p.angle),
            MapFamily::PillaredGarage(p) => {
                (4.0..=7.0).contains(&p.pitch) && (0.4..=1.0).contains(&p.pillar)
            }
            MapFamily::DeadEndStub(p) => {
                (3.4..=5.0).contains(&p.corridor_w) && (5.0..=10.0).contains(&p.corridor_len)
            }
            MapFamily::CrowdedLot(p) => (5.2..=7.0).contains(&p.row_gap),
        }
    }
}

/// Sampling ranges for [`ProcGen`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcGenConfig {
    /// Lot width range (meters).
    pub lot_width: (f64, f64),
    /// Lot height range (meters).
    pub lot_height: (f64, f64),
    /// Static-obstacle count range (inclusive).
    pub n_static: (usize, usize),
    /// Dynamic-obstacle count range (inclusive).
    pub n_dynamic: (usize, usize),
    /// Whether parallel-curb slots are sampled alongside the other
    /// families (ignored when `family` pins one).
    pub allow_parallel: bool,
    /// Probability that a scenario carries sensing noise; the level is
    /// then drawn uniformly in `(0, 1]` × the hard-tier profile.
    pub noise_prob: f64,
    /// Pins every generated scenario to one family; `None` samples the
    /// full family mix.
    #[serde(default)]
    pub family: Option<MapFamilyKind>,
}

impl Default for ProcGenConfig {
    fn default() -> Self {
        ProcGenConfig {
            lot_width: (22.0, 36.0),
            lot_height: (13.0, 24.0),
            n_static: (0, 5),
            n_dynamic: (0, 2),
            allow_parallel: true,
            noise_prob: 0.4,
            family: None,
        }
    }
}

/// A concrete static-obstacle placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticSpec {
    /// Box center pose.
    pub pose: Pose2,
    /// Box length (meters).
    pub length: f64,
    /// Box width (meters).
    pub width: f64,
}

/// A concrete dynamic-obstacle patrol route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteSpec {
    /// Waypoints looped back and forth.
    pub waypoints: Vec<Vec2>,
    /// Patrol speed (m/s).
    pub speed: f64,
}

/// A fully-concrete procedural scenario spec.
///
/// Everything an episode needs is explicit, which is what makes
/// [`shrink`] possible: removing an entry from `statics` or `routes`
/// produces a strictly simpler scenario with no other change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcScenario {
    /// The seed that produced this spec (carried for triage reports).
    pub seed: u64,
    /// Lot width (meters).
    pub lot_w: f64,
    /// Lot height (meters).
    pub lot_h: f64,
    /// Map family and its geometry parameters.
    pub family: MapFamily,
    /// Slot position as a fraction of the usable wall span (0–1).
    pub bay_frac: f64,
    /// Static obstacles.
    pub statics: Vec<StaticSpec>,
    /// Dynamic obstacles.
    pub routes: Vec<RouteSpec>,
    /// Ego start pose (at rest).
    pub start: Pose2,
    /// Sensing-noise level: 0 = clean, 1 = the hard-tier profile.
    pub noise_scale: f64,
}

/// Why a candidate spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvalidScenario {
    /// Lot dimensions too small to hold spawn area and slot.
    LotTooSmall,
    /// The slot or goal pose falls outside the lot.
    SlotOutsideLot,
    /// A family geometry parameter is outside its allowed range.
    FamilyParamOutOfRange,
    /// The ego start footprint is outside the lot or overlaps an
    /// obstacle — nominally, or within the sensing-noise jitter
    /// envelope when the spec carries noise.
    SpawnBlocked,
    /// A static obstacle blocks the corridor in front of the slot.
    CorridorBlocked,
    /// A dynamic route leaves the lot interior.
    RouteOutsideLot,
    /// The family requires a scripted dynamic agent but the spec has
    /// none (crowded lot).
    MissingDynamicAgent,
    /// No drivable grid path connects the start to the slot approach.
    SlotUnreachable,
}

impl std::fmt::Display for InvalidScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InvalidScenario::LotTooSmall => "lot too small",
            InvalidScenario::SlotOutsideLot => "slot outside lot",
            InvalidScenario::FamilyParamOutOfRange => "family parameter out of range",
            InvalidScenario::SpawnBlocked => "spawn blocked",
            InvalidScenario::CorridorBlocked => "goal corridor blocked",
            InvalidScenario::RouteOutsideLot => "dynamic route outside lot",
            InvalidScenario::MissingDynamicAgent => "family requires a dynamic agent",
            InvalidScenario::SlotUnreachable => "slot unreachable from start",
        };
        f.write_str(s)
    }
}

/// Smallest lot the generator will emit (width, height).
const MIN_LOT: (f64, f64) = (20.0, 11.0);
/// Bay geometry shared with the fixed maps.
const BAY_DEPTH: f64 = 5.4;
const BAY_WIDTH: f64 = 3.0;
const CURB_GAP: f64 = 7.0;
const CURB_LANE_INSET: f64 = 1.6;
/// Stub-wall thickness in the dead-end family (meters).
const STUB_WALL: f64 = 0.5;
/// Grid resolution of the reachability check (meters per cell).
const REACH_RESOLUTION: f64 = 0.5;
/// Worst-case factor applied to the noise profile's jitter std when
/// checking the spawn clearance envelope (≈ a 3σ excursion).
const NOISE_ENVELOPE_SIGMA: f64 = 3.0;

impl ProcScenario {
    /// The lot geometry this spec describes.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid ([`ProcScenario::validity`] guards
    /// every construction path).
    pub fn map(&self) -> ParkingMap {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(self.lot_w, self.lot_h));
        let spawn = spawn_region(self.lot_w, self.lot_h);
        match self.family {
            MapFamily::ParallelCurb => {
                let x = bay_center_parallel(self.lot_w, self.bay_frac);
                let y = self.lot_h - CURB_LANE_INSET;
                let bay = Obb::from_pose(Pose2::new(x, y, 0.0), CURB_GAP, 1.9);
                let goal = Pose2::new(x - 1.3, y, 0.0);
                ParkingMap::new(bounds, spawn, goal, bay)
            }
            MapFamily::AngledEchelon(EchelonParams { angle }) => {
                // the bay's axis-aligned half-extents at this angle
                let (s, c) = angle.sin_cos();
                let ex = 0.5 * (BAY_DEPTH * c.abs() + BAY_WIDTH * s.abs());
                let ey = 0.5 * (BAY_DEPTH * s.abs() + BAY_WIDTH * c.abs());
                let x = self.lot_w - ex - 0.3;
                let margin = ey + 1.2;
                let y = margin + self.bay_frac * (self.lot_h - 2.0 * margin);
                let bay = Obb::from_pose(Pose2::new(x, y, angle), BAY_DEPTH, BAY_WIDTH);
                // deeper-into-bay direction, mirroring the reverse-in
                // goal offset at angle 0
                let goal = Pose2::new(
                    x + 1.3 * c,
                    y + 1.3 * s,
                    angle + std::f64::consts::PI,
                );
                ParkingMap::new(bounds, spawn, goal, bay)
            }
            MapFamily::ReverseIn
            | MapFamily::PillaredGarage(_)
            | MapFamily::DeadEndStub(_)
            | MapFamily::CrowdedLot(_) => {
                let y = bay_center_reverse_in(self.lot_h, self.bay_frac);
                let bay = Obb::from_pose(
                    Pose2::new(self.lot_w - BAY_DEPTH * 0.5 - 0.5, y, 0.0),
                    BAY_DEPTH,
                    BAY_WIDTH,
                );
                let goal = Pose2::new(bay.center.x + 1.3, y, std::f64::consts::PI);
                ParkingMap::new(bounds, spawn, goal, bay)
            }
        }
    }

    /// The family's deterministic *structural* obstacles — framing cars,
    /// echelon neighbors, pillar grid, stub walls, parked rows. A pure
    /// function of the spec, appended by [`ProcScenario::build`] between
    /// the sampled statics and the dynamic routes.
    pub fn structural_statics(&self) -> Vec<StaticSpec> {
        let map = self.map();
        let bay = map.bay();
        let bounds = map.bounds();
        let mut out = Vec::new();
        // grid/row members that don't fit the lot are culled rather
        // than rejected: "as many as fit" is the family's meaning
        let fits = |s: &StaticSpec| {
            let aabb = Obb::from_pose(s.pose, s.length, s.width).aabb();
            aabb.min.x >= bounds.min.x + 0.2
                && aabb.min.y >= bounds.min.y + 0.2
                && aabb.max.x <= bounds.max.x - 0.2
                && aabb.max.y <= bounds.max.y - 0.2
        };
        match self.family {
            MapFamily::ReverseIn => {}
            MapFamily::ParallelCurb => {
                // the two parked cars framing the curb gap
                for dx in [-(CURB_GAP * 0.5 + 2.4), CURB_GAP * 0.5 + 2.4] {
                    out.push(StaticSpec {
                        pose: Pose2::new(bay.center.x + dx, bay.center.y, 0.0),
                        length: 4.2,
                        width: 1.8,
                    });
                }
            }
            MapFamily::AngledEchelon(EchelonParams { angle }) => {
                // neighbor cars in the adjacent echelon bays, parked at
                // the same angle; ones that would poke out are culled
                let (s, c) = angle.sin_cos();
                let across = Vec2::new(-s, c);
                for side in [-1.0, 1.0] {
                    let center = bay.center + across * (side * (BAY_WIDTH + 1.0));
                    let spec = StaticSpec {
                        pose: Pose2::new(center.x, center.y, angle),
                        length: 4.2,
                        width: 1.7,
                    };
                    if fits(&spec) {
                        out.push(spec);
                    }
                }
            }
            MapFamily::PillaredGarage(GarageParams { pitch, pillar }) => {
                let corridor = slot_corridor(&map, self.family);
                let spawn = spawn_region(self.lot_w, self.lot_h);
                let mut x = 0.34 * self.lot_w;
                while x < self.lot_w - BAY_DEPTH - 2.5 {
                    let mut y = 2.8;
                    while y < self.lot_h - 2.8 {
                        let spec = StaticSpec {
                            pose: Pose2::new(x, y, 0.0),
                            length: pillar,
                            width: pillar,
                        };
                        let aabb = Obb::from_pose(spec.pose, pillar, pillar)
                            .inflated(0.4)
                            .aabb();
                        if fits(&spec)
                            && !corridor.intersects(&aabb)
                            && !spawn.intersects(&aabb)
                        {
                            out.push(spec);
                        }
                        y += pitch;
                    }
                    x += pitch;
                }
            }
            MapFamily::DeadEndStub(StubParams {
                corridor_w,
                corridor_len,
            }) => {
                // two walls flanking the bay approach, mouth-aligned
                let mouth_x = bay.center.x - BAY_DEPTH * 0.5;
                let cx = mouth_x - corridor_len * 0.5;
                for side in [-1.0, 1.0] {
                    out.push(StaticSpec {
                        pose: Pose2::new(
                            cx,
                            bay.center.y + side * (corridor_w * 0.5 + STUB_WALL * 0.5),
                            0.0,
                        ),
                        length: corridor_len,
                        width: STUB_WALL,
                    });
                }
            }
            MapFamily::CrowdedLot(CrowdedParams { row_gap }) => {
                // perpendicular-parked rows above and below the aisle
                let spawn = spawn_region(self.lot_w, self.lot_h);
                let x0 = (0.32 * self.lot_w).max(spawn.max.x + 1.2);
                for side in [-1.0, 1.0] {
                    let y = bay.center.y + side * row_gap;
                    let mut x = x0;
                    while x < self.lot_w - BAY_DEPTH - 2.0 {
                        let spec = StaticSpec {
                            pose: Pose2::new(x, y, std::f64::consts::FRAC_PI_2),
                            length: 4.2,
                            width: 1.8,
                        };
                        if fits(&spec) {
                            out.push(spec);
                        }
                        x += 2.6;
                    }
                }
            }
        }
        out
    }

    /// Expands the spec into a runnable [`Scenario`].
    ///
    /// Obstacle ids are assigned positionally (sampled statics first,
    /// then the family's structural obstacles, then dynamics), so equal
    /// specs build bit-identical scenarios.
    pub fn build(&self) -> Scenario {
        let map = self.map();
        let mut obstacles = Vec::new();
        for s in &self.statics {
            obstacles.push(Obstacle::fixed(obstacles.len(), s.pose, s.length, s.width));
        }
        for s in self.structural_statics() {
            obstacles.push(Obstacle::fixed(obstacles.len(), s.pose, s.length, s.width));
        }
        for r in &self.routes {
            obstacles.push(Obstacle::moving(
                obstacles.len(),
                DynamicRoute::new(r.waypoints.clone(), r.speed).expect("valid route"),
                3.6,
                1.6,
            ));
        }
        let hard = NoiseConfig::hard();
        let k = self.noise_scale.clamp(0.0, 1.0);
        let noise = NoiseConfig {
            image_noise_std: hard.image_noise_std * k,
            pixel_dropout: hard.pixel_dropout * k,
            box_jitter: hard.box_jitter * k,
            heading_jitter: hard.heading_jitter * k,
            false_negative_rate: hard.false_negative_rate * k,
            phantom_rate: hard.phantom_rate * k,
        };
        Scenario {
            map,
            obstacles,
            start_state: VehicleState::at_rest(self.start),
            noise,
            vehicle_params: VehicleParams::default(),
            difficulty: crate::Difficulty::Normal,
            seed: self.seed,
            dt: 0.05,
            family: Some(self.family.kind()),
        }
    }

    /// Checks that the spec describes a well-posed, plausibly-solvable
    /// episode: family parameters in range, geometry inside the lot,
    /// clear spawn (under the sensing-noise jitter envelope, not just
    /// nominally), clear slot corridor, in-bounds patrol routes and a
    /// drivable grid path from the start to the slot approach.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validity(&self) -> Result<(), InvalidScenario> {
        if self.lot_w < MIN_LOT.0 || self.lot_h < MIN_LOT.1 {
            return Err(InvalidScenario::LotTooSmall);
        }
        if !(0.0..=1.0).contains(&self.bay_frac) || !(0.0..=1.0).contains(&self.noise_scale) {
            return Err(InvalidScenario::SlotOutsideLot);
        }
        if !self.family.params_in_range() {
            return Err(InvalidScenario::FamilyParamOutOfRange);
        }
        if self.family.kind() == MapFamilyKind::CrowdedLot && self.routes.is_empty() {
            return Err(InvalidScenario::MissingDynamicAgent);
        }
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(self.lot_w, self.lot_h));
        let map = self.map();
        if !bounds.contains(map.goal_pose().position()) || !bounds.contains(map.bay().center) {
            return Err(InvalidScenario::SlotOutsideLot);
        }
        let params = VehicleParams::default();

        // every obstacle footprint at t = 0
        let scenario = self.build();
        let footprints: Vec<Obb> = scenario
            .obstacles
            .iter()
            .map(|o| o.footprint_at(0.0))
            .collect();

        // spawn: inside the lot, clear of everything with margin
        let fp = scenario.start_state.footprint(&params).inflated(0.3);
        if !map.contains_footprint(&fp) || footprints.iter().any(|o| o.intersects(&fp)) {
            return Err(InvalidScenario::SpawnBlocked);
        }
        // ... and clear under the perception-noise jitter envelope:
        // noised obstacle boxes are jittered *relative* to the ego, so a
        // spawn that only clears nominally can read as a frame-0
        // collision to the planner. Inflating each obstacle by the
        // worst-case translation plus its heading-jitter arc covers
        // every pose the noise can report. Zeroing `noise_scale` only
        // weakens this check, so the shrinker still terminates.
        if self.noise_scale > 0.0 {
            let hard = NoiseConfig::hard();
            let k = self.noise_scale.clamp(0.0, 1.0);
            let d_pos = NOISE_ENVELOPE_SIGMA * hard.box_jitter * k;
            let d_theta = NOISE_ENVELOPE_SIGMA * hard.heading_jitter * k;
            for o in &footprints {
                let slack = d_pos + o.circumradius() * d_theta;
                if o.inflated(slack).intersects(&fp) {
                    return Err(InvalidScenario::SpawnBlocked);
                }
            }
        }

        // sampled statics must stay out of the slot approach corridor;
        // structural obstacles (framing cars, stub walls, …) legitimately
        // touch it by construction
        let corridor = slot_corridor(&map, self.family);
        let n_fixed = scenario.obstacles.iter().filter(|o| !o.is_dynamic()).count();
        for o in footprints.iter().take(self.statics.len().min(n_fixed)) {
            if corridor.intersects(&o.aabb()) {
                return Err(InvalidScenario::CorridorBlocked);
            }
        }

        // routes stay inside the lot (body inset by the vehicle half-diagonal)
        let inset = 2.0;
        let interior = Aabb::new(
            bounds.min + Vec2::new(inset, inset),
            bounds.max - Vec2::new(inset, inset),
        );
        for r in &self.routes {
            if r.waypoints.len() < 2 || r.speed <= 0.0 {
                return Err(InvalidScenario::RouteOutsideLot);
            }
            if r.waypoints.iter().any(|w| !interior.contains(*w)) {
                return Err(InvalidScenario::RouteOutsideLot);
            }
        }

        // coarse reachability: BFS over a grid with statics inflated by
        // the vehicle half-width; dynamics are ignored (they move away)
        let statics: Vec<Obb> = footprints
            .iter()
            .take(n_fixed)
            .copied()
            .collect();
        let approach = approach_point(&map, self.family, &corridor);
        if !grid_reachable(&map, &statics, self.start.position(), approach, &params) {
            return Err(InvalidScenario::SlotUnreachable);
        }
        Ok(())
    }
}

fn spawn_region(lot_w: f64, lot_h: f64) -> Aabb {
    Aabb::new(
        Vec2::new(2.0, 3.0),
        Vec2::new((0.28 * lot_w).max(5.0), lot_h - 3.0),
    )
}

fn bay_center_reverse_in(lot_h: f64, frac: f64) -> f64 {
    let margin = BAY_WIDTH * 0.5 + 1.6;
    margin + frac * (lot_h - 2.0 * margin)
}

fn bay_center_parallel(lot_w: f64, frac: f64) -> f64 {
    // leave room for the framing cars on both sides
    let margin = CURB_GAP * 0.5 + 5.2;
    margin + frac * (lot_w - 2.0 * margin)
}

/// The region in front of the slot that must stay clear of sampled
/// statics so the approach maneuver has room.
fn slot_corridor(map: &ParkingMap, family: MapFamily) -> Aabb {
    let bay = map.bay().center;
    match family {
        MapFamily::ParallelCurb => Aabb::new(
            Vec2::new(bay.x - 8.5, bay.y - 4.5),
            Vec2::new(bay.x + 8.5, map.bounds().max.y),
        ),
        MapFamily::AngledEchelon(EchelonParams { angle }) => {
            // the angled bay sweeps a taller mouth than the straight one
            let half_h = 2.8 + 1.5 * angle.sin().abs();
            Aabb::new(
                Vec2::new(bay.x - 6.2, bay.y - half_h),
                Vec2::new(map.bounds().max.x, bay.y + half_h),
            )
        }
        MapFamily::ReverseIn
        | MapFamily::PillaredGarage(_)
        | MapFamily::DeadEndStub(_)
        | MapFamily::CrowdedLot(_) => Aabb::new(
            Vec2::new(bay.x - 5.8, bay.y - 2.8),
            Vec2::new(map.bounds().max.x, bay.y + 2.8),
        ),
    }
}

/// Where the reachability BFS must arrive. For the dead-end stub the
/// corridor center can land past the stub mouth, so the target sits
/// inside the walled corridor itself.
fn approach_point(map: &ParkingMap, family: MapFamily, corridor: &Aabb) -> Vec2 {
    match family {
        MapFamily::DeadEndStub(StubParams { corridor_len, .. }) => {
            let bay = map.bay();
            let mouth_x = bay.center.x - BAY_DEPTH * 0.5;
            Vec2::new(mouth_x - corridor_len * 0.5, bay.center.y)
        }
        _ => corridor.center(),
    }
}

/// Coarse grid-BFS drivability check from `from` to `to`.
fn grid_reachable(
    map: &ParkingMap,
    statics: &[Obb],
    from: Vec2,
    to: Vec2,
    params: &VehicleParams,
) -> bool {
    let mut grid = OccupancyGrid::covering(&map.bounds(), REACH_RESOLUTION);
    let inflation = params.width * 0.5 + 0.1;
    let (cols, rows) = (grid.cols(), grid.rows());
    for r in 0..rows {
        for c in 0..cols {
            let cell = icoil_geom::Cell {
                col: c as i64,
                row: r as i64,
            };
            let p = grid.cell_to_world(cell);
            let blocked = statics
                .iter()
                .any(|o| o.distance_to_point(p) < inflation)
                || p.x < map.bounds().min.x + inflation
                || p.y < map.bounds().min.y + inflation
                || p.x > map.bounds().max.x - inflation
                || p.y > map.bounds().max.y - inflation;
            if blocked {
                grid.set(cell, 255);
            }
        }
    }
    let start = grid.world_to_cell(from);
    let goal = grid.world_to_cell(to);
    if !grid.in_bounds(start) || !grid.in_bounds(goal) {
        return false;
    }
    // the goal cell may fall inside the (recessed) bay clearance band;
    // accept reaching any cell within one resolution step of it
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; cols * rows];
    let idx = |c: icoil_geom::Cell| c.row as usize * cols + c.col as usize;
    if grid.is_occupied(start, 128) {
        return false;
    }
    queue.push_back(start);
    seen[idx(start)] = true;
    while let Some(cell) = queue.pop_front() {
        if (cell.col - goal.col).abs() <= 1 && (cell.row - goal.row).abs() <= 1 {
            return true;
        }
        for (dc, dr) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let next = icoil_geom::Cell {
                col: cell.col + dc,
                row: cell.row + dr,
            };
            if !grid.in_bounds(next) || grid.is_occupied(next, 128) {
                continue;
            }
            let i = idx(next);
            if !seen[i] {
                seen[i] = true;
                queue.push_back(next);
            }
        }
    }
    false
}

/// The seeded lot composer.
#[derive(Debug, Clone)]
pub struct ProcGen {
    config: ProcGenConfig,
}

impl ProcGen {
    /// Creates a generator with the given sampling ranges.
    pub fn new(config: ProcGenConfig) -> Self {
        ProcGen { config }
    }

    /// The sampling configuration.
    pub fn config(&self) -> &ProcGenConfig {
        &self.config
    }

    /// Generates a valid scenario spec for `seed`.
    ///
    /// Candidates are sampled from seeds derived from `(seed, attempt)`
    /// and the first one passing [`ProcScenario::validity`] is returned —
    /// deterministic for a given seed. After 64 failed attempts the
    /// obstacle-free fallback lot for the pinned family (always valid)
    /// is returned.
    pub fn generate(&self, seed: u64) -> ProcScenario {
        for attempt in 0..64u64 {
            let mut spec = self.sample(seed, attempt);
            if spec.validity().is_ok() {
                spec.seed = seed;
                return spec;
            }
        }
        let kind = self.config.family.unwrap_or(MapFamilyKind::ReverseIn);
        let fallback = fallback_spec(seed, kind);
        debug_assert!(fallback.validity().is_ok());
        fallback
    }

    /// One unchecked candidate draw.
    fn sample(&self, seed: u64, attempt: u64) -> ProcScenario {
        let c = &self.config;
        let mut rng = SmallRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9e3779b97f4a7c15));
        let mut lot_w = rng.gen_range(c.lot_width.0..c.lot_width.1);
        let mut lot_h = rng.gen_range(c.lot_height.0..c.lot_height.1);
        let kind = match c.family {
            Some(kind) => kind,
            None => {
                let mix: &[MapFamilyKind] = if c.allow_parallel {
                    &MapFamilyKind::ALL
                } else {
                    &[
                        MapFamilyKind::ReverseIn,
                        MapFamilyKind::AngledEchelon,
                        MapFamilyKind::PillaredGarage,
                        MapFamilyKind::DeadEndStub,
                        MapFamilyKind::CrowdedLot,
                    ]
                };
                mix[rng.gen_range(0..mix.len())]
            }
        };
        // family parameters are drawn unconditionally so the stream of
        // downstream draws (obstacles, start, noise) is family-independent
        let angle = rng.gen_range(0.35..0.95);
        let pitch = rng.gen_range(4.5..6.5);
        let pillar = rng.gen_range(0.45..0.9);
        let corridor_w = rng.gen_range(3.6..4.8);
        let corridor_len = rng.gen_range(5.5..9.0);
        let row_gap = rng.gen_range(5.4..6.8);
        // per-family lot clamps keep the sampled geometry plausible
        let family = match kind {
            MapFamilyKind::ReverseIn => MapFamily::ReverseIn,
            MapFamilyKind::ParallelCurb => {
                if lot_w < 2.0 * (CURB_GAP * 0.5 + 5.2) + 1.0 {
                    // lot too narrow for the curb gap plus framing cars
                    MapFamily::ReverseIn
                } else {
                    MapFamily::ParallelCurb
                }
            }
            MapFamilyKind::AngledEchelon => MapFamily::AngledEchelon(EchelonParams { angle }),
            MapFamilyKind::PillaredGarage => {
                lot_w = lot_w.max(26.0);
                MapFamily::PillaredGarage(GarageParams { pitch, pillar })
            }
            MapFamilyKind::DeadEndStub => {
                lot_w = lot_w.max(24.0);
                MapFamily::DeadEndStub(StubParams {
                    corridor_w,
                    corridor_len,
                })
            }
            MapFamilyKind::CrowdedLot => {
                lot_h = lot_h.max(16.0);
                MapFamily::CrowdedLot(CrowdedParams { row_gap })
            }
        };
        let bay_frac = rng.gen_range(0.0..1.0);

        let spec_wo_obstacles = ProcScenario {
            seed,
            lot_w,
            lot_h,
            family,
            bay_frac,
            statics: Vec::new(),
            routes: Vec::new(),
            start: Pose2::new(0.0, 0.0, 0.0),
            noise_scale: 0.0,
        };
        let map = spec_wo_obstacles.map();
        let corridor = slot_corridor(&map, family);
        let bounds = map.bounds();

        // statics in the mid-lot band, clear of the corridor and each other
        let n_static = rng.gen_range(c.n_static.0..=c.n_static.1);
        let band = Aabb::new(
            Vec2::new(bounds.min.x + 0.3 * lot_w, bounds.min.y + 2.0),
            Vec2::new(bounds.min.x + 0.78 * lot_w, bounds.max.y - 2.0),
        );
        let mut statics: Vec<StaticSpec> = Vec::new();
        let mut tries = 0;
        while statics.len() < n_static && tries < 400 {
            tries += 1;
            let pose = Pose2::new(
                rng.gen_range(band.min.x..band.max.x),
                rng.gen_range(band.min.y..band.max.y),
                rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            );
            let length = rng.gen_range(1.8..3.2);
            let width = rng.gen_range(1.8..3.2);
            let obb = Obb::from_pose(pose, length, width);
            if corridor.intersects(&obb.aabb()) {
                continue;
            }
            if statics
                .iter()
                .any(|s| Obb::from_pose(s.pose, s.length, s.width).distance_to_obb(&obb) < 2.4)
            {
                continue;
            }
            statics.push(StaticSpec { pose, length, width });
        }

        // dynamic patrols: straight two-point routes in the interior;
        // the crowded lot always ships at least one scripted agent
        let n_dynamic_min = if kind == MapFamilyKind::CrowdedLot {
            c.n_dynamic.0.max(1)
        } else {
            c.n_dynamic.0
        };
        let n_dynamic = rng.gen_range(n_dynamic_min..=c.n_dynamic.1.max(n_dynamic_min));
        let mut routes = Vec::new();
        for _ in 0..n_dynamic {
            let vertical = rng.gen_range(0.0..1.0) < 0.5;
            let (a, b) = if vertical {
                let x = rng.gen_range(bounds.min.x + 0.3 * lot_w..bounds.min.x + 0.7 * lot_w);
                (
                    Vec2::new(x, bounds.min.y + rng.gen_range(2.2..3.5)),
                    Vec2::new(x, bounds.max.y - rng.gen_range(2.2..3.5)),
                )
            } else {
                let y = rng.gen_range(bounds.min.y + 0.3 * lot_h..bounds.min.y + 0.7 * lot_h);
                (
                    Vec2::new(bounds.min.x + rng.gen_range(2.2..3.5), y),
                    Vec2::new(bounds.min.x + 0.75 * lot_w, y),
                )
            };
            routes.push(RouteSpec {
                waypoints: vec![a, b],
                speed: rng.gen_range(0.4..1.0),
            });
        }

        // start pose in the spawn strip, roughly facing the lot interior
        let spawn = spawn_region(lot_w, lot_h);
        let start = Pose2::new(
            rng.gen_range(spawn.min.x..spawn.max.x),
            rng.gen_range(spawn.min.y..spawn.max.y),
            rng.gen_range(-0.5..0.5),
        );

        let noise_scale = if rng.gen_range(0.0..1.0) < c.noise_prob {
            rng.gen_range(0.1..1.0)
        } else {
            0.0
        };

        ProcScenario {
            seed,
            lot_w,
            lot_h,
            family,
            bay_frac,
            statics,
            routes,
            start,
            noise_scale,
        }
    }
}

impl Default for ProcGen {
    fn default() -> Self {
        ProcGen::new(ProcGenConfig::default())
    }
}

/// The canonical always-valid spec for a family — the generator's
/// fallback when 64 sampled candidates all fail validity.
fn fallback_spec(seed: u64, kind: MapFamilyKind) -> ProcScenario {
    let family = MapFamily::canonical(kind);
    let (lot_w, lot_h) = (30.0, 20.0);
    let start_y = match family {
        MapFamily::ParallelCurb => 7.0,
        _ => bay_center_reverse_in(lot_h, 0.5),
    };
    let routes = match family {
        // the crowded lot's family contract includes a scripted agent
        MapFamily::CrowdedLot(_) => vec![RouteSpec {
            waypoints: vec![Vec2::new(17.0, 3.0), Vec2::new(17.0, lot_h - 3.0)],
            speed: 0.6,
        }],
        _ => Vec::new(),
    };
    ProcScenario {
        seed,
        lot_w,
        lot_h,
        family,
        bay_frac: 0.5,
        statics: Vec::new(),
        routes,
        start: Pose2::new(5.0, start_y, 0.0),
        noise_scale: 0.0,
    }
}

/// Deterministically minimizes a failing spec.
///
/// `still_failing` must return `true` while the property under test still
/// fails for a candidate. The shrinker greedily applies simplifications —
/// drop a dynamic route, drop a static obstacle, zero the noise, snap the
/// lot, slot and family parameters to canonical values, center the start
/// pose — keeping each one only when the candidate is still *valid* and
/// still failing, and repeats until a fixpoint. The family's kind never
/// changes, so the minimized repro stays in the family that found the
/// failure. The result reproduces the failure with the fewest moving
/// parts.
pub fn shrink<F>(spec: &ProcScenario, mut still_failing: F) -> ProcScenario
where
    F: FnMut(&ProcScenario) -> bool,
{
    let mut current = spec.clone();
    let accepts = |cand: &ProcScenario, f: &mut F| cand.validity().is_ok() && f(cand);
    for _pass in 0..8 {
        let mut changed = false;

        // drop dynamic routes, last first (stable indices)
        let mut i = current.routes.len();
        while i > 0 {
            i -= 1;
            let mut cand = current.clone();
            cand.routes.remove(i);
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // drop static obstacles
        let mut i = current.statics.len();
        while i > 0 {
            i -= 1;
            let mut cand = current.clone();
            cand.statics.remove(i);
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // zero the sensing noise
        if current.noise_scale > 0.0 {
            let mut cand = current.clone();
            cand.noise_scale = 0.0;
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // snap geometry to canonical values, one knob at a time
        let snaps: [fn(&mut ProcScenario); 5] = [
            |c| c.lot_w = 30.0,
            |c| c.lot_h = 20.0,
            |c| c.bay_frac = 0.5,
            |c| c.family = MapFamily::canonical(c.family.kind()),
            |c| {
                let center = spawn_region(c.lot_w, c.lot_h).center();
                c.start = Pose2::new(center.x, center.y, 0.0);
            },
        ];
        for snap in snaps {
            let mut cand = current.clone();
            snap(&mut cand);
            if cand != current && accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let gen = ProcGen::default();
        for seed in 0..40 {
            let a = gen.generate(seed);
            let b = gen.generate(seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.validity(), Ok(()), "seed {seed}");
            assert_eq!(a.build(), b.build(), "seed {seed}");
        }
    }

    #[test]
    fn seeds_explore_the_space() {
        let gen = ProcGen::default();
        let specs: Vec<ProcScenario> = (0..120).map(|s| gen.generate(s)).collect();
        let widths: std::collections::BTreeSet<u64> =
            specs.iter().map(|s| s.lot_w as u64).collect();
        assert!(widths.len() > 5, "lot widths barely vary: {widths:?}");
        let kinds: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.family.kind().name()).collect();
        assert!(
            kinds.len() >= 5,
            "the family mix barely varies: {kinds:?}"
        );
        assert!(specs.iter().any(|s| !s.routes.is_empty()));
        assert!(specs.iter().any(|s| s.noise_scale > 0.0));
        assert!(specs.iter().any(|s| s.statics.len() >= 3));
    }

    #[test]
    fn every_family_generates_when_pinned() {
        for kind in MapFamilyKind::ALL {
            let gen = ProcGen::new(ProcGenConfig {
                family: Some(kind),
                ..ProcGenConfig::default()
            });
            for seed in 0..12 {
                let spec = gen.generate(seed);
                assert_eq!(spec.family.kind(), kind, "seed {seed} kind {kind}");
                assert_eq!(spec.validity(), Ok(()), "seed {seed} kind {kind}");
                let scenario = spec.build();
                let mut world = crate::World::new(scenario);
                assert!(
                    !world.in_collision(),
                    "seed {seed} kind {kind} spawns in collision"
                );
                for _ in 0..10 {
                    world.step(&icoil_vehicle::Action::forward(0.2, 0.0));
                }
            }
        }
    }

    #[test]
    fn fallback_specs_are_valid_for_every_family() {
        for kind in MapFamilyKind::ALL {
            let spec = fallback_spec(9, kind);
            assert_eq!(spec.family.kind(), kind);
            assert_eq!(spec.validity(), Ok(()), "fallback for {kind}");
        }
    }

    #[test]
    fn family_names_round_trip_and_are_stable() {
        let expected = [
            "reverse_in",
            "parallel_curb",
            "angled_echelon",
            "pillared_garage",
            "dead_end_stub",
            "crowded_lot",
        ];
        for (kind, name) in MapFamilyKind::ALL.into_iter().zip(expected) {
            assert_eq!(kind.name(), name);
            assert_eq!(MapFamilyKind::from_name(name), Some(kind));
        }
        assert_eq!(MapFamilyKind::from_name("mocam"), None);
    }

    #[test]
    fn built_scenarios_run_in_the_world() {
        let gen = ProcGen::default();
        for seed in 0..10 {
            let scenario = gen.generate(seed).build();
            let mut world = crate::World::new(scenario);
            assert!(!world.in_collision(), "seed {seed} spawns in collision");
            for _ in 0..20 {
                world.step(&icoil_vehicle::Action::forward(0.2, 0.0));
            }
        }
    }

    #[test]
    fn validity_rejects_blocked_spawn() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(1);
        spec.statics.push(StaticSpec {
            pose: spec.start,
            length: 3.0,
            width: 3.0,
        });
        assert_eq!(spec.validity(), Err(InvalidScenario::SpawnBlocked));
    }

    #[test]
    fn validity_rejects_spawn_blocked_only_under_noise_jitter() {
        // a static that clears the nominal inflated footprint but sits
        // inside the 3σ jitter envelope must be rejected when (and only
        // when) the spec carries sensing noise
        let mut spec = fallback_spec(0, MapFamilyKind::ReverseIn);
        let params = VehicleParams::default();
        let fp = VehicleState::at_rest(spec.start).footprint(&params);
        // place the box ahead of the nose: nominal gap ~0.45 m, inside
        // the full-noise envelope (3 × 0.15 m translation + heading arc)
        let nose_x = fp.aabb().max.x;
        spec.statics.push(StaticSpec {
            pose: Pose2::new(nose_x + 0.75 + 0.45, spec.start.y, 0.0),
            length: 1.5,
            width: 1.5,
        });
        spec.noise_scale = 0.0;
        assert_eq!(spec.validity(), Ok(()), "nominal spawn must clear");
        spec.noise_scale = 1.0;
        assert_eq!(
            spec.validity(),
            Err(InvalidScenario::SpawnBlocked),
            "the jitter envelope must reject the marginal spawn"
        );
    }

    #[test]
    fn validity_rejects_walled_off_slot() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(2);
        spec.statics.clear();
        spec.routes.clear();
        if spec.family.kind() == MapFamilyKind::CrowdedLot {
            spec = fallback_spec(2, MapFamilyKind::ReverseIn);
        }
        assert_eq!(spec.validity(), Ok(()));
        // wall the lot in half between spawn and slot
        let map = spec.map();
        let x = spec.lot_w * 0.5;
        let mut y = 1.0;
        while y < spec.lot_h {
            spec.statics.push(StaticSpec {
                pose: Pose2::new(x, y, 0.0),
                length: 1.5,
                width: 3.4,
            });
            y += 3.0;
        }
        let r = spec.validity();
        assert!(
            r == Err(InvalidScenario::SlotUnreachable)
                || r == Err(InvalidScenario::CorridorBlocked)
                || r == Err(InvalidScenario::SpawnBlocked),
            "a bisected lot must be rejected, got {r:?} (map bounds {:?})",
            map.bounds()
        );
    }

    #[test]
    fn validity_enforces_family_param_ranges() {
        let mut spec = fallback_spec(0, MapFamilyKind::AngledEchelon);
        spec.family = MapFamily::AngledEchelon(EchelonParams { angle: 1.4 });
        assert_eq!(spec.validity(), Err(InvalidScenario::FamilyParamOutOfRange));
        let mut spec = fallback_spec(0, MapFamilyKind::DeadEndStub);
        spec.family = MapFamily::DeadEndStub(StubParams {
            corridor_w: 1.0,
            corridor_len: 7.0,
        });
        assert_eq!(spec.validity(), Err(InvalidScenario::FamilyParamOutOfRange));
    }

    #[test]
    fn crowded_lot_requires_a_dynamic_agent() {
        let mut spec = fallback_spec(0, MapFamilyKind::CrowdedLot);
        assert_eq!(spec.validity(), Ok(()));
        spec.routes.clear();
        assert_eq!(spec.validity(), Err(InvalidScenario::MissingDynamicAgent));
    }

    #[test]
    fn structural_obstacles_match_their_family() {
        // curb gap: exactly two framing cars
        let curb = fallback_spec(0, MapFamilyKind::ParallelCurb);
        assert_eq!(curb.structural_statics().len(), 2);
        // echelon: neighbor cars parked at the bay angle
        let ech = fallback_spec(0, MapFamilyKind::AngledEchelon);
        let neighbors = ech.structural_statics();
        assert!(!neighbors.is_empty());
        for n in &neighbors {
            assert!((n.pose.theta - 0.6).abs() < 1e-12);
        }
        // garage: a pillar grid that stays out of the slot corridor
        let garage = fallback_spec(0, MapFamilyKind::PillaredGarage);
        let pillars = garage.structural_statics();
        assert!(pillars.len() >= 4, "only {} pillars", pillars.len());
        let corridor = slot_corridor(&garage.map(), garage.family);
        for p in &pillars {
            let aabb = Obb::from_pose(p.pose, p.length, p.width).aabb();
            assert!(!corridor.intersects(&aabb));
        }
        // dead-end stub: two walls symmetric about the bay centerline
        let stub = fallback_spec(0, MapFamilyKind::DeadEndStub);
        let walls = stub.structural_statics();
        assert_eq!(walls.len(), 2);
        let bay_y = stub.map().bay().center.y;
        assert!((walls[0].pose.y + walls[1].pose.y - 2.0 * bay_y).abs() < 1e-9);
        // crowded lot: two rows of parked cars
        let crowd = fallback_spec(0, MapFamilyKind::CrowdedLot);
        let cars = crowd.structural_statics();
        assert!(cars.len() >= 6, "only {} parked cars", cars.len());
        let aisle_y = crowd.map().bay().center.y;
        let above = cars.iter().filter(|c| c.pose.y > aisle_y).count();
        assert!(above > 0 && above < cars.len(), "cars on both sides");
    }

    #[test]
    fn shrink_minimizes_to_smallest_failing_form() {
        let gen = ProcGen::default();
        // find a busy spec: several statics plus at least one route
        let spec = (0..200)
            .map(|s| gen.generate(s))
            .find(|s| {
                s.statics.len() >= 3
                    && !s.routes.is_empty()
                    && s.noise_scale > 0.0
                    && s.family.kind() != MapFamilyKind::CrowdedLot
            })
            .expect("a busy spec exists");
        // property that "fails" whenever any dynamic obstacle is present
        let minimized = shrink(&spec, |s| !s.routes.is_empty());
        assert_eq!(minimized.routes.len(), 1, "exactly one route remains");
        assert!(minimized.statics.is_empty(), "statics dropped");
        assert_eq!(minimized.noise_scale, 0.0, "noise dropped");
        assert_eq!(minimized.validity(), Ok(()));
        assert_eq!(minimized.lot_w, 30.0);
        assert_eq!(minimized.lot_h, 20.0);
        assert_eq!(
            minimized.family,
            MapFamily::canonical(spec.family.kind()),
            "family parameters snapped, kind preserved"
        );
    }

    #[test]
    fn shrink_keeps_spec_intact_when_nothing_helps() {
        let gen = ProcGen::default();
        let spec = gen.generate(3);
        // a predicate failing only for the exact original spec
        let orig = spec.clone();
        let out = shrink(&spec, |s| *s == orig);
        assert_eq!(out, orig);
    }

    #[test]
    fn parallel_curb_specs_have_framing_cars() {
        let gen = ProcGen::default();
        let spec = (0..100)
            .map(|s| gen.generate(s))
            .find(|s| s.family == MapFamily::ParallelCurb)
            .expect("a curb spec exists");
        let scenario = spec.build();
        let fixed = scenario
            .obstacles
            .iter()
            .filter(|o| !o.is_dynamic())
            .count();
        assert_eq!(fixed, spec.statics.len() + 2);
        let goal = scenario.map.goal_pose();
        for o in &scenario.obstacles {
            assert!(!o.footprint_at(0.0).contains(goal.position()));
        }
    }

    #[test]
    fn noise_scale_interpolates_the_hard_profile() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(0);
        spec.noise_scale = 0.0;
        assert!(spec.build().noise.is_none());
        spec.noise_scale = 1.0;
        // full-tier noise may push the (previously marginal) spawn into
        // the jitter envelope; only the noise interpolation is under test
        assert_eq!(spec.build().noise, NoiseConfig::hard());
        spec.noise_scale = 0.5;
        let n = spec.build().noise;
        assert!((n.box_jitter - NoiseConfig::hard().box_jitter * 0.5).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Regression for the noised-spawn fix: every spec the generator
        /// returns keeps its spawn clear under any obstacle perturbation
        /// inside the noise envelope, not just nominally.
        #[test]
        fn generated_spawns_clear_the_noise_envelope(
            seed in 0u64..600,
            dx in -1.0f64..1.0,
            dy in -1.0f64..1.0,
            dth in -1.0f64..1.0,
        ) {
            let gen = ProcGen::default();
            let spec = gen.generate(seed);
            if spec.noise_scale == 0.0 {
                // clean spec: the envelope property is vacuous
                return Ok(());
            }
            let hard = NoiseConfig::hard();
            let d_pos = NOISE_ENVELOPE_SIGMA * hard.box_jitter * spec.noise_scale;
            let d_theta = NOISE_ENVELOPE_SIGMA * hard.heading_jitter * spec.noise_scale;
            let scenario = spec.build();
            let params = VehicleParams::default();
            let fp = scenario.start_state.footprint(&params).inflated(0.3);
            for o in scenario.obstacles.iter().map(|o| o.footprint_at(0.0)) {
                // perturb the obstacle as jittered perception would
                // report it (translation scaled inside the disc bound)
                let scale = d_pos / 2f64.sqrt();
                let mut moved = o;
                moved.center = o.center + Vec2::new(dx * scale, dy * scale);
                moved.theta += dth * d_theta;
                prop_assert!(
                    !moved.intersects(&fp),
                    "seed {seed}: jittered obstacle overlaps the spawn"
                );
            }
        }

        /// The shrinker terminates and preserves validity + family kind
        /// with the noised-spawn check active.
        #[test]
        fn shrink_preserves_validity_under_noise(seed in 0u64..200) {
            let gen = ProcGen::default();
            let spec = gen.generate(seed);
            let kind = spec.family.kind();
            let minimized = shrink(&spec, |_| true);
            prop_assert_eq!(minimized.validity(), Ok(()));
            prop_assert_eq!(minimized.family.kind(), kind);
        }
    }
}
