//! Procedural scenario generation beyond the three fixed lots.
//!
//! [`ScenarioConfig`](crate::ScenarioConfig) draws seeded variations of the
//! paper's §V-B difficulty tiers on three *fixed* maps. This module composes
//! whole lots procedurally — lot dimensions, slot pose, obstacle counts and
//! placements, dynamic patrol routes and sensing-noise level are all sampled
//! from a seed — so the verification surface is not limited to layouts a
//! human wrote down.
//!
//! The pipeline has three stages:
//!
//! 1. [`ProcGen::generate`] samples a [`ProcScenario`]: a fully *concrete*
//!    declarative spec (every obstacle pose is explicit, no hidden RNG
//!    downstream). Candidates failing [`ProcScenario::validity`] are
//!    resampled, so every returned spec builds a solvable-looking episode.
//! 2. [`ProcScenario::build`] expands the spec into an ordinary
//!    [`Scenario`] accepted by the episode runner and every policy.
//! 3. [`shrink`] minimizes a spec that makes some property fail: it
//!    deterministically drops obstacles, zeroes noise and snaps geometry to
//!    defaults while the caller's predicate keeps failing — the smallest
//!    reproducing form is what lands in a triage report.
//!
//! # Example
//!
//! ```
//! use icoil_world::procedural::{ProcGen, ProcGenConfig};
//!
//! let gen = ProcGen::new(ProcGenConfig::default());
//! let spec = gen.generate(7);
//! assert!(spec.validity().is_ok());
//! let scenario = spec.build();
//! assert!(scenario.map.bounds().contains(scenario.start_state.pose.position()));
//! // Same seed, same scenario:
//! assert_eq!(gen.generate(7), spec);
//! ```

use crate::{
    DynamicRoute, NoiseConfig, Obstacle, ParkingMap, Scenario,
};
use icoil_geom::{Aabb, Obb, OccupancyGrid, Pose2, Vec2};
use icoil_vehicle::{VehicleParams, VehicleState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the goal slot is oriented relative to the lot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BayStyle {
    /// A reverse-in bay recessed into the right wall (MoCAM-style).
    ReverseIn,
    /// A curbside gap between two parked cars along the top edge,
    /// entered with the pull-past-and-reverse maneuver.
    ParallelCurb,
}

/// Sampling ranges for [`ProcGen`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcGenConfig {
    /// Lot width range (meters).
    pub lot_width: (f64, f64),
    /// Lot height range (meters).
    pub lot_height: (f64, f64),
    /// Static-obstacle count range (inclusive).
    pub n_static: (usize, usize),
    /// Dynamic-obstacle count range (inclusive).
    pub n_dynamic: (usize, usize),
    /// Whether parallel-curb slots are sampled alongside reverse-in bays.
    pub allow_parallel: bool,
    /// Probability that a scenario carries sensing noise; the level is
    /// then drawn uniformly in `(0, 1]` × the hard-tier profile.
    pub noise_prob: f64,
}

impl Default for ProcGenConfig {
    fn default() -> Self {
        ProcGenConfig {
            lot_width: (22.0, 36.0),
            lot_height: (13.0, 24.0),
            n_static: (0, 5),
            n_dynamic: (0, 2),
            allow_parallel: true,
            noise_prob: 0.4,
        }
    }
}

/// A concrete static-obstacle placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticSpec {
    /// Box center pose.
    pub pose: Pose2,
    /// Box length (meters).
    pub length: f64,
    /// Box width (meters).
    pub width: f64,
}

/// A concrete dynamic-obstacle patrol route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteSpec {
    /// Waypoints looped back and forth.
    pub waypoints: Vec<Vec2>,
    /// Patrol speed (m/s).
    pub speed: f64,
}

/// A fully-concrete procedural scenario spec.
///
/// Everything an episode needs is explicit, which is what makes
/// [`shrink`] possible: removing an entry from `statics` or `routes`
/// produces a strictly simpler scenario with no other change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcScenario {
    /// The seed that produced this spec (carried for triage reports).
    pub seed: u64,
    /// Lot width (meters).
    pub lot_w: f64,
    /// Lot height (meters).
    pub lot_h: f64,
    /// Slot style.
    pub bay_style: BayStyle,
    /// Slot position as a fraction of the usable wall span (0–1).
    pub bay_frac: f64,
    /// Static obstacles.
    pub statics: Vec<StaticSpec>,
    /// Dynamic obstacles.
    pub routes: Vec<RouteSpec>,
    /// Ego start pose (at rest).
    pub start: Pose2,
    /// Sensing-noise level: 0 = clean, 1 = the hard-tier profile.
    pub noise_scale: f64,
}

/// Why a candidate spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvalidScenario {
    /// Lot dimensions too small to hold spawn area and slot.
    LotTooSmall,
    /// The slot or goal pose falls outside the lot.
    SlotOutsideLot,
    /// The ego start footprint is outside the lot or overlaps an obstacle.
    SpawnBlocked,
    /// A static obstacle blocks the corridor in front of the slot.
    CorridorBlocked,
    /// A dynamic route leaves the lot interior.
    RouteOutsideLot,
    /// No drivable grid path connects the start to the slot approach.
    SlotUnreachable,
}

impl std::fmt::Display for InvalidScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InvalidScenario::LotTooSmall => "lot too small",
            InvalidScenario::SlotOutsideLot => "slot outside lot",
            InvalidScenario::SpawnBlocked => "spawn blocked",
            InvalidScenario::CorridorBlocked => "goal corridor blocked",
            InvalidScenario::RouteOutsideLot => "dynamic route outside lot",
            InvalidScenario::SlotUnreachable => "slot unreachable from start",
        };
        f.write_str(s)
    }
}

/// Smallest lot the generator will emit (width, height).
const MIN_LOT: (f64, f64) = (20.0, 11.0);
/// Bay geometry shared with the fixed maps.
const BAY_DEPTH: f64 = 5.4;
const BAY_WIDTH: f64 = 3.0;
const CURB_GAP: f64 = 7.0;
const CURB_LANE_INSET: f64 = 1.6;
/// Grid resolution of the reachability check (meters per cell).
const REACH_RESOLUTION: f64 = 0.5;

impl ProcScenario {
    /// The lot geometry this spec describes.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid ([`ProcScenario::validity`] guards
    /// every construction path).
    pub fn map(&self) -> ParkingMap {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(self.lot_w, self.lot_h));
        match self.bay_style {
            BayStyle::ReverseIn => {
                let y = bay_center_reverse_in(self.lot_h, self.bay_frac);
                let bay = Obb::from_pose(
                    Pose2::new(self.lot_w - BAY_DEPTH * 0.5 - 0.5, y, 0.0),
                    BAY_DEPTH,
                    BAY_WIDTH,
                );
                let goal = Pose2::new(bay.center.x + 1.3, y, std::f64::consts::PI);
                ParkingMap::new(bounds, spawn_region(self.lot_w, self.lot_h), goal, bay)
            }
            BayStyle::ParallelCurb => {
                let x = bay_center_parallel(self.lot_w, self.bay_frac);
                let y = self.lot_h - CURB_LANE_INSET;
                let bay = Obb::from_pose(Pose2::new(x, y, 0.0), CURB_GAP, 1.9);
                let goal = Pose2::new(x - 1.3, y, 0.0);
                ParkingMap::new(bounds, spawn_region(self.lot_w, self.lot_h), goal, bay)
            }
        }
    }

    /// Expands the spec into a runnable [`Scenario`].
    ///
    /// Obstacle ids are assigned positionally (statics first, then the
    /// parallel-curb framing cars, then dynamics), so equal specs build
    /// bit-identical scenarios.
    pub fn build(&self) -> Scenario {
        let map = self.map();
        let mut obstacles = Vec::new();
        for s in &self.statics {
            obstacles.push(Obstacle::fixed(obstacles.len(), s.pose, s.length, s.width));
        }
        if self.bay_style == BayStyle::ParallelCurb {
            // the two parked cars framing the curb gap
            let bay = map.bay();
            let y = bay.center.y;
            for dx in [-(CURB_GAP * 0.5 + 2.4), CURB_GAP * 0.5 + 2.4] {
                obstacles.push(Obstacle::fixed(
                    obstacles.len(),
                    Pose2::new(bay.center.x + dx, y, 0.0),
                    4.2,
                    1.8,
                ));
            }
        }
        for r in &self.routes {
            obstacles.push(Obstacle::moving(
                obstacles.len(),
                DynamicRoute::new(r.waypoints.clone(), r.speed).expect("valid route"),
                3.6,
                1.6,
            ));
        }
        let hard = NoiseConfig::hard();
        let k = self.noise_scale.clamp(0.0, 1.0);
        let noise = NoiseConfig {
            image_noise_std: hard.image_noise_std * k,
            pixel_dropout: hard.pixel_dropout * k,
            box_jitter: hard.box_jitter * k,
            heading_jitter: hard.heading_jitter * k,
            false_negative_rate: hard.false_negative_rate * k,
            phantom_rate: hard.phantom_rate * k,
        };
        Scenario {
            map,
            obstacles,
            start_state: VehicleState::at_rest(self.start),
            noise,
            vehicle_params: VehicleParams::default(),
            difficulty: crate::Difficulty::Normal,
            seed: self.seed,
            dt: 0.05,
        }
    }

    /// Checks that the spec describes a well-posed, plausibly-solvable
    /// episode: geometry inside the lot, clear spawn, clear slot corridor,
    /// in-bounds patrol routes and a drivable grid path from the start to
    /// the slot approach.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validity(&self) -> Result<(), InvalidScenario> {
        if self.lot_w < MIN_LOT.0 || self.lot_h < MIN_LOT.1 {
            return Err(InvalidScenario::LotTooSmall);
        }
        if !(0.0..=1.0).contains(&self.bay_frac) || !(0.0..=1.0).contains(&self.noise_scale) {
            return Err(InvalidScenario::SlotOutsideLot);
        }
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(self.lot_w, self.lot_h));
        let map = self.map();
        if !bounds.contains(map.goal_pose().position()) || !bounds.contains(map.bay().center) {
            return Err(InvalidScenario::SlotOutsideLot);
        }
        let params = VehicleParams::default();

        // every obstacle footprint at t = 0
        let scenario = self.build();
        let footprints: Vec<Obb> = scenario
            .obstacles
            .iter()
            .map(|o| o.footprint_at(0.0))
            .collect();

        // spawn: inside the lot, clear of everything with margin
        let fp = scenario.start_state.footprint(&params).inflated(0.3);
        if !map.contains_footprint(&fp) || footprints.iter().any(|o| o.intersects(&fp)) {
            return Err(InvalidScenario::SpawnBlocked);
        }

        // statics must stay out of the slot approach corridor
        let corridor = slot_corridor(&map, self.bay_style);
        let n_fixed = scenario.obstacles.iter().filter(|o| !o.is_dynamic()).count();
        // the parallel framing cars legitimately touch the corridor edge;
        // only the sampled statics are constrained
        for o in footprints.iter().take(self.statics.len().min(n_fixed)) {
            if corridor.intersects(&o.aabb()) {
                return Err(InvalidScenario::CorridorBlocked);
            }
        }

        // routes stay inside the lot (body inset by the vehicle half-diagonal)
        let inset = 2.0;
        let interior = Aabb::new(
            bounds.min + Vec2::new(inset, inset),
            bounds.max - Vec2::new(inset, inset),
        );
        for r in &self.routes {
            if r.waypoints.len() < 2 || r.speed <= 0.0 {
                return Err(InvalidScenario::RouteOutsideLot);
            }
            if r.waypoints.iter().any(|w| !interior.contains(*w)) {
                return Err(InvalidScenario::RouteOutsideLot);
            }
        }

        // coarse reachability: BFS over a grid with statics inflated by
        // the vehicle half-width; dynamics are ignored (they move away)
        let statics: Vec<Obb> = footprints
            .iter()
            .take(n_fixed)
            .copied()
            .collect();
        let approach = corridor.center();
        if !grid_reachable(&map, &statics, self.start.position(), approach, &params) {
            return Err(InvalidScenario::SlotUnreachable);
        }
        Ok(())
    }
}

fn spawn_region(lot_w: f64, lot_h: f64) -> Aabb {
    Aabb::new(
        Vec2::new(2.0, 3.0),
        Vec2::new((0.28 * lot_w).max(5.0), lot_h - 3.0),
    )
}

fn bay_center_reverse_in(lot_h: f64, frac: f64) -> f64 {
    let margin = BAY_WIDTH * 0.5 + 1.6;
    margin + frac * (lot_h - 2.0 * margin)
}

fn bay_center_parallel(lot_w: f64, frac: f64) -> f64 {
    // leave room for the framing cars on both sides
    let margin = CURB_GAP * 0.5 + 5.2;
    margin + frac * (lot_w - 2.0 * margin)
}

/// The region in front of the slot that must stay clear of sampled
/// statics so the approach maneuver has room.
fn slot_corridor(map: &ParkingMap, style: BayStyle) -> Aabb {
    let bay = map.bay().center;
    match style {
        BayStyle::ReverseIn => Aabb::new(
            Vec2::new(bay.x - 5.8, bay.y - 2.8),
            Vec2::new(map.bounds().max.x, bay.y + 2.8),
        ),
        BayStyle::ParallelCurb => Aabb::new(
            Vec2::new(bay.x - 8.5, bay.y - 4.5),
            Vec2::new(bay.x + 8.5, map.bounds().max.y),
        ),
    }
}

/// Coarse grid-BFS drivability check from `from` to `to`.
fn grid_reachable(
    map: &ParkingMap,
    statics: &[Obb],
    from: Vec2,
    to: Vec2,
    params: &VehicleParams,
) -> bool {
    let mut grid = OccupancyGrid::covering(&map.bounds(), REACH_RESOLUTION);
    let inflation = params.width * 0.5 + 0.1;
    let (cols, rows) = (grid.cols(), grid.rows());
    for r in 0..rows {
        for c in 0..cols {
            let cell = icoil_geom::Cell {
                col: c as i64,
                row: r as i64,
            };
            let p = grid.cell_to_world(cell);
            let blocked = statics
                .iter()
                .any(|o| o.distance_to_point(p) < inflation)
                || p.x < map.bounds().min.x + inflation
                || p.y < map.bounds().min.y + inflation
                || p.x > map.bounds().max.x - inflation
                || p.y > map.bounds().max.y - inflation;
            if blocked {
                grid.set(cell, 255);
            }
        }
    }
    let start = grid.world_to_cell(from);
    let goal = grid.world_to_cell(to);
    if !grid.in_bounds(start) || !grid.in_bounds(goal) {
        return false;
    }
    // the goal cell may fall inside the (recessed) bay clearance band;
    // accept reaching any cell within one resolution step of it
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; cols * rows];
    let idx = |c: icoil_geom::Cell| c.row as usize * cols + c.col as usize;
    if grid.is_occupied(start, 128) {
        return false;
    }
    queue.push_back(start);
    seen[idx(start)] = true;
    while let Some(cell) = queue.pop_front() {
        if (cell.col - goal.col).abs() <= 1 && (cell.row - goal.row).abs() <= 1 {
            return true;
        }
        for (dc, dr) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let next = icoil_geom::Cell {
                col: cell.col + dc,
                row: cell.row + dr,
            };
            if !grid.in_bounds(next) || grid.is_occupied(next, 128) {
                continue;
            }
            let i = idx(next);
            if !seen[i] {
                seen[i] = true;
                queue.push_back(next);
            }
        }
    }
    false
}

/// The seeded lot composer.
#[derive(Debug, Clone)]
pub struct ProcGen {
    config: ProcGenConfig,
}

impl ProcGen {
    /// Creates a generator with the given sampling ranges.
    pub fn new(config: ProcGenConfig) -> Self {
        ProcGen { config }
    }

    /// The sampling configuration.
    pub fn config(&self) -> &ProcGenConfig {
        &self.config
    }

    /// Generates a valid scenario spec for `seed`.
    ///
    /// Candidates are sampled from seeds derived from `(seed, attempt)`
    /// and the first one passing [`ProcScenario::validity`] is returned —
    /// deterministic for a given seed. After 64 failed attempts the
    /// obstacle-free fallback lot (always valid) is returned.
    pub fn generate(&self, seed: u64) -> ProcScenario {
        for attempt in 0..64u64 {
            let mut spec = self.sample(seed, attempt);
            if spec.validity().is_ok() {
                spec.seed = seed;
                return spec;
            }
        }
        let mut fallback = ProcScenario {
            seed,
            lot_w: 30.0,
            lot_h: 20.0,
            bay_style: BayStyle::ReverseIn,
            bay_frac: 0.5,
            statics: Vec::new(),
            routes: Vec::new(),
            start: Pose2::new(5.0, 10.0, 0.0),
            noise_scale: 0.0,
        };
        fallback.start = Pose2::new(5.0, bay_center_reverse_in(20.0, 0.5), 0.0);
        debug_assert!(fallback.validity().is_ok());
        fallback
    }

    /// One unchecked candidate draw.
    fn sample(&self, seed: u64, attempt: u64) -> ProcScenario {
        let c = &self.config;
        let mut rng = SmallRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9e3779b97f4a7c15));
        let lot_w = rng.gen_range(c.lot_width.0..c.lot_width.1);
        let lot_h = rng.gen_range(c.lot_height.0..c.lot_height.1);
        let bay_style = if c.allow_parallel && rng.gen_range(0.0..1.0) < 0.35 {
            BayStyle::ParallelCurb
        } else {
            BayStyle::ReverseIn
        };
        let bay_frac = rng.gen_range(0.0..1.0);
        // lot must be wide enough for the curb gap plus framing cars
        let bay_style = if bay_style == BayStyle::ParallelCurb && lot_w < 2.0 * (CURB_GAP * 0.5 + 5.2) + 1.0
        {
            BayStyle::ReverseIn
        } else {
            bay_style
        };

        let spec_wo_obstacles = ProcScenario {
            seed,
            lot_w,
            lot_h,
            bay_style,
            bay_frac,
            statics: Vec::new(),
            routes: Vec::new(),
            start: Pose2::new(0.0, 0.0, 0.0),
            noise_scale: 0.0,
        };
        let map = spec_wo_obstacles.map();
        let corridor = slot_corridor(&map, bay_style);
        let bounds = map.bounds();

        // statics in the mid-lot band, clear of the corridor and each other
        let n_static = rng.gen_range(c.n_static.0..=c.n_static.1);
        let band = Aabb::new(
            Vec2::new(bounds.min.x + 0.3 * lot_w, bounds.min.y + 2.0),
            Vec2::new(bounds.min.x + 0.78 * lot_w, bounds.max.y - 2.0),
        );
        let mut statics: Vec<StaticSpec> = Vec::new();
        let mut tries = 0;
        while statics.len() < n_static && tries < 400 {
            tries += 1;
            let pose = Pose2::new(
                rng.gen_range(band.min.x..band.max.x),
                rng.gen_range(band.min.y..band.max.y),
                rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            );
            let length = rng.gen_range(1.8..3.2);
            let width = rng.gen_range(1.8..3.2);
            let obb = Obb::from_pose(pose, length, width);
            if corridor.intersects(&obb.aabb()) {
                continue;
            }
            if statics
                .iter()
                .any(|s| Obb::from_pose(s.pose, s.length, s.width).distance_to_obb(&obb) < 2.4)
            {
                continue;
            }
            statics.push(StaticSpec { pose, length, width });
        }

        // dynamic patrols: straight two-point routes in the interior
        let n_dynamic = rng.gen_range(c.n_dynamic.0..=c.n_dynamic.1);
        let mut routes = Vec::new();
        for _ in 0..n_dynamic {
            let vertical = rng.gen_range(0.0..1.0) < 0.5;
            let (a, b) = if vertical {
                let x = rng.gen_range(bounds.min.x + 0.3 * lot_w..bounds.min.x + 0.7 * lot_w);
                (
                    Vec2::new(x, bounds.min.y + rng.gen_range(2.2..3.5)),
                    Vec2::new(x, bounds.max.y - rng.gen_range(2.2..3.5)),
                )
            } else {
                let y = rng.gen_range(bounds.min.y + 0.3 * lot_h..bounds.min.y + 0.7 * lot_h);
                (
                    Vec2::new(bounds.min.x + rng.gen_range(2.2..3.5), y),
                    Vec2::new(bounds.min.x + 0.75 * lot_w, y),
                )
            };
            routes.push(RouteSpec {
                waypoints: vec![a, b],
                speed: rng.gen_range(0.4..1.0),
            });
        }

        // start pose in the spawn strip, roughly facing the lot interior
        let spawn = spawn_region(lot_w, lot_h);
        let start = Pose2::new(
            rng.gen_range(spawn.min.x..spawn.max.x),
            rng.gen_range(spawn.min.y..spawn.max.y),
            rng.gen_range(-0.5..0.5),
        );

        let noise_scale = if rng.gen_range(0.0..1.0) < c.noise_prob {
            rng.gen_range(0.1..1.0)
        } else {
            0.0
        };

        ProcScenario {
            seed,
            lot_w,
            lot_h,
            bay_style,
            bay_frac,
            statics,
            routes,
            start,
            noise_scale,
        }
    }
}

impl Default for ProcGen {
    fn default() -> Self {
        ProcGen::new(ProcGenConfig::default())
    }
}

/// Deterministically minimizes a failing spec.
///
/// `still_failing` must return `true` while the property under test still
/// fails for a candidate. The shrinker greedily applies simplifications —
/// drop a dynamic route, drop a static obstacle, zero the noise, snap the
/// lot and slot to canonical values, center the start pose — keeping each
/// one only when the candidate is still *valid* and still failing, and
/// repeats until a fixpoint. The result reproduces the failure with the
/// fewest moving parts.
pub fn shrink<F>(spec: &ProcScenario, mut still_failing: F) -> ProcScenario
where
    F: FnMut(&ProcScenario) -> bool,
{
    let mut current = spec.clone();
    let accepts = |cand: &ProcScenario, f: &mut F| cand.validity().is_ok() && f(cand);
    for _pass in 0..8 {
        let mut changed = false;

        // drop dynamic routes, last first (stable indices)
        let mut i = current.routes.len();
        while i > 0 {
            i -= 1;
            let mut cand = current.clone();
            cand.routes.remove(i);
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // drop static obstacles
        let mut i = current.statics.len();
        while i > 0 {
            i -= 1;
            let mut cand = current.clone();
            cand.statics.remove(i);
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // zero the sensing noise
        if current.noise_scale > 0.0 {
            let mut cand = current.clone();
            cand.noise_scale = 0.0;
            if accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        // snap geometry to canonical values, one knob at a time
        let snaps: [fn(&mut ProcScenario); 4] = [
            |c| c.lot_w = 30.0,
            |c| c.lot_h = 20.0,
            |c| c.bay_frac = 0.5,
            |c| {
                let center = spawn_region(c.lot_w, c.lot_h).center();
                c.start = Pose2::new(center.x, center.y, 0.0);
            },
        ];
        for snap in snaps {
            let mut cand = current.clone();
            snap(&mut cand);
            if cand != current && accepts(&cand, &mut still_failing) {
                current = cand;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let gen = ProcGen::default();
        for seed in 0..40 {
            let a = gen.generate(seed);
            let b = gen.generate(seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.validity(), Ok(()), "seed {seed}");
            assert_eq!(a.build(), b.build(), "seed {seed}");
        }
    }

    #[test]
    fn seeds_explore_the_space() {
        let gen = ProcGen::default();
        let specs: Vec<ProcScenario> = (0..60).map(|s| gen.generate(s)).collect();
        let widths: std::collections::BTreeSet<u64> =
            specs.iter().map(|s| s.lot_w as u64).collect();
        assert!(widths.len() > 5, "lot widths barely vary: {widths:?}");
        assert!(specs.iter().any(|s| s.bay_style == BayStyle::ParallelCurb));
        assert!(specs.iter().any(|s| s.bay_style == BayStyle::ReverseIn));
        assert!(specs.iter().any(|s| !s.routes.is_empty()));
        assert!(specs.iter().any(|s| s.noise_scale > 0.0));
        assert!(specs.iter().any(|s| s.statics.len() >= 3));
    }

    #[test]
    fn built_scenarios_run_in_the_world() {
        let gen = ProcGen::default();
        for seed in 0..10 {
            let scenario = gen.generate(seed).build();
            let mut world = crate::World::new(scenario);
            assert!(!world.in_collision(), "seed {seed} spawns in collision");
            for _ in 0..20 {
                world.step(&icoil_vehicle::Action::forward(0.2, 0.0));
            }
        }
    }

    #[test]
    fn validity_rejects_blocked_spawn() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(1);
        spec.statics.push(StaticSpec {
            pose: spec.start,
            length: 3.0,
            width: 3.0,
        });
        assert_eq!(spec.validity(), Err(InvalidScenario::SpawnBlocked));
    }

    #[test]
    fn validity_rejects_walled_off_slot() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(2);
        spec.statics.clear();
        spec.routes.clear();
        assert_eq!(spec.validity(), Ok(()));
        // wall the lot in half between spawn and slot
        let map = spec.map();
        let x = spec.lot_w * 0.5;
        let mut y = 1.0;
        while y < spec.lot_h {
            spec.statics.push(StaticSpec {
                pose: Pose2::new(x, y, 0.0),
                length: 1.5,
                width: 3.4,
            });
            y += 3.0;
        }
        let r = spec.validity();
        assert!(
            r == Err(InvalidScenario::SlotUnreachable)
                || r == Err(InvalidScenario::CorridorBlocked)
                || r == Err(InvalidScenario::SpawnBlocked),
            "a bisected lot must be rejected, got {r:?} (map bounds {:?})",
            map.bounds()
        );
    }

    #[test]
    fn shrink_minimizes_to_smallest_failing_form() {
        let gen = ProcGen::default();
        // find a busy spec: several statics plus at least one route
        let spec = (0..200)
            .map(|s| gen.generate(s))
            .find(|s| s.statics.len() >= 3 && !s.routes.is_empty() && s.noise_scale > 0.0)
            .expect("a busy spec exists");
        // property that "fails" whenever any dynamic obstacle is present
        let minimized = shrink(&spec, |s| !s.routes.is_empty());
        assert_eq!(minimized.routes.len(), 1, "exactly one route remains");
        assert!(minimized.statics.is_empty(), "statics dropped");
        assert_eq!(minimized.noise_scale, 0.0, "noise dropped");
        assert_eq!(minimized.validity(), Ok(()));
        assert_eq!(minimized.lot_w, 30.0);
        assert_eq!(minimized.lot_h, 20.0);
    }

    #[test]
    fn shrink_keeps_spec_intact_when_nothing_helps() {
        let gen = ProcGen::default();
        let spec = gen.generate(3);
        // a predicate failing only for the exact original spec
        let orig = spec.clone();
        let out = shrink(&spec, |s| *s == orig);
        assert_eq!(out, orig);
    }

    #[test]
    fn parallel_curb_specs_have_framing_cars() {
        let gen = ProcGen::default();
        let spec = (0..100)
            .map(|s| gen.generate(s))
            .find(|s| s.bay_style == BayStyle::ParallelCurb)
            .expect("a curb spec exists");
        let scenario = spec.build();
        let fixed = scenario
            .obstacles
            .iter()
            .filter(|o| !o.is_dynamic())
            .count();
        assert_eq!(fixed, spec.statics.len() + 2);
        let goal = scenario.map.goal_pose();
        for o in &scenario.obstacles {
            assert!(!o.footprint_at(0.0).contains(goal.position()));
        }
    }

    #[test]
    fn noise_scale_interpolates_the_hard_profile() {
        let gen = ProcGen::default();
        let mut spec = gen.generate(0);
        spec.noise_scale = 0.0;
        assert!(spec.build().noise.is_none());
        spec.noise_scale = 1.0;
        assert_eq!(spec.build().noise, NoiseConfig::hard());
        spec.noise_scale = 0.5;
        let n = spec.build().noise;
        assert!((n.box_jitter - NoiseConfig::hard().box_jitter * 0.5).abs() < 1e-12);
    }
}
