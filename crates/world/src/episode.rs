//! The policy interface and episode runner.
//!
//! Policies are the "ROS nodes" of the paper collapsed into a trait: they
//! receive an [`Observation`] of the world each frame and return a
//! [`Decision`] (an action plus optional HSA telemetry). The runner
//! terminates on success, collision or timeout and records a per-frame
//! [`Trace`] from which every figure of the paper is regenerated.

use crate::World;
use icoil_geom::{Obb, Pose2};
use icoil_vehicle::Action;
use serde::{Deserialize, Serialize};

/// Which iCOIL working mode produced an action (for trace coloring and
/// the Fig. 6/7 mode-switching plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModeTag {
    /// Imitation-learning mode.
    Il,
    /// Constrained-optimization mode.
    Co,
}

impl std::fmt::Display for ModeTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeTag::Il => write!(f, "IL"),
            ModeTag::Co => write!(f, "CO"),
        }
    }
}

/// What the policy sees each frame: a read-only view of the world.
///
/// Perception-based policies (in `icoil-core`) derive BEV images and noisy
/// boxes from this ground truth via `icoil-perception`; the runner itself
/// never exposes noise — noise is a property of sensing, not of the world.
pub struct Observation<'a> {
    world: &'a World,
}

impl<'a> Observation<'a> {
    /// Wraps a world into an observation.
    pub fn new(world: &'a World) -> Self {
        Observation { world }
    }

    /// The underlying world (full ground truth).
    pub fn world(&self) -> &'a World {
        self.world
    }

    /// Current ego state.
    pub fn ego(&self) -> icoil_vehicle::VehicleState {
        *self.world.ego()
    }

    /// Ground-truth obstacle footprints at the current time.
    pub fn obstacles(&self) -> Vec<Obb> {
        self.world.obstacle_footprints()
    }

    /// The goal pose.
    pub fn goal(&self) -> Pose2 {
        self.world.map().goal_pose()
    }

    /// Simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.world.time()
    }

    /// Frame index.
    pub fn frame(&self) -> usize {
        self.world.frame()
    }

    /// Seconds per frame.
    pub fn dt(&self) -> f64 {
        self.world.dt()
    }
}

/// A policy output: the action plus optional diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The control command to execute this frame.
    pub action: Action,
    /// Which mode produced the action (hybrid policies only).
    pub mode: Option<ModeTag>,
    /// HSA scenario uncertainty `U_i`, if computed.
    pub uncertainty: Option<f64>,
    /// HSA scenario complexity `C_i`, if computed.
    pub complexity: Option<f64>,
}

impl Decision {
    /// A decision carrying only an action.
    pub fn plain(action: Action) -> Self {
        Decision {
            action,
            mode: None,
            uncertainty: None,
            complexity: None,
        }
    }

    /// A decision tagged with the producing mode.
    pub fn tagged(action: Action, mode: ModeTag) -> Self {
        Decision {
            action,
            mode: Some(mode),
            uncertainty: None,
            complexity: None,
        }
    }
}

/// A driving policy: the inference mapping `f: X → A` of §III.
pub trait Policy {
    /// Chooses the action for the current frame.
    fn decide(&mut self, obs: &Observation) -> Decision;

    /// Called once when an episode starts, before the first decision.
    ///
    /// Policies with per-episode state (reference paths, HSA windows)
    /// reset themselves here. The default does nothing.
    fn begin_episode(&mut self, _obs: &Observation) {}

    /// The policy's telemetry recorder, when it keeps one.
    ///
    /// Instrumented policies expose their [`icoil_telemetry::Recorder`]
    /// here so the evaluation harness can install trace sinks, record
    /// episode summaries and drain per-episode [`icoil_telemetry::Metrics`]
    /// for merging across workers. The default (`None`) keeps plain
    /// policies—and every existing implementor—unchanged.
    fn recorder_mut(&mut self) -> Option<&mut icoil_telemetry::Recorder> {
        None
    }
}

/// Per-frame record of an episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFrame {
    /// Frame index.
    pub frame: usize,
    /// Simulation time (seconds).
    pub time: f64,
    /// Ego rear-axle pose.
    pub pose: Pose2,
    /// Signed ego speed (m/s).
    pub velocity: f64,
    /// The executed action.
    pub action: Action,
    /// Producing mode, if the policy reported one.
    pub mode: Option<ModeTag>,
    /// HSA uncertainty, if reported.
    pub uncertainty: Option<f64>,
    /// HSA complexity, if reported.
    pub complexity: Option<f64>,
}

/// The full per-frame history of an episode.
pub type Trace = Vec<TraceFrame>;

/// How an episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Parked within tolerance.
    Success,
    /// Ego hit an obstacle or left the lot.
    Collision,
    /// The time budget ran out.
    Timeout,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Success => write!(f, "success"),
            Outcome::Collision => write!(f, "collision"),
            Outcome::Timeout => write!(f, "timeout"),
        }
    }
}

/// Episode-runner parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Wall-clock budget in simulated seconds (the paper fails a task that
    /// "cannot reach the goal within a given time").
    pub max_time: f64,
    /// Whether to keep the per-frame trace (figures need it; Table II
    /// statistics do not).
    pub record_trace: bool,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            max_time: 60.0,
            record_trace: true,
        }
    }
}

/// Result of [`run_episode`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeResult {
    /// How the episode ended.
    pub outcome: Outcome,
    /// What was hit, when the outcome is a collision.
    pub collision_cause: Option<crate::CollisionCause>,
    /// Time at termination (equals parking time on success).
    pub parking_time: f64,
    /// Number of simulated frames.
    pub frames: usize,
    /// Length of the driven path (meters).
    pub path_length: f64,
    /// Per-frame history (empty when recording was disabled).
    pub trace: Trace,
}

impl EpisodeResult {
    /// Returns `true` when the episode parked successfully.
    pub fn is_success(&self) -> bool {
        self.outcome == Outcome::Success
    }
}

/// Runs one episode of `policy` in `world` until success, collision or
/// timeout. The world is left at its terminal state (call
/// [`World::reset`] to reuse it).
pub fn run_episode(
    world: &mut World,
    policy: &mut dyn Policy,
    config: &EpisodeConfig,
) -> EpisodeResult {
    let mut trace: Trace = Vec::new();
    let mut path_length = 0.0;
    let mut last_pos = world.ego().pose.position();

    policy.begin_episode(&Observation::new(world));

    // A scenario that spawns in collision fails immediately.
    if let Some(cause) = world.collision_cause() {
        return EpisodeResult {
            outcome: Outcome::Collision,
            collision_cause: Some(cause),
            parking_time: 0.0,
            frames: 0,
            path_length: 0.0,
            trace,
        };
    }

    loop {
        let decision = policy.decide(&Observation::new(world));
        if config.record_trace {
            trace.push(TraceFrame {
                frame: world.frame(),
                time: world.time(),
                pose: world.ego().pose,
                velocity: world.ego().velocity,
                action: decision.action,
                mode: decision.mode,
                uncertainty: decision.uncertainty,
                complexity: decision.complexity,
            });
        }
        world.step(&decision.action);
        let pos = world.ego().pose.position();
        path_length += pos.distance(last_pos);
        last_pos = pos;

        if let Some(cause) = world.collision_cause() {
            return EpisodeResult {
                outcome: Outcome::Collision,
                collision_cause: Some(cause),
                parking_time: world.time(),
                frames: world.frame(),
                path_length,
                trace,
            };
        }
        if world.at_goal() {
            return EpisodeResult {
                outcome: Outcome::Success,
                collision_cause: None,
                parking_time: world.time(),
                frames: world.frame(),
                path_length,
                trace,
            };
        }
        if world.time() >= config.max_time {
            return EpisodeResult {
                outcome: Outcome::Timeout,
                collision_cause: None,
                parking_time: world.time(),
                frames: world.frame(),
                path_length,
                trace,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Difficulty, ScenarioConfig};
    use icoil_vehicle::VehicleState;

    struct Constant(Action);
    impl Policy for Constant {
        fn decide(&mut self, _obs: &Observation) -> Decision {
            Decision::plain(self.0)
        }
    }

    fn easy_world(seed: u64) -> World {
        World::new(ScenarioConfig::new(Difficulty::Easy, seed).build())
    }

    #[test]
    fn braking_policy_times_out() {
        let mut w = easy_world(1);
        let mut p = Constant(Action::full_brake());
        let r = run_episode(
            &mut w,
            &mut p,
            &EpisodeConfig {
                max_time: 1.0,
                record_trace: true,
            },
        );
        assert_eq!(r.outcome, Outcome::Timeout);
        assert!(!r.is_success());
        assert_eq!(r.trace.len(), r.frames);
        assert!(r.path_length < 1e-9);
    }

    #[test]
    fn driving_forward_eventually_collides() {
        let mut w = easy_world(1);
        let mut p = Constant(Action::forward(1.0, 0.0));
        let r = run_episode(&mut w, &mut p, &EpisodeConfig::default());
        assert_eq!(r.outcome, Outcome::Collision);
        assert!(r.path_length > 1.0);
    }

    #[test]
    fn spawning_at_goal_succeeds_quickly() {
        let mut w = easy_world(1);
        let goal = w.map().goal_pose();
        w.set_ego(VehicleState::at_rest(goal));
        let mut p = Constant(Action::full_brake());
        let r = run_episode(&mut w, &mut p, &EpisodeConfig::default());
        assert_eq!(r.outcome, Outcome::Success);
        assert!(r.parking_time < 1.0);
    }

    #[test]
    fn spawning_in_collision_fails_immediately() {
        let mut w = easy_world(1);
        // drop the ego onto the first static obstacle
        let obstacle_pose = w.scenario().obstacles[0].pose;
        w.set_ego(VehicleState::at_rest(obstacle_pose));
        let mut p = Constant(Action::full_brake());
        let r = run_episode(&mut w, &mut p, &EpisodeConfig::default());
        assert_eq!(r.outcome, Outcome::Collision);
        assert_eq!(r.frames, 0);
    }

    #[test]
    fn trace_disabled_is_empty() {
        let mut w = easy_world(1);
        let mut p = Constant(Action::full_brake());
        let r = run_episode(
            &mut w,
            &mut p,
            &EpisodeConfig {
                max_time: 0.5,
                record_trace: false,
            },
        );
        assert!(r.trace.is_empty());
        assert!(r.frames > 0);
    }

    #[test]
    fn trace_times_are_monotonic() {
        let mut w = easy_world(2);
        let mut p = Constant(Action::forward(0.5, 0.3));
        let r = run_episode(
            &mut w,
            &mut p,
            &EpisodeConfig {
                max_time: 2.0,
                record_trace: true,
            },
        );
        for pair in r.trace.windows(2) {
            assert!(pair[1].time > pair[0].time);
            assert_eq!(pair[1].frame, pair[0].frame + 1);
        }
    }

    #[test]
    fn trace_serializes() {
        let mut w = easy_world(3);
        let mut p = Constant(Action::forward(0.5, 0.0));
        let r = run_episode(
            &mut w,
            &mut p,
            &EpisodeConfig {
                max_time: 1.0,
                record_trace: true,
            },
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: EpisodeResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
