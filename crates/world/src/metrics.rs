//! Aggregation of episode results into the paper's metrics.

use crate::episode::EpisodeResult;
use serde::{Deserialize, Serialize};

/// Parking-time statistics over the *successful* episodes of a batch,
/// plus the success ratio over all episodes — exactly the columns of
/// Table II (Average / Max / Min / Success Ratio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParkingStats {
    /// Number of episodes aggregated.
    pub episodes: usize,
    /// Number of successful episodes.
    pub successes: usize,
    /// Mean parking time over successes (seconds); `NaN` when none.
    pub avg_time: f64,
    /// Maximum parking time over successes (seconds); `NaN` when none.
    pub max_time: f64,
    /// Minimum parking time over successes (seconds); `NaN` when none.
    pub min_time: f64,
    /// Standard deviation of parking time over successes; `NaN` when none.
    pub std_time: f64,
}

impl ParkingStats {
    /// Aggregates a batch of episode results.
    pub fn from_results<'a, I: IntoIterator<Item = &'a EpisodeResult>>(results: I) -> Self {
        let mut episodes = 0;
        let mut times = Vec::new();
        for r in results {
            episodes += 1;
            if r.is_success() {
                times.push(r.parking_time);
            }
        }
        let successes = times.len();
        if times.is_empty() {
            return ParkingStats {
                episodes,
                successes,
                avg_time: f64::NAN,
                max_time: f64::NAN,
                min_time: f64::NAN,
                std_time: f64::NAN,
            };
        }
        let avg = times.iter().sum::<f64>() / successes as f64;
        let var = times.iter().map(|t| (t - avg) * (t - avg)).sum::<f64>() / successes as f64;
        ParkingStats {
            episodes,
            successes,
            avg_time: avg,
            max_time: times.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            min_time: times.iter().cloned().fold(f64::INFINITY, f64::min),
            std_time: var.sqrt(),
        }
    }

    /// Success ratio in `[0, 1]`; `NaN` for an empty batch.
    pub fn success_ratio(&self) -> f64 {
        if self.episodes == 0 {
            f64::NAN
        } else {
            self.successes as f64 / self.episodes as f64
        }
    }
}

impl std::fmt::Display for ParkingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "avg {:.2}s  max {:.2}s  min {:.2}s  success {:.0}% ({}/{})",
            self.avg_time,
            self.max_time,
            self.min_time,
            self.success_ratio() * 100.0,
            self.successes,
            self.episodes
        )
    }
}

/// Convenience: success ratio of a result slice.
pub fn success_rate(results: &[EpisodeResult]) -> f64 {
    ParkingStats::from_results(results).success_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::Outcome;

    fn result(outcome: Outcome, t: f64) -> EpisodeResult {
        EpisodeResult {
            outcome,
            collision_cause: None,
            parking_time: t,
            frames: (t / 0.05) as usize,
            path_length: t,
            trace: Vec::new(),
        }
    }

    #[test]
    fn aggregates_only_successes() {
        let rs = vec![
            result(Outcome::Success, 20.0),
            result(Outcome::Success, 30.0),
            result(Outcome::Collision, 5.0),
            result(Outcome::Timeout, 60.0),
        ];
        let s = ParkingStats::from_results(&rs);
        assert_eq!(s.episodes, 4);
        assert_eq!(s.successes, 2);
        assert!((s.avg_time - 25.0).abs() < 1e-12);
        assert_eq!(s.max_time, 30.0);
        assert_eq!(s.min_time, 20.0);
        assert!((s.std_time - 5.0).abs() < 1e-12);
        assert!((s.success_ratio() - 0.5).abs() < 1e-12);
        assert!((success_rate(&rs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_failed_batches() {
        let s = ParkingStats::from_results(&[]);
        assert!(s.success_ratio().is_nan());
        let rs = vec![result(Outcome::Collision, 3.0)];
        let s = ParkingStats::from_results(&rs);
        assert_eq!(s.success_ratio(), 0.0);
        assert!(s.avg_time.is_nan());
    }

    #[test]
    fn display_is_nonempty() {
        let rs = vec![result(Outcome::Success, 20.0)];
        assert!(!ParkingStats::from_results(&rs).to_string().is_empty());
    }
}
