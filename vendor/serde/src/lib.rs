//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! value-tree serialization core: [`Serialize`] lowers a type to a [`Value`],
//! [`Deserialize`] rebuilds it, and `serde_json` renders [`Value`] to and
//! from JSON text. The `#[derive(Serialize, Deserialize)]` macros come from
//! the companion `serde_derive` crate and support the shapes this workspace
//! uses: named-field structs, unit enums, and newtype-variant enums, with
//! `#[serde(skip)]` and `#[serde(skip, default = "path")]` field attributes.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and text formats like `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A double-precision float.
    F64(f64),
    /// A single-precision float (kept distinct so its shortest-roundtrip
    /// decimal form is emitted, not the widened `f64` one).
    F32(f32),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::F32(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting integral numeric variants.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, accepting integral numeric variants.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a type to a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a type from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch met.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! int_impl {
    ($t:ty, $as:ident, $variant:ident, $cast:ty) => {
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .$as()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    };
}

int_impl!(usize, as_u64, U64, u64);
int_impl!(u64, as_u64, U64, u64);
int_impl!(u32, as_u64, U64, u64);
int_impl!(u16, as_u64, U64, u64);
int_impl!(u8, as_u64, U64, u64);
int_impl!(isize, as_i64, I64, i64);
int_impl!(i64, as_i64, I64, i64);
int_impl!(i32, as_i64, I64, i64);
int_impl!(i16, as_i64, I64, i64);
int_impl!(i8, as_i64, I64, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(DeError::expected("array of matching length", "array"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "VecDeque"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("pair", "tuple"))?;
        if seq.len() != 2 {
            return Err(DeError::expected("2-element sequence", "tuple"));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn container_roundtrips() {
        let dq: std::collections::VecDeque<f64> = [1.5, -0.0, f64::INFINITY].into();
        let back = std::collections::VecDeque::<f64>::from_value(&dq.to_value()).unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.iter().zip(&dq).all(|(a, b)| a.to_bits() == b.to_bits()));
        let boxed: Box<u64> = Box::new(9);
        assert_eq!(*Box::<u64>::from_value(&boxed.to_value()).unwrap(), 9);
    }

    #[test]
    fn mismatches_error() {
        assert!(bool::from_value(&Value::F64(1.0)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
