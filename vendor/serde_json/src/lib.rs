//! Offline vendored JSON serialization for the vendored `serde` crate.
//!
//! Provides [`to_string`] / [`from_str`] over `serde::Value` trees. Floats
//! are emitted with Rust's shortest-roundtrip `Display`, so `f64`/`f32`
//! values survive a text round trip exactly (the behaviour the upstream
//! `float_roundtrip` feature guarantees); non-finite floats serialize as
//! `null`, matching upstream.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Serialize};
pub use serde::Value;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for the value shapes this workspace produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text and rebuilds `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a value-shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- emitter

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let mut buf = itoa_buf();
            out.push_str(write_display(&mut buf, n));
        }
        Value::U64(n) => {
            let mut buf = itoa_buf();
            out.push_str(write_display(&mut buf, n));
        }
        Value::F64(x) => emit_float(*x, out),
        Value::F32(x) => {
            if x.is_finite() {
                let mut buf = itoa_buf();
                out.push_str(write_display(&mut buf, x));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_str(k, out);
                out.push(':');
                emit(item, out);
            }
            out.push('}');
        }
    }
}

fn emit_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let mut buf = itoa_buf();
        out.push_str(write_display(&mut buf, &x));
    } else {
        out.push_str("null");
    }
}

/// Small reusable display buffer (avoids a `String` per number).
fn itoa_buf() -> String {
    String::with_capacity(24)
}

fn write_display<'a, T: std::fmt::Display>(buf: &'a mut String, v: &T) -> &'a str {
    use std::fmt::Write;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // high surrogate; expect a low surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone surrogate in string"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::new("short \\u escape"))?;
            self.pos += 1;
            cp = cp * 16
                + (b as char)
                    .to_digit(16)
                    .ok_or_else(|| Error::new("bad hex digit in \\u escape"))?;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, -2.5e-17, 1e300, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
        for &x in &[0.1f32, 1.0f32 / 3.0, -7.25e-12f32] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he said \"hi\"\\\n\ttab\u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let uni: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(uni, "\u{1F600}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }
}
