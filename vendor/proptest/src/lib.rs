//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of `proptest` the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(..)]` header), [`Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Cases are generated from a seed derived deterministically from the test
//! name and case index, so failures reproduce across runs. There is no
//! shrinking: a failing case reports its values via the panic message of the
//! assertion that tripped.
//!
//! # Failure persistence
//!
//! Like upstream proptest, failing cases persist to a regression file next
//! to the test source (`tests/proptests.rs` →
//! `tests/proptests.proptest-regressions`) and are replayed *before* the
//! random cases on every subsequent run — check these files in so every
//! clone replays known-bad cases first. The vendored entry format is
//! `cc <test_name> <case_index>`; legacy upstream entries
//! (`cc <hex-hash> # shrinks to ...`) cannot be replayed by this engine
//! (they seed a different RNG) and are skipped, but keep them: their
//! comments document the historical failure values. See [`persistence`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within a test case (produced by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name and case index, so every run
    /// of the suite sees the same case sequence.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy chosen from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `f` (resamples, bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    };
}
float_range_strategy!(f64);
float_range_strategy!(f32);

macro_rules! int_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.index(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.index(span + 1) as $t)
            }
        }
    };
}
int_range_strategy!(usize);
int_range_strategy!(u64);
int_range_strategy!(u32);
int_range_strategy!(i64);
int_range_strategy!(i32);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.index(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// The strategy of vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len() as u64) as usize].clone()
        }
    }

    /// The strategy picking uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Sampling panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Failure persistence: regression files recording failing case indices.
pub mod persistence {
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// The regression file of one test source file.
    ///
    /// Entries are `cc <test_name> <case_index>` lines; `#` lines and
    /// unparseable entries (e.g. upstream proptest's `cc <hex-hash>`
    /// format) are ignored when replaying.
    #[derive(Debug, Clone)]
    pub struct Persistence {
        path: PathBuf,
    }

    impl Persistence {
        /// The persistence store for a test source file, placed next to
        /// it: `<manifest_dir>/<source_dir_name>/<stem>.proptest-regressions`.
        ///
        /// Call as `Persistence::for_source(env!("CARGO_MANIFEST_DIR"), file!())`
        /// so both paths resolve in the *invoking* crate.
        pub fn for_source(manifest_dir: &str, source_file: &str) -> Self {
            let src = Path::new(source_file);
            let stem = src
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "proptests".to_string());
            let mut path = PathBuf::from(manifest_dir);
            if let Some(dir) = src.parent().and_then(|p| p.file_name()) {
                path.push(dir);
            }
            path.push(format!("{stem}.proptest-regressions"));
            Persistence { path }
        }

        /// Where this store reads and writes.
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// The recorded failing case indices for `test_name`, in file
        /// order. Missing or unreadable files are simply empty.
        pub fn recorded(&self, test_name: &str) -> Vec<u32> {
            let Ok(text) = std::fs::read_to_string(&self.path) else {
                return Vec::new();
            };
            let mut cases = Vec::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut parts = line.split_whitespace();
                if parts.next() != Some("cc") {
                    continue;
                }
                if parts.next() != Some(test_name) {
                    continue;
                }
                if let Some(case) = parts.next().and_then(|v| v.parse().ok()) {
                    cases.push(case);
                }
            }
            cases
        }

        /// Appends a failing case for `test_name`, creating the file
        /// (with its explanatory header) on first use. Already-recorded
        /// cases and I/O errors are silently skipped — persistence must
        /// never turn a test failure into a different failure.
        pub fn record(&self, test_name: &str, case: u32) {
            if self.recorded(test_name).contains(&case) {
                return;
            }
            let mut text = std::fs::read_to_string(&self.path)
                .unwrap_or_else(|_| HEADER.to_string());
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&format!("cc {test_name} {case}\n"));
            if let Some(dir) = self.path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&self.path, text);
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal test running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let persistence = $crate::persistence::Persistence::for_source(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                let run_case = |case: u32| -> ::std::result::Result<(), $crate::TestCaseError> {
                    let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    (|| { $body ::std::result::Result::Ok(()) })()
                };
                // replay recorded regressions before any novel case
                for case in persistence.recorded(stringify!($name)) {
                    if let ::std::result::Result::Err(e) = run_case(case) {
                        panic!(
                            "persisted regression case {case} of {} ({}): {e}",
                            stringify!($name),
                            persistence.path().display(),
                        );
                    }
                }
                for case in 0..cfg.cases {
                    if let ::std::result::Result::Err(e) = run_case(case) {
                        persistence.record(stringify!($name), case);
                        panic!(
                            "case {case} of {} (recorded in {}): {e}",
                            stringify!($name),
                            persistence.path().display(),
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing only the current case's
/// closure (reported with the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..10.0, 1usize..5).prop_map(|(x, n)| (x * 2.0, n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -3.0f64..3.0, n in 2usize..6, flag in any::<bool>()) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((2..6).contains(&n));
            let _ = flag;
        }

        #[test]
        fn destructuring_and_map((x, n) in arb_pair()) {
            prop_assert!((0.0..20.0).contains(&x));
            prop_assert!(n >= 1);
        }

        #[test]
        fn flat_map_and_vec(v in (2usize..8).prop_flat_map(|n| prop::collection::vec(0.5f64..5.0, n))) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.5..5.0).contains(&x)));
        }

        #[test]
        fn eq_macro_works(n in 0u64..100) {
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn persistence_path_sits_next_to_the_test_source() {
        let p = crate::persistence::Persistence::for_source(
            "/work/crates/geom",
            "crates/geom/tests/proptests.rs",
        );
        assert_eq!(
            p.path(),
            std::path::Path::new("/work/crates/geom/tests/proptests.proptest-regressions"),
        );
    }

    #[test]
    fn persistence_records_and_replays_cases() {
        let dir = std::env::temp_dir().join(format!("proptest-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = crate::persistence::Persistence::for_source(
            dir.to_str().unwrap(),
            "tests/proptests.rs",
        );
        assert!(p.recorded("some_test").is_empty());
        p.record("some_test", 17);
        p.record("some_test", 17); // idempotent
        p.record("some_test", 3);
        p.record("other_test", 9);
        assert_eq!(p.recorded("some_test"), vec![17, 3]);
        assert_eq!(p.recorded("other_test"), vec![9]);
        // the header explains the file to people finding it in review
        let text = std::fs::read_to_string(p.path()).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_skips_legacy_hash_entries() {
        let dir = std::env::temp_dir().join(format!("proptest-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        std::fs::write(
            dir.join("tests/proptests.proptest-regressions"),
            "# header\ncc dd357af8dc514ed7c221cae9713557561a45ec1cd3475bc3fa700443f0cef94c # shrinks to pts = []\ncc my_test 5\n",
        )
        .unwrap();
        let p = crate::persistence::Persistence::for_source(
            dir.to_str().unwrap(),
            "tests/proptests.rs",
        );
        // the upstream-format hash line is tolerated but not replayed
        assert_eq!(p.recorded("my_test"), vec![5]);
        assert!(p.recorded("dd357af8dc514ed7c221cae9713557561a45ec1cd3475bc3fa700443f0cef94c").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
