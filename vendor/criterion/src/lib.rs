//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock harness with the same surface the workspace benches
//! use: `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark is auto-calibrated to a per-sample time budget and
//! reports min / mean / max over the samples.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Target wall-clock spent per sample after calibration.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // calibration pass: how many iterations fill the sample budget?
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{id:<28} time: [{} {} {}]  ({} samples x {iters} iters)",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max),
            times.len(),
        );
        self
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Times a closure for a driver-chosen number of iterations.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs and times `f` for the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); accept and
            // ignore them, but honor a filter substring if one is given.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
        assert!(calls > 0);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
