//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! The build environment has no crates.io access (no `syn`/`quote`), so the
//! item is parsed directly from the token stream and the generated impls are
//! emitted as source strings. Supported shapes — the ones this workspace
//! uses — are named-field structs, unit enums, and enums mixing unit and
//! newtype variants, with `#[serde(skip)]`,
//! `#[serde(skip, default = "path")]` and bare `#[serde(default)]`
//! (missing field deserializes to `Default::default()`) field attributes.
//! Generic types are rejected with a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    /// `None` = no default; `Some(None)` = bare `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    newtype: bool,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => serialize_struct(&item.name, fields),
        Shape::Enum(variants) => serialize_enum(&item.name, variants),
    };
    let code = format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n{}\n    }}\n}}\n",
        item.name, body
    );
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => deserialize_struct(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    let code = format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{}\n    }}\n}}\n",
        item.name, body
    );
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + [...]
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1;
                // `pub(crate)`-style restriction group
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    };
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name after `{kind}`, found {other}"),
    };
    i += 1;
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>()
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic type `{name}`")
            }
            Some(_) => i += 1,
            None => panic!("vendored serde_derive: `{name}` has no braced body (tuple/unit types unsupported)"),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct(parse_fields(&body))
    } else {
        Shape::Enum(parse_variants(&body))
    };
    Item { name, shape }
}

/// Parses `#[serde(...)]` content out of one attribute's bracket group.
fn parse_serde_attr(
    group: &proc_macro::Group,
    skip: &mut bool,
    default: &mut Option<Option<String>>,
) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                *skip = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // `default = "path"` or bare `default`
                let has_eq = matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                if has_eq {
                    if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                        let raw = lit.to_string();
                        *default = Some(Some(raw.trim_matches('"').to_string()));
                    }
                    j += 3;
                } else {
                    *default = Some(None);
                    j += 1;
                }
            }
            _ => j += 1,
        }
    }
}

fn parse_fields(body: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let mut skip = false;
        let mut default = None;
        while let TokenTree::Punct(p) = &body[i] {
            if p.as_char() != '#' {
                break;
            }
            if let TokenTree::Group(g) = &body[i + 1] {
                parse_serde_attr(g, &mut skip, &mut default);
            }
            i += 2;
        }
        if let TokenTree::Ident(id) = &body[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 2; // name + `:`
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while let TokenTree::Punct(p) = &body[i] {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    newtype = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("vendored serde_derive does not support struct variants ({name})")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

// --------------------------------------------------------------- codegen

fn serialize_struct(_name: &str, fields: &[Field]) -> String {
    let mut out = String::from(
        "        let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "        m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
            f.name
        ));
    }
    out.push_str("        ::serde::Value::Map(m)");
    out
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut out = format!("        ::std::result::Result::Ok({name} {{\n");
    for f in fields {
        let default_expr = match &f.default {
            Some(Some(path)) => format!("{path}()"),
            _ => "::std::default::Default::default()".to_string(),
        };
        if f.skip {
            out.push_str(&format!("            {}: {default_expr},\n", f.name));
        } else if f.default.is_some() {
            out.push_str(&format!(
                "            {0}: match v.get(\"{0}\") {{ ::std::option::Option::Some(inner) => ::serde::Deserialize::from_value(inner)?, ::std::option::Option::None => {default_expr} }},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "            {0}: ::serde::Deserialize::from_value(v.get(\"{0}\").ok_or_else(|| ::serde::DeError::missing_field(\"{1}\", \"{0}\"))?)?,\n",
                f.name, name
            ));
        }
    }
    out.push_str("        })");
    out
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("        match self {\n");
    for v in variants {
        if v.newtype {
            out.push_str(&format!(
                "            {name}::{0}(inner) => ::serde::Value::Map(vec![(\"{0}\".to_string(), ::serde::Serialize::to_value(inner))]),\n",
                v.name
            ));
        } else {
            out.push_str(&format!(
                "            {name}::{0} => ::serde::Value::Str(\"{0}\".to_string()),\n",
                v.name
            ));
        }
    }
    out.push_str("        }");
    out
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    if variants.iter().any(|v| !v.newtype) {
        out.push_str("        if let ::std::option::Option::Some(s) = v.as_str() {\n            return match s {\n");
        for v in variants.iter().filter(|v| !v.newtype) {
            out.push_str(&format!(
                "                \"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                v.name
            ));
        }
        out.push_str(&format!(
            "                other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n            }};\n        }}\n"
        ));
    }
    if variants.iter().any(|v| v.newtype) {
        out.push_str("        if let ::std::option::Option::Some(m) = v.as_map() {\n            if m.len() == 1 {\n                let (key, inner) = &m[0];\n                return match key.as_str() {\n");
        for v in variants.iter().filter(|v| v.newtype) {
            out.push_str(&format!(
                "                    \"{0}\" => ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(inner)?)),\n",
                v.name
            ));
        }
        out.push_str(&format!(
            "                    other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n                }};\n            }}\n        }}\n"
        ));
    }
    out.push_str(&format!(
        "        ::std::result::Result::Err(::serde::DeError::expected(\"variant representation\", \"{name}\"))"
    ));
    out
}
