//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of `rand` the workspace actually uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`]
//! (xoshiro256++, the same generator family the real crate uses on 64-bit
//! targets, seeded via SplitMix64), and [`seq::SliceRandom::shuffle`].
//!
//! It is deterministic across platforms and releases of this repository; it
//! does not promise bit-compatibility with upstream `rand` streams.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (empty ranges panic).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding support; only `seed_from_u64` is exposed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)` (24-bit mantissa).
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform sampling from range types, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Range-sampling traits.
    pub mod uniform {
        use super::super::{unit_f32, unit_f64, Range, RangeInclusive, RngCore};

        /// Types uniformly sampleable from ranges. Mirroring upstream, the
        /// blanket `SampleRange` impls below are generic over this trait so
        /// a range literal's element type unifies with the requested sample
        /// type during inference.
        pub trait SampleUniform: Copy + PartialOrd {
            /// One uniform draw from `[lo, hi)` (or `[lo, hi]` when
            /// `inclusive`).
            fn sample_range<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
        }

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample using `rng`.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_range(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_range(lo, hi, true, rng)
            }
        }

        macro_rules! float_uniform {
            ($t:ty, $unit:ident) => {
                impl SampleUniform for $t {
                    fn sample_range<R: RngCore>(
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        lo + $unit(rng.next_u64()) * (hi - lo)
                    }
                }
            };
        }
        float_uniform!(f64, unit_f64);
        float_uniform!(f32, unit_f32);

        macro_rules! int_uniform {
            ($t:ty) => {
                impl SampleUniform for $t {
                    fn sample_range<R: RngCore>(
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let span = hi.wrapping_sub(lo) as u64;
                        if inclusive {
                            if span == u64::MAX {
                                return rng.next_u64() as $t;
                            }
                            lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                        } else {
                            lo.wrapping_add((rng.next_u64() % span) as $t)
                        }
                    }
                }
            };
        }
        int_uniform!(usize);
        int_uniform!(u64);
        int_uniform!(u32);
        int_uniform!(i64);
        int_uniform!(i32);
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the family upstream `rand`
    /// uses for `SmallRng` on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let k = rng.gen_range(0u64..=5);
            assert!(k <= 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
